"""Interconnect models: optical circuit plane and packet plane.

Section III of the paper describes two interconnection substrates:

* the mainline **circuit-based network (CBN)** — brick MBO channels wired
  through a low-loss 48-port optical circuit switch
  (:mod:`repro.network.optical`), minimizing remote-access latency;
* an experimental **packet-based network (PBN)** — on-brick packet
  switches and MAC/PHY blocks for cases where physical ports run out
  (:mod:`repro.network.packet`).

:mod:`repro.network.latency` provides the latency-breakdown accounting the
Fig. 8 experiment reports.
"""

from repro.network.latency import LatencyBreakdown, LatencyComponent

__all__ = ["LatencyBreakdown", "LatencyComponent"]
