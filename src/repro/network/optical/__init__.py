"""Circuit-based optical network (CBN).

Models the rack's optical interconnect of §III: brick MBO channels patched
through a HUBER+SUHNER Polatis-style 48-port low-loss optical circuit
switch.

* :mod:`repro.network.optical.ber` — OOK receiver physics (Q factor,
  BER vs received power, measurement-floor handling).
* :mod:`repro.network.optical.link` — link power budgets.
* :mod:`repro.network.optical.switch` — the circuit switch (cross-connect
  matrix, 1 dB/hop insertion loss, 100 mW/port, ms-scale reconfiguration).
* :mod:`repro.network.optical.circuits` — multi-hop circuit setup/teardown.
* :mod:`repro.network.optical.topology` — the rack-level optical fabric
  facade tying bricks, switch and circuits together.
"""

from repro.network.optical.ber import (
    BER_TARGET,
    ReceiverModel,
    ber_for_q,
    q_for_ber,
)
from repro.network.optical.circuits import Circuit, CircuitManager
from repro.network.optical.link import LinkBudget, OpticalLink
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.network.optical.topology import OpticalFabric

__all__ = [
    "BER_TARGET",
    "Circuit",
    "CircuitManager",
    "LinkBudget",
    "OpticalCircuitSwitch",
    "OpticalFabric",
    "OpticalLink",
    "ReceiverModel",
    "ber_for_q",
    "q_for_ber",
]
