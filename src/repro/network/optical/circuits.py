"""Multi-hop optical circuit construction and lifetime management.

A circuit is a light path between two brick ports.  The minimal circuit
traverses the switch once (one hop); the Fig. 7 characterisation drove
links through **six and eight hops** by looping the path back through the
switch over external patch fibres.  :class:`CircuitManager` reproduces
that: an *n*-hop circuit consumes the two endpoint ports plus ``n - 1``
loopback patch pairs, and accrues ``n`` hops of insertion loss plus the
extra connector losses of each patch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import CircuitError
from repro.network.optical.link import LinkBudget, OpticalLink
from repro.network.optical.ber import ReceiverModel
from repro.network.optical.switch import OpticalCircuitSwitch


@dataclass
class Circuit:
    """An established bidirectional light path between two brick ports.

    Attributes:
        circuit_id: Manager-assigned identifier.
        endpoint_a / endpoint_b: Labels of the brick ports at each end.
        switch_ports: Every switch port the path occupies, in path order
            (endpoint port, loopback pairs..., endpoint port).
        hops: Number of traversals of the switch (cross-connects).
        link_ab / link_ba: Directional links carrying the power budgets.
        setup_time_s: Time the establishment took (switch reconfiguration).
    """

    circuit_id: str
    endpoint_a: str
    endpoint_b: str
    switch_ports: list[int]
    hops: int
    link_ab: OpticalLink
    link_ba: OpticalLink
    setup_time_s: float
    active: bool = True

    @property
    def worst_ber(self) -> float:
        """The worse of the two directional theoretical BERs."""
        return max(self.link_ab.theoretical_ber, self.link_ba.theoretical_ber)

    @property
    def propagation_delay_s(self) -> float:
        """One-way propagation delay (both directions are symmetric)."""
        return self.link_ab.propagation_delay_s

    def closes(self, target_ber: float = 1e-12) -> bool:
        """True when both directions meet *target_ber*."""
        return self.link_ab.closes(target_ber) and self.link_ba.closes(target_ber)


class CircuitManager:
    """Allocates switch ports and builds :class:`Circuit` objects.

    The manager owns the mapping of endpoint labels (brick port ids) to
    switch ports: callers attach endpoints once, then establish and tear
    down circuits between them.
    """

    def __init__(self, switch: OpticalCircuitSwitch,
                 receiver: Optional[ReceiverModel] = None,
                 fibre_length_m: float = 10.0) -> None:
        self.switch = switch
        self.receiver = receiver or ReceiverModel()
        self.fibre_length_m = fibre_length_m
        self._circuits: dict[str, Circuit] = {}
        self._ids = itertools.count()
        #: Launch power per endpoint label, set at attach time.
        self._launch_dbm: dict[str, float] = {}

    # -- attachment ---------------------------------------------------------------

    def attach_endpoint(self, endpoint_label: str, launch_dbm: float,
                        switch_port: Optional[int] = None) -> int:
        """Fibre an endpoint into the switch; returns the port used."""
        if switch_port is None:
            free = self.switch.free_attachment_ports()
            if not free:
                raise CircuitError("switch has no free port for attachment")
            switch_port = free[0]
        self.switch.attach(switch_port, endpoint_label)
        self._launch_dbm[endpoint_label] = launch_dbm
        return switch_port

    def launch_power_dbm(self, endpoint_label: str) -> float:
        try:
            return self._launch_dbm[endpoint_label]
        except KeyError:
            raise CircuitError(
                f"endpoint {endpoint_label!r} was never attached") from None

    # -- circuit lifecycle ------------------------------------------------------------

    def establish(self, endpoint_a: str, endpoint_b: str,
                  hops: int = 1) -> Circuit:
        """Build an *hops*-traversal circuit between two endpoints.

        ``hops - 1`` loopback patch pairs are allocated from free switch
        ports; running out of ports raises :class:`CircuitError` (this is
        the "running low on physical ports" situation that motivates the
        packet-switched fallback in §III).
        """
        if hops < 1:
            raise CircuitError(f"a circuit needs >= 1 hop, got {hops}")
        if endpoint_a == endpoint_b:
            raise CircuitError("circuit endpoints must differ")
        port_a = self.switch.port_of(endpoint_a)
        port_b = self.switch.port_of(endpoint_b)
        if self.switch.is_connected(port_a):
            raise CircuitError(f"endpoint {endpoint_a!r} is already in a circuit")
        if self.switch.is_connected(port_b):
            raise CircuitError(f"endpoint {endpoint_b!r} is already in a circuit")

        loopback_pairs = self._allocate_loopbacks(hops - 1)

        # Wire the path: a -> lb1_in ~ lb1_out -> lb2_in ~ ... -> b
        path_ports = [port_a]
        for lb_in, lb_out in loopback_pairs:
            path_ports.extend((lb_in, lb_out))
        path_ports.append(port_b)
        for left, right in zip(path_ports[0::2], path_ports[1::2]):
            self.switch.connect(left, right)

        # Connectors: one pair at each endpoint plus one per loopback patch.
        connector_pairs = 2 + len(loopback_pairs)
        budget_ab = LinkBudget(
            launch_dbm=self.launch_power_dbm(endpoint_a),
            switch_hops=hops,
            connector_pairs=connector_pairs,
            fibre_length_m=self.fibre_length_m,
            hop_loss_db=self.switch.hop_loss_db,
        )
        budget_ba = LinkBudget(
            launch_dbm=self.launch_power_dbm(endpoint_b),
            switch_hops=hops,
            connector_pairs=connector_pairs,
            fibre_length_m=self.fibre_length_m,
            hop_loss_db=self.switch.hop_loss_db,
        )
        circuit_id = f"circuit-{next(self._ids)}"
        circuit = Circuit(
            circuit_id=circuit_id,
            endpoint_a=endpoint_a,
            endpoint_b=endpoint_b,
            switch_ports=path_ports,
            hops=hops,
            link_ab=OpticalLink(f"{circuit_id}.ab", budget_ab, self.receiver),
            link_ba=OpticalLink(f"{circuit_id}.ba", budget_ba, self.receiver),
            setup_time_s=self.switch.switching_time_s,
        )
        self._circuits[circuit_id] = circuit
        return circuit

    def _allocate_loopbacks(self, count: int) -> list[tuple[int, int]]:
        """Claim *count* externally patched port pairs from free ports."""
        if count == 0:
            return []
        free = self.switch.free_attachment_ports()
        if len(free) < 2 * count:
            raise CircuitError(
                f"need {2 * count} free switch ports for {count} loopback "
                f"patches, only {len(free)} free")
        pairs = []
        for index in range(count):
            lb_in, lb_out = free[2 * index], free[2 * index + 1]
            self.switch.attach(lb_in, f"loopback-{lb_in}-{lb_out}.in")
            self.switch.attach(lb_out, f"loopback-{lb_in}-{lb_out}.out")
            pairs.append((lb_in, lb_out))
        return pairs

    def teardown(self, circuit_id: str) -> Circuit:
        """Release a circuit: drop its cross-connects and loopback ports."""
        circuit = self.get(circuit_id)
        if not circuit.active:
            raise CircuitError(f"circuit {circuit_id!r} is already torn down")
        for port in circuit.switch_ports:
            if self.switch.is_connected(port):
                self.switch.disconnect(port)
        # Free loopback attachments (interior ports); endpoints stay fibred.
        for port in circuit.switch_ports[1:-1]:
            self.switch.detach(port)
        circuit.active = False
        del self._circuits[circuit_id]
        return circuit

    def get(self, circuit_id: str) -> Circuit:
        try:
            return self._circuits[circuit_id]
        except KeyError:
            raise CircuitError(f"unknown circuit {circuit_id!r}") from None

    @property
    def active_circuits(self) -> list[Circuit]:
        return list(self._circuits.values())

    def circuit_between(self, endpoint_a: str,
                        endpoint_b: str) -> Optional[Circuit]:
        """The active circuit joining two endpoints, if any (either order)."""
        for circuit in self._circuits.values():
            ends = {circuit.endpoint_a, circuit.endpoint_b}
            if ends == {endpoint_a, endpoint_b}:
                return circuit
        return None
