"""The rack optical circuit switch.

Models the "low loss 48-port optical switch module provided by
HUBER+SUHNER Polatis" (§III): a non-blocking cross-connect matrix with

* ~1 dB insertion loss per traversal,
* ~100 mW electrical power per port,
* millisecond-scale (piezo/beam-steering) reconfiguration time.

The paper notes a next generation "doubling the optical port density and
halving the per port power consumption" — available through
:meth:`OpticalCircuitSwitch.next_generation`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CircuitError
from repro.network.optical.link import SWITCH_HOP_LOSS_DB

#: Port count of the prototype's switch module.
DEFAULT_PORT_COUNT = 48

#: Electrical power per port (W): "approximately 100 mW/port".
DEFAULT_PORT_POWER_W = 0.1

#: Time to (re)configure a set of cross-connects.  Beam-steering optical
#: switches reconfigure in the low tens of milliseconds.
DEFAULT_SWITCHING_TIME_S = 0.025


class OpticalCircuitSwitch:
    """A non-blocking all-optical cross-connect.

    Ports are numbered ``0 .. port_count-1``.  A *cross-connect* joins an
    ingress port to an egress port bidirectionally; each traversal of the
    switch (one cross-connect on a light path) is one "hop" and costs
    :attr:`hop_loss_db`.

    External devices (brick MBO channels, loopback patch fibres) are
    *attached* to ports by label so circuit bookkeeping can resolve what
    sits behind each port.
    """

    def __init__(self, switch_id: str,
                 port_count: int = DEFAULT_PORT_COUNT,
                 hop_loss_db: float = SWITCH_HOP_LOSS_DB,
                 port_power_w: float = DEFAULT_PORT_POWER_W,
                 switching_time_s: float = DEFAULT_SWITCHING_TIME_S) -> None:
        if port_count < 2:
            raise CircuitError(f"switch needs >= 2 ports, got {port_count}")
        if hop_loss_db < 0 or port_power_w < 0 or switching_time_s < 0:
            raise CircuitError("switch physical parameters must be non-negative")
        self.switch_id = switch_id
        self.port_count = port_count
        self.hop_loss_db = hop_loss_db
        self.port_power_w = port_power_w
        self.switching_time_s = switching_time_s
        self._cross_connects: dict[int, int] = {}
        self._attachments: dict[int, str] = {}
        self.reconfigurations = 0

    @classmethod
    def next_generation(cls, switch_id: str) -> "OpticalCircuitSwitch":
        """The successor module: double density, half per-port power."""
        return cls(switch_id,
                   port_count=DEFAULT_PORT_COUNT * 2,
                   port_power_w=DEFAULT_PORT_POWER_W / 2)

    # -- attachments -------------------------------------------------------------

    def attach(self, port: int, endpoint_label: str) -> None:
        """Declare that *endpoint_label* is fibred into *port*."""
        self._check_port(port)
        if port in self._attachments:
            raise CircuitError(
                f"port {port} already carries {self._attachments[port]!r}")
        self._attachments[port] = endpoint_label

    def detach(self, port: int) -> str:
        """Remove the attachment on *port*; the port must be unconnected."""
        self._check_port(port)
        if port in self._cross_connects:
            raise CircuitError(f"port {port} is cross-connected; disconnect first")
        if port not in self._attachments:
            raise CircuitError(f"port {port} has no attachment")
        return self._attachments.pop(port)

    def attachment(self, port: int) -> Optional[str]:
        """Label attached to *port*, or ``None``."""
        self._check_port(port)
        return self._attachments.get(port)

    def port_of(self, endpoint_label: str) -> int:
        """The port carrying *endpoint_label*."""
        for port, label in self._attachments.items():
            if label == endpoint_label:
                return port
        raise CircuitError(f"{endpoint_label!r} is not attached to this switch")

    def free_attachment_ports(self) -> list[int]:
        """Ports with no attachment at all (available for new fibres)."""
        return [p for p in range(self.port_count) if p not in self._attachments]

    # -- cross-connects ---------------------------------------------------------------

    def connect(self, port_a: int, port_b: int) -> None:
        """Create a bidirectional cross-connect between two ports."""
        self._check_port(port_a)
        self._check_port(port_b)
        if port_a == port_b:
            raise CircuitError(f"cannot cross-connect port {port_a} to itself")
        if port_a in self._cross_connects:
            raise CircuitError(f"port {port_a} is already cross-connected")
        if port_b in self._cross_connects:
            raise CircuitError(f"port {port_b} is already cross-connected")
        self._cross_connects[port_a] = port_b
        self._cross_connects[port_b] = port_a
        self.reconfigurations += 1

    def disconnect(self, port: int) -> tuple[int, int]:
        """Tear down the cross-connect through *port*; returns the pair."""
        self._check_port(port)
        if port not in self._cross_connects:
            raise CircuitError(f"port {port} is not cross-connected")
        peer = self._cross_connects.pop(port)
        del self._cross_connects[peer]
        self.reconfigurations += 1
        return (port, peer) if port < peer else (peer, port)

    def peer_of(self, port: int) -> Optional[int]:
        """The port cross-connected to *port*, or ``None``."""
        self._check_port(port)
        return self._cross_connects.get(port)

    def is_connected(self, port: int) -> bool:
        self._check_port(port)
        return port in self._cross_connects

    @property
    def cross_connect_count(self) -> int:
        """Number of active cross-connects (pairs)."""
        return len(self._cross_connects) // 2

    @property
    def ports_in_use(self) -> int:
        """Ports participating in a cross-connect."""
        return len(self._cross_connects)

    @property
    def power_draw_w(self) -> float:
        """Electrical draw: per-port figure times ports in use."""
        return self.port_power_w * self.ports_in_use

    @property
    def max_power_draw_w(self) -> float:
        """Draw with every port lit."""
        return self.port_power_w * self.port_count

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.port_count:
            raise CircuitError(
                f"switch {self.switch_id} has ports 0..{self.port_count - 1}, "
                f"got {port}")

    def __repr__(self) -> str:
        return (f"OpticalCircuitSwitch({self.switch_id!r}, "
                f"{self.cross_connect_count} circuits on {self.port_count} ports)")
