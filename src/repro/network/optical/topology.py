"""Rack-level optical fabric facade.

Ties together the pieces of the CBN: brick transceiver ports behind MBO
channels, the rack circuit switch, and the circuit manager.  Orchestration
code (the SDM controller) talks to this facade: *"give me a light path
from compute brick X to memory brick Y"*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import CircuitError, PortError
from repro.hardware.bricks import Brick
from repro.hardware.ports import TransceiverPort
from repro.network.optical.ber import ReceiverModel
from repro.network.optical.circuits import Circuit, CircuitManager
from repro.network.optical.switch import OpticalCircuitSwitch

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.fabric.interconnect import HopPath


@dataclass
class FabricCircuit:
    """A brick-to-brick circuit: the light path plus the endpoint ports.

    ``circuit`` is the single-switch :class:`Circuit` for rack-local
    paths, or an :class:`~repro.fabric.fabric.InterRackCircuit` when the
    light path spans the second switch tier; both expose the same
    interface.  ``hop_path`` carries the interconnect hop list when the
    owning fabric is topology-aware (pod deployments), letting latency
    accounting itemize per-tier propagation.
    """

    circuit: Circuit
    brick_a: Brick
    port_a: TransceiverPort
    brick_b: Brick
    port_b: TransceiverPort
    hop_path: Optional["HopPath"] = None

    @property
    def circuit_id(self) -> str:
        return self.circuit.circuit_id

    @property
    def setup_time_s(self) -> float:
        return self.circuit.setup_time_s

    @property
    def propagation_delay_s(self) -> float:
        return self.circuit.propagation_delay_s

    def port_toward(self, brick: Brick) -> TransceiverPort:
        """The local endpoint port on *brick*."""
        if brick is self.brick_a:
            return self.port_a
        if brick is self.brick_b:
            return self.port_b
        raise CircuitError(
            f"brick {brick.brick_id} is not an endpoint of {self.circuit_id}")


class OpticalFabric:
    """The rack's software-defined optical interconnect."""

    def __init__(self, switch: Optional[OpticalCircuitSwitch] = None,
                 receiver: Optional[ReceiverModel] = None,
                 fibre_length_m: float = 10.0) -> None:
        self.switch = switch or OpticalCircuitSwitch("rack-switch")
        self.manager = CircuitManager(
            self.switch, receiver=receiver, fibre_length_m=fibre_length_m)
        self._attached_bricks: dict[str, Brick] = {}
        self._fabric_circuits: dict[str, FabricCircuit] = {}

    # -- wiring --------------------------------------------------------------------

    def attach_brick(self, brick: Brick) -> int:
        """Fibre every CBN port of *brick* into the switch.

        Returns the number of ports attached.  Each port's launch power is
        taken from its MBO channel.
        """
        if brick.brick_id in self._attached_bricks:
            raise CircuitError(f"brick {brick.brick_id} is already attached")
        attached = 0
        for port in brick.circuit_ports:
            channel = brick.mbo.channel_for_port(port)
            self.manager.attach_endpoint(port.port_id, channel.launch_power_dbm)
            attached += 1
        self._attached_bricks[brick.brick_id] = brick
        return attached

    def is_attached(self, brick: Brick) -> bool:
        return brick.brick_id in self._attached_bricks

    # -- circuits -------------------------------------------------------------------

    def connect(self, brick_a: Brick, brick_b: Brick,
                hops: int = 1) -> FabricCircuit:
        """Establish a circuit between free CBN ports of the two bricks."""
        for brick in (brick_a, brick_b):
            if brick.brick_id not in self._attached_bricks:
                raise CircuitError(
                    f"brick {brick.brick_id} is not attached to the fabric")
            if not brick.is_powered:
                raise CircuitError(
                    f"brick {brick.brick_id} is powered off")
        try:
            port_a = brick_a.circuit_ports.allocate()
            port_b = brick_b.circuit_ports.allocate()
        except PortError as exc:
            raise CircuitError(
                f"no free CBN port: {exc}") from exc
        circuit = self.manager.establish(port_a.port_id, port_b.port_id, hops=hops)
        port_a.connect(port_b)
        fabric_circuit = FabricCircuit(circuit, brick_a, port_a, brick_b, port_b)
        self._fabric_circuits[circuit.circuit_id] = fabric_circuit
        return fabric_circuit

    def connect_channels(self, brick_a: Brick, channel_a: int,
                         brick_b: Brick, channel_b: int,
                         hops: int = 1) -> FabricCircuit:
        """Establish a circuit between two *specific* MBO channels.

        The Fig. 7 characterisation drives each MBO channel through a
        known hop count; this entry point pins the endpoints instead of
        taking the first free port.
        """
        port_a = brick_a.mbo.channel(channel_a).port
        port_b = brick_b.mbo.channel(channel_b).port
        if port_a is None or port_b is None:
            raise CircuitError("both MBO channels must have attached ports")
        for brick, port in ((brick_a, port_a), (brick_b, port_b)):
            if brick.brick_id not in self._attached_bricks:
                raise CircuitError(
                    f"brick {brick.brick_id} is not attached to the fabric")
            if not port.is_free:
                raise CircuitError(f"port {port.port_id} is busy")
        circuit = self.manager.establish(port_a.port_id, port_b.port_id,
                                         hops=hops)
        port_a.connect(port_b)
        fabric_circuit = FabricCircuit(circuit, brick_a, port_a, brick_b, port_b)
        self._fabric_circuits[circuit.circuit_id] = fabric_circuit
        return fabric_circuit

    def disconnect(self, fabric_circuit: FabricCircuit) -> None:
        """Tear the circuit down and free both endpoint ports."""
        circuit_id = fabric_circuit.circuit_id
        if circuit_id not in self._fabric_circuits:
            raise CircuitError(f"unknown fabric circuit {circuit_id!r}")
        self.manager.teardown(circuit_id)
        fabric_circuit.port_a.disconnect()
        del self._fabric_circuits[circuit_id]

    def can_connect(self, brick_a: Brick, brick_b: Brick) -> bool:
        """Can traffic flow between the two bricks?

        True when a live circuit already joins them, or both still have
        a free CBN port for a new one.  Pod-scale fabrics override this
        with uplink-aware logic; orchestration must use this probe
        instead of reasoning about ports directly.
        """
        if self.circuit_between(brick_a, brick_b):
            return True
        return bool(brick_a.circuit_ports.free_ports
                    and brick_b.circuit_ports.free_ports)

    def circuit_between(self, brick_a: Brick,
                        brick_b: Brick) -> Optional[FabricCircuit]:
        """An active circuit joining the two bricks, if one exists."""
        for fc in self._fabric_circuits.values():
            ends = {fc.brick_a.brick_id, fc.brick_b.brick_id}
            if ends == {brick_a.brick_id, brick_b.brick_id}:
                return fc
        return None

    def circuits_of(self, brick: Brick) -> list[FabricCircuit]:
        """All active circuits touching *brick*."""
        return [fc for fc in self._fabric_circuits.values()
                if brick in (fc.brick_a, fc.brick_b)]

    @property
    def active_circuits(self) -> list[FabricCircuit]:
        return list(self._fabric_circuits.values())

    @property
    def power_draw_w(self) -> float:
        """Electrical draw of the switch module."""
        return self.switch.power_draw_w
