"""Optical link power budgets.

A link runs from one brick's MBO channel, through one or more hops of the
optical circuit switch, into the far brick's receiver.  The budget sums
the loss contributions (switch hops, connectors, fibre) and yields the
received power that the :class:`~repro.network.optical.ber.ReceiverModel`
turns into a BER — exactly the quantity plotted in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import LinkBudgetError
from repro.network.optical.ber import BER_TARGET, ReceiverModel
from repro.units import fibre_propagation_delay

#: Insertion loss of one traversal ("hop") of the optical circuit switch.
#: "Each hop through the optical switch module introduces approximately
#: 1 dB of attenuation" (§III).
SWITCH_HOP_LOSS_DB = 1.0

#: Loss per mated fibre connector pair.
CONNECTOR_LOSS_DB = 0.3

#: Fibre attenuation at 1310 nm, dB/km (negligible at rack scale but
#: accounted for completeness).
FIBRE_LOSS_DB_PER_KM = 0.35


@dataclass
class LinkBudget:
    """Itemized loss ledger of one optical link."""

    launch_dbm: float
    switch_hops: int = 0
    connector_pairs: int = 2
    fibre_length_m: float = 10.0
    extra_loss_db: float = 0.0
    hop_loss_db: float = SWITCH_HOP_LOSS_DB
    connector_loss_db: float = CONNECTOR_LOSS_DB

    def __post_init__(self) -> None:
        if self.switch_hops < 0:
            raise LinkBudgetError(f"hop count must be >= 0: {self.switch_hops}")
        if self.connector_pairs < 0:
            raise LinkBudgetError(
                f"connector count must be >= 0: {self.connector_pairs}")
        if self.fibre_length_m < 0:
            raise LinkBudgetError(
                f"fibre length must be >= 0: {self.fibre_length_m}")
        if self.extra_loss_db < 0:
            raise LinkBudgetError(f"extra loss must be >= 0: {self.extra_loss_db}")

    @property
    def switch_loss_db(self) -> float:
        return self.switch_hops * self.hop_loss_db

    @property
    def connector_total_loss_db(self) -> float:
        return self.connector_pairs * self.connector_loss_db

    @property
    def fibre_loss_db(self) -> float:
        return (self.fibre_length_m / 1000.0) * FIBRE_LOSS_DB_PER_KM

    @property
    def total_loss_db(self) -> float:
        """All losses between launch and receiver."""
        return (self.switch_loss_db + self.connector_total_loss_db
                + self.fibre_loss_db + self.extra_loss_db)

    @property
    def received_dbm(self) -> float:
        """Power arriving at the receiver."""
        return self.launch_dbm - self.total_loss_db

    @property
    def propagation_delay_s(self) -> float:
        """One-way flight time over the fibre run."""
        return fibre_propagation_delay(self.fibre_length_m)

    def itemized(self) -> dict[str, float]:
        """Per-cause loss in dB, for reporting."""
        return {
            "switch_hops": self.switch_loss_db,
            "connectors": self.connector_total_loss_db,
            "fibre": self.fibre_loss_db,
            "extra": self.extra_loss_db,
        }


class OpticalLink:
    """A unidirectional optical link: budget + receiver.

    The Fig. 7 experiment instantiates one link per MBO channel, measures
    the received power and repeatedly samples the BER.
    """

    def __init__(self, name: str, budget: LinkBudget,
                 receiver: Optional[ReceiverModel] = None) -> None:
        self.name = name
        self.budget = budget
        self.receiver = receiver or ReceiverModel()

    @property
    def received_dbm(self) -> float:
        return self.budget.received_dbm

    @property
    def theoretical_ber(self) -> float:
        return self.receiver.ber(self.received_dbm)

    @property
    def propagation_delay_s(self) -> float:
        return self.budget.propagation_delay_s

    def closes(self, target_ber: float = BER_TARGET) -> bool:
        """True when the link meets *target_ber* FEC-free."""
        return self.receiver.meets_target(self.received_dbm, target_ber)

    def margin_db(self, target_ber: float = BER_TARGET) -> float:
        """Power margin above the receiver level needed for *target_ber*."""
        return self.received_dbm - self.receiver.required_power_dbm(target_ber)

    def measure_ber(self, rng: Optional[np.random.Generator] = None,
                    power_jitter_db: float = 0.0,
                    bits: float = 1e12) -> tuple[float, float]:
        """One BER measurement with optional received-power jitter.

        Returns ``(received_dbm, measured_ber)``.  Jitter models
        measurement-to-measurement variation (connector reseating,
        polarization, temperature) as a zero-mean Gaussian on the received
        power in dB.
        """
        received = self._jittered_power(rng, power_jitter_db)
        return received, self.receiver.measure_ber(received, rng=rng, bits=bits)

    def estimate_ber_q_method(self, rng: Optional[np.random.Generator] = None,
                              power_jitter_db: float = 0.0
                              ) -> tuple[float, float]:
        """One Q-factor-extrapolated BER estimate.

        BERs far below 1e-12 cannot be counted directly in reasonable test
        time; the standard lab technique (and the one sub-1e-12 box plots
        like Fig. 7 rest on) measures the Q factor and extrapolates the
        BER through the Gaussian model.  Returns ``(received_dbm, ber)``.
        """
        received = self._jittered_power(rng, power_jitter_db)
        return received, self.receiver.ber(received)

    def _jittered_power(self, rng: Optional[np.random.Generator],
                        power_jitter_db: float) -> float:
        received = self.received_dbm
        if power_jitter_db > 0:
            if rng is None:
                raise LinkBudgetError("power jitter requires an RNG")
            received += float(rng.normal(0.0, power_jitter_db))
        return received

    def __repr__(self) -> str:
        return (f"OpticalLink({self.name!r}, rx={self.received_dbm:.1f} dBm, "
                f"BER={self.theoretical_ber:.2e})")
