"""Bit-error-rate physics for the FEC-free optical links.

The paper requires "a FEC-free optical interface between dBRICKs, as the
presence of FEC can potentially introduce more than 100 ns of latency"
(§III).  FEC-free operation means the raw line BER must already be at the
target (1e-12), which is why Fig. 7 characterises BER against received
optical power.

Model: a thermal-noise-limited PIN/TIA receiver detecting on-off-keyed
(OOK) light.  In that regime the Q factor is proportional to the received
optical power, and::

    BER = 0.5 * erfc(Q / sqrt(2))

A receiver is characterised by its *sensitivity*: the received power at
which it attains a reference BER.  The default sensitivity (-15.5 dBm at
1e-12) is calibrated so the paper's operating points hold: a -3.7 dBm
launch surviving eight ~1 dB switch hops plus patch-connector losses
(received around -14.4 dBm) still closes the link below 1e-12, while six
hops enjoy a comfortable margin — matching Fig. 7, where the eight-hop
channels sit closer to the error floor than the six-hop one.

Real BER testers cannot observe arbitrarily low BER in finite time;
:meth:`ReceiverModel.measure_ber` therefore draws an error count from a
Poisson distribution over the tested bit volume, reproducing the
measurement floor visible in experimental box plots.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.special import erfc, erfcinv

from repro.errors import LinkBudgetError
from repro.units import db_ratio, dbm_to_mw

#: The FEC-free BER target of the dReDBox interconnect.
BER_TARGET = 1e-12

#: Default receiver sensitivity: received power (dBm) at which the
#: reference BER is met.
DEFAULT_SENSITIVITY_DBM = -15.5

#: Default bit volume of one BER measurement: 100 s at 10 Gb/s.
DEFAULT_MEASUREMENT_BITS = 1e12


def ber_for_q(q: float) -> float:
    """BER of an OOK receiver operating at Q factor *q*."""
    if q < 0:
        raise LinkBudgetError(f"Q factor must be non-negative, got {q}")
    return float(0.5 * erfc(q / math.sqrt(2.0)))


def q_for_ber(ber: float) -> float:
    """Q factor required for a target *ber* (inverse of :func:`ber_for_q`)."""
    if not 0 < ber < 0.5:
        raise LinkBudgetError(f"BER must be in (0, 0.5), got {ber}")
    return float(math.sqrt(2.0) * erfcinv(2.0 * ber))


class ReceiverModel:
    """A thermal-noise-limited OOK receiver.

    Attributes:
        sensitivity_dbm: Received power achieving ``reference_ber``.
        reference_ber: The BER defining the sensitivity point.
    """

    def __init__(self, sensitivity_dbm: float = DEFAULT_SENSITIVITY_DBM,
                 reference_ber: float = BER_TARGET) -> None:
        self.sensitivity_dbm = sensitivity_dbm
        self.reference_ber = reference_ber
        self._q_ref = q_for_ber(reference_ber)

    def q_factor(self, received_dbm: float) -> float:
        """Q at *received_dbm*; linear in received optical power."""
        margin_db = received_dbm - self.sensitivity_dbm
        return self._q_ref * db_ratio(margin_db)

    def ber(self, received_dbm: float) -> float:
        """Theoretical BER at *received_dbm*."""
        return ber_for_q(self.q_factor(received_dbm))

    def power_margin_db(self, received_dbm: float) -> float:
        """Margin above sensitivity, dB (negative = link does not close)."""
        return received_dbm - self.sensitivity_dbm

    def meets_target(self, received_dbm: float,
                     target_ber: float = BER_TARGET) -> bool:
        """True when the theoretical BER is at or below *target_ber*."""
        return self.ber(received_dbm) <= target_ber

    def required_power_dbm(self, target_ber: float) -> float:
        """Received power needed to achieve *target_ber*."""
        ratio = q_for_ber(target_ber) / self._q_ref
        return self.sensitivity_dbm + 10.0 * math.log10(ratio)

    def measure_ber(self, received_dbm: float,
                    rng: Optional[np.random.Generator] = None,
                    bits: float = DEFAULT_MEASUREMENT_BITS) -> float:
        """One finite-time BER measurement at *received_dbm*.

        Draws the observed error count from ``Poisson(BER * bits)``.  A
        zero-error run reports the standard upper bound ``1 / bits`` — the
        floor a real BER tester quotes.  Without an RNG the expected value
        (floored) is returned deterministically.
        """
        if bits <= 0:
            raise LinkBudgetError(f"measurement bit volume must be > 0: {bits}")
        true_ber = self.ber(received_dbm)
        expected_errors = true_ber * bits
        if rng is None:
            return max(true_ber, 1.0 / bits)
        errors = int(rng.poisson(min(expected_errors, 1e9)))
        if errors == 0:
            return 1.0 / bits
        return errors / bits

    def __repr__(self) -> str:
        return (f"ReceiverModel(sensitivity={self.sensitivity_dbm} dBm @ "
                f"{self.reference_ber:g})")


def received_power_dbm(launch_dbm: float, total_loss_db: float) -> float:
    """Received power after *total_loss_db* of path loss."""
    if total_loss_db < 0:
        raise LinkBudgetError(f"path loss must be non-negative: {total_loss_db}")
    return launch_dbm - total_loss_db


def received_power_mw(launch_dbm: float, total_loss_db: float) -> float:
    """Linear received power in mW (convenience wrapper)."""
    return dbm_to_mw(received_power_dbm(launch_dbm, total_loss_db))
