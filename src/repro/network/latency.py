"""Latency breakdown accounting.

Figure 8 of the paper presents a "break down of (hardware-level) measured
remote memory round-trip access latency": per-block contributions of the
on-brick switches, MAC/PHY blocks on both bricks, and the optical path
propagation delay.  :class:`LatencyBreakdown` is the ledger those
contributions are collected into — an ordered list of named components
that can be merged, grouped and rendered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class LatencyComponent:
    """One named contribution to an end-to-end latency.

    Attributes:
        name: Component label, e.g. ``"compubrick.mac_phy"``.
        seconds: Contribution in seconds (non-negative).
        group: Coarse grouping used by figures, e.g. ``"dCOMPUBRICK"``.
    """

    name: str
    seconds: float
    group: str = ""

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(
                f"latency component {self.name!r} must be non-negative, "
                f"got {self.seconds}")


class LatencyBreakdown:
    """An ordered collection of :class:`LatencyComponent` entries."""

    def __init__(self, components: Iterable[LatencyComponent] = ()) -> None:
        self._components: list[LatencyComponent] = list(components)

    def add(self, name: str, seconds: float, group: str = "") -> "LatencyBreakdown":
        """Append a component; returns self for chaining."""
        self._components.append(LatencyComponent(name, seconds, group))
        return self

    def extend(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        """Append all components of *other*; returns self."""
        self._components.extend(other._components)
        return self

    def add_segments(self, segments: Iterable[tuple[str, float]],
                     group: str = "") -> "LatencyBreakdown":
        """Append one component per ``(name, seconds)`` segment.

        Used to itemize a composed interconnect path — e.g. the
        intra-tray / intra-rack / inter-rack propagation segments of a
        pod-spanning circuit — instead of one opaque figure.
        """
        for name, seconds in segments:
            self.add(name, seconds, group)
        return self

    def __iter__(self) -> Iterator[LatencyComponent]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    @property
    def total_s(self) -> float:
        """Sum of all components, seconds."""
        return sum(c.seconds for c in self._components)

    @property
    def total_ns(self) -> float:
        """Sum of all components, nanoseconds."""
        return self.total_s * 1e9

    def by_group(self) -> dict[str, float]:
        """Total seconds per group, insertion-ordered."""
        groups: dict[str, float] = {}
        for comp in self._components:
            groups[comp.group] = groups.get(comp.group, 0.0) + comp.seconds
        return groups

    def by_name(self) -> dict[str, float]:
        """Total seconds per component name, insertion-ordered."""
        names: dict[str, float] = {}
        for comp in self._components:
            names[comp.name] = names.get(comp.name, 0.0) + comp.seconds
        return names

    def share(self, name: str) -> float:
        """Fraction of the total contributed by components named *name*."""
        total = self.total_s
        if total == 0:
            return 0.0
        return self.by_name().get(name, 0.0) / total

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """A new breakdown with every component scaled by *factor*."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return LatencyBreakdown(
            LatencyComponent(c.name, c.seconds * factor, c.group)
            for c in self._components)

    def rows(self) -> list[tuple[str, str, float]]:
        """``(group, name, nanoseconds)`` rows for table rendering."""
        return [(c.group, c.name, c.seconds * 1e9) for c in self._components]

    def __repr__(self) -> str:
        return (f"LatencyBreakdown({len(self._components)} components, "
                f"total={self.total_ns:.1f} ns)")
