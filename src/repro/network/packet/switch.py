"""On-brick packet switch.

Each brick participating in the PBN implements a small packet switch in
the PL (Fig. 3: "local NI / switch").  The switch forwards memory
transactions to on-brick destination ports "in a round-robin fashion"
across the ports programmed for a destination, using lookup tables that
orchestration keeps configured at runtime (§III).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.network.packet.nic import Packet
from repro.units import nanoseconds

#: Fixed cut-through latency of one switch traversal.
DEFAULT_SWITCH_LATENCY_S = nanoseconds(100)


@dataclass
class _RouteState:
    """Ports serving one destination plus the round-robin cursor."""

    port_ids: list[str]
    next_index: int = 0


class OnBrickPacketSwitch:
    """A lookup-table packet switch with round-robin port selection."""

    def __init__(self, switch_id: str,
                 traversal_latency_s: float = DEFAULT_SWITCH_LATENCY_S) -> None:
        if traversal_latency_s < 0:
            raise RoutingError("switch latency must be non-negative")
        self.switch_id = switch_id
        self.traversal_latency_s = traversal_latency_s
        self._routes: dict[str, _RouteState] = {}
        self.packets_forwarded = 0
        self.lookup_failures = 0

    # -- control path (programmed by orchestration) ----------------------------

    def program_route(self, dst_brick_id: str, port_ids: list[str]) -> None:
        """Install/replace the lookup-table entry for a destination."""
        if not port_ids:
            raise RoutingError(
                f"route to {dst_brick_id!r} needs at least one port")
        if len(set(port_ids)) != len(port_ids):
            raise RoutingError(f"duplicate ports in route to {dst_brick_id!r}")
        self._routes[dst_brick_id] = _RouteState(list(port_ids))

    def add_port_to_route(self, dst_brick_id: str, port_id: str) -> None:
        """Append a port to an existing route (capacity scale-out)."""
        state = self._route_state(dst_brick_id)
        if port_id in state.port_ids:
            raise RoutingError(
                f"port {port_id!r} already serves {dst_brick_id!r}")
        state.port_ids.append(port_id)

    def drop_route(self, dst_brick_id: str) -> None:
        """Remove the lookup-table entry for a destination."""
        if dst_brick_id not in self._routes:
            raise RoutingError(f"no route to {dst_brick_id!r}")
        del self._routes[dst_brick_id]

    def routed_destinations(self) -> list[str]:
        """All destinations with a lookup-table entry."""
        return sorted(self._routes)

    def route_ports(self, dst_brick_id: str) -> list[str]:
        """The ports programmed for a destination (copy)."""
        return list(self._route_state(dst_brick_id).port_ids)

    # -- data path -------------------------------------------------------------------

    def forward(self, packet: Packet) -> tuple[str, float]:
        """Select the egress port for *packet*; returns (port, latency).

        Port selection is round-robin over the ports programmed for the
        packet's destination, as §III specifies.
        """
        state = self._lookup(packet.dst_brick_id)
        port_id = state.port_ids[state.next_index % len(state.port_ids)]
        state.next_index += 1
        self.packets_forwarded += 1
        return port_id, self.traversal_latency_s

    def _lookup(self, dst_brick_id: str) -> _RouteState:
        if dst_brick_id not in self._routes:
            self.lookup_failures += 1
            raise RoutingError(
                f"switch {self.switch_id}: no lookup entry for "
                f"{dst_brick_id!r} (orchestration must program it)")
        return self._routes[dst_brick_id]

    def _route_state(self, dst_brick_id: str) -> _RouteState:
        if dst_brick_id not in self._routes:
            raise RoutingError(f"no route to {dst_brick_id!r}")
        return self._routes[dst_brick_id]

    def __repr__(self) -> str:
        return (f"OnBrickPacketSwitch({self.switch_id!r}, "
                f"{len(self._routes)} routes)")
