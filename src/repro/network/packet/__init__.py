"""Experimental packet-based network (PBN).

Section III: "Beyond this mainline approach, experimental work is put on
exploring packet-switching as a means of interconnecting pooled resources,
particularly to cater for cases where the system is running low in terms
of physical ports available to accommodate new circuits.  In such a mode,
dedicated switching and MAC/PHY blocks are used to forward memory
transactions to on-brick destination ports as appropriate in a round-robin
fashion."

* :mod:`repro.network.packet.mac_phy` — MAC/PHY block latencies (and the
  FEC penalty the architecture avoids).
* :mod:`repro.network.packet.switch` — the on-brick packet switch with its
  orchestrator-programmed lookup table and round-robin port selection.
* :mod:`repro.network.packet.nic` — the brick Network Interface
  (packetization of memory transactions).
* :mod:`repro.network.packet.routing` — control-path configuration of
  lookup tables across bricks.
"""

from repro.network.packet.mac_phy import MacPhy, MacPhyTimings
from repro.network.packet.nic import NetworkInterface, Packet
from repro.network.packet.routing import PacketRouteProgrammer
from repro.network.packet.switch import OnBrickPacketSwitch

__all__ = [
    "MacPhy",
    "MacPhyTimings",
    "NetworkInterface",
    "OnBrickPacketSwitch",
    "Packet",
    "PacketRouteProgrammer",
]
