"""Brick Network Interface (NI): packetization of memory transactions.

On the packet path, remote memory requests leave the Transaction Glue
Logic as bus transactions and must be framed before hitting the MAC/PHY.
The NI adds a transaction header (routing + address + operation metadata)
and accounts a fixed packetization pipeline latency.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import nanoseconds

#: Header bytes carried by each memory-transaction frame: destination and
#: source brick ids, remote address, operation, length, sequence and CRC.
TRANSACTION_HEADER_BYTES = 26

#: Fixed NI pipeline latency per frame (framing, CRC generation).
DEFAULT_NI_LATENCY_S = nanoseconds(80)


class PacketKind(enum.Enum):
    """What a frame carries."""

    READ_REQUEST = "read_req"
    READ_RESPONSE = "read_resp"
    WRITE_REQUEST = "write_req"
    WRITE_ACK = "write_ack"


@dataclass(frozen=True)
class Packet:
    """One framed memory transaction on the PBN.

    Attributes:
        packet_id: NI-assigned sequence number.
        kind: Request/response discriminator.
        src_brick_id / dst_brick_id: Endpoint bricks.
        remote_address: Target byte offset on the destination brick.
        payload_bytes: Data bytes carried (0 for read requests / write acks).
    """

    packet_id: int
    kind: PacketKind
    src_brick_id: str
    dst_brick_id: str
    remote_address: int
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError(
                f"payload must be non-negative, got {self.payload_bytes}")
        if self.remote_address < 0:
            raise ConfigurationError(
                f"remote address must be non-negative, got {self.remote_address}")

    @property
    def frame_bytes(self) -> int:
        """Total wire size: header plus payload."""
        return TRANSACTION_HEADER_BYTES + self.payload_bytes

    @property
    def is_request(self) -> bool:
        return self.kind in (PacketKind.READ_REQUEST, PacketKind.WRITE_REQUEST)

    def response_kind(self) -> PacketKind:
        """The frame kind answering this request."""
        if self.kind is PacketKind.READ_REQUEST:
            return PacketKind.READ_RESPONSE
        if self.kind is PacketKind.WRITE_REQUEST:
            return PacketKind.WRITE_ACK
        raise ConfigurationError(f"{self.kind.value} is not a request")


class NetworkInterface:
    """The NI block on one brick."""

    def __init__(self, nic_id: str,
                 pipeline_latency_s: float = DEFAULT_NI_LATENCY_S) -> None:
        if pipeline_latency_s < 0:
            raise ConfigurationError("NI latency must be non-negative")
        self.nic_id = nic_id
        self.pipeline_latency_s = pipeline_latency_s
        self._sequence = itertools.count()
        self.frames_built = 0

    def frame(self, kind: PacketKind, src_brick_id: str, dst_brick_id: str,
              remote_address: int, payload_bytes: int) -> Packet:
        """Build a frame; the caller accounts :attr:`pipeline_latency_s`."""
        self.frames_built += 1
        return Packet(
            packet_id=next(self._sequence),
            kind=kind,
            src_brick_id=src_brick_id,
            dst_brick_id=dst_brick_id,
            remote_address=remote_address,
            payload_bytes=payload_bytes,
        )

    def frame_request(self, write: bool, src_brick_id: str, dst_brick_id: str,
                      remote_address: int, size_bytes: int) -> Packet:
        """Frame a read/write memory request.

        Write requests carry the data as payload; read requests carry none
        (the data returns in the response).
        """
        kind = PacketKind.WRITE_REQUEST if write else PacketKind.READ_REQUEST
        payload = size_bytes if write else 0
        return self.frame(kind, src_brick_id, dst_brick_id,
                          remote_address, payload)

    def frame_response(self, request: Packet, size_bytes: int) -> Packet:
        """Frame the response to *request* (data for reads, ack for writes)."""
        kind = request.response_kind()
        payload = size_bytes if kind is PacketKind.READ_RESPONSE else 0
        return self.frame(kind, request.dst_brick_id, request.src_brick_id,
                          request.remote_address, payload)
