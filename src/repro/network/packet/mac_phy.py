"""MAC/PHY block latency model.

The packet path inserts a MAC/PHY block between the on-brick switch and
the serial transceivers.  Its fixed pipeline latencies are first-order
contributors to the Fig. 8 round-trip breakdown.  The model also carries
the FEC option the paper explicitly rejects: "the presence of FEC can
potentially introduce more than 100 ns of latency, which degrades the
performance of a disaggregated system" (§III).

Default figures follow published 10GBASE-KR PCS/PMA + MAC IP latencies:
roughly 150-250 ns per direction, with RS-FEC adding >100 ns more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbps, nanoseconds


@dataclass(frozen=True)
class MacPhyTimings:
    """Fixed pipeline latencies of one MAC/PHY block."""

    #: Transmit-side MAC+PCS+PMA pipeline latency.
    tx_latency_s: float = nanoseconds(170)
    #: Receive-side pipeline latency (alignment, descrambling).
    rx_latency_s: float = nanoseconds(220)
    #: Extra latency added in each direction when FEC is enabled.  The
    #: paper's requirement is FEC-free precisely because this exceeds
    #: 100 ns.
    fec_latency_s: float = nanoseconds(120)


#: Library-wide default timing set.
DEFAULT_MAC_PHY_TIMINGS = MacPhyTimings()


class MacPhy:
    """One MAC/PHY block instance on a brick edge."""

    def __init__(self, block_id: str,
                 line_rate_bps: float = gbps(10),
                 timings: MacPhyTimings = DEFAULT_MAC_PHY_TIMINGS,
                 fec_enabled: bool = False) -> None:
        if line_rate_bps <= 0:
            raise ConfigurationError(
                f"line rate must be positive, got {line_rate_bps}")
        self.block_id = block_id
        self.line_rate_bps = line_rate_bps
        self.timings = timings
        self.fec_enabled = fec_enabled
        self.frames_tx = 0
        self.frames_rx = 0

    def tx_latency_s(self) -> float:
        """Fixed transmit-path latency (before serialization)."""
        latency = self.timings.tx_latency_s
        if self.fec_enabled:
            latency += self.timings.fec_latency_s
        return latency

    def rx_latency_s(self) -> float:
        """Fixed receive-path latency."""
        latency = self.timings.rx_latency_s
        if self.fec_enabled:
            latency += self.timings.fec_latency_s
        return latency

    def serialization_s(self, frame_bytes: int) -> float:
        """Wire time of a frame at the line rate."""
        if frame_bytes < 0:
            raise ConfigurationError(
                f"frame size must be non-negative, got {frame_bytes}")
        return (frame_bytes * 8) / self.line_rate_bps

    def transmit_latency_s(self, frame_bytes: int) -> float:
        """Total TX contribution for one frame (pipeline + serialization)."""
        self.frames_tx += 1
        return self.tx_latency_s() + self.serialization_s(frame_bytes)

    def receive_latency_s(self) -> float:
        """Total RX contribution for one frame (pipeline only; the wire
        time was already paid at the transmitter)."""
        self.frames_rx += 1
        return self.rx_latency_s()

    @property
    def fec_penalty_per_direction_s(self) -> float:
        """The latency cost FEC would add in each direction."""
        return self.timings.fec_latency_s

    def __repr__(self) -> str:
        fec = "FEC" if self.fec_enabled else "FEC-free"
        return (f"MacPhy({self.block_id!r}, "
                f"{self.line_rate_bps / 1e9:.0f}G, {fec})")
