"""Control-path programming of the packet plane.

Section III: "On the control-path, dedicated orchestration resources are
required to make sure that packet-switch lookup-tables on
dCOMPBRICKS/dMEMBRICKS are appropriately configured at runtime."

:class:`PacketRouteProgrammer` is that orchestration resource: it owns the
registry of on-brick switches and installs consistent forward/return
routes between brick pairs, picking PBN ports on each side.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PortError, RoutingError
from repro.hardware.bricks import Brick
from repro.network.packet.switch import OnBrickPacketSwitch


class PacketRouteProgrammer:
    """Registers brick packet switches and programs pairwise routes."""

    def __init__(self) -> None:
        self._switches: dict[str, OnBrickPacketSwitch] = {}
        self._bricks: dict[str, Brick] = {}
        self.routes_programmed = 0

    # -- registration ---------------------------------------------------------

    def register(self, brick: Brick,
                 switch: Optional[OnBrickPacketSwitch] = None
                 ) -> OnBrickPacketSwitch:
        """Add *brick* to the packet plane, creating its switch if needed."""
        if brick.brick_id in self._switches:
            raise RoutingError(f"brick {brick.brick_id} is already registered")
        if switch is None:
            switch = OnBrickPacketSwitch(f"{brick.brick_id}.pswitch")
        self._switches[brick.brick_id] = switch
        self._bricks[brick.brick_id] = brick
        return switch

    def switch_of(self, brick_id: str) -> OnBrickPacketSwitch:
        try:
            return self._switches[brick_id]
        except KeyError:
            raise RoutingError(
                f"brick {brick_id!r} is not on the packet plane") from None

    @property
    def registered_bricks(self) -> list[str]:
        return sorted(self._switches)

    # -- route programming -------------------------------------------------------

    def connect_pair(self, brick_a: Brick, brick_b: Brick,
                     link_count: int = 1) -> None:
        """Wire *link_count* PBN links between two bricks and program
        symmetric lookup-table entries on both switches."""
        switch_a = self.switch_of(brick_a.brick_id)
        switch_b = self.switch_of(brick_b.brick_id)
        ports_a: list[str] = []
        ports_b: list[str] = []
        for _ in range(link_count):
            try:
                port_a = brick_a.packet_ports.allocate()
                port_b = brick_b.packet_ports.allocate()
            except PortError as exc:
                raise RoutingError(
                    f"not enough PBN ports for {link_count} links between "
                    f"{brick_a.brick_id} and {brick_b.brick_id}: {exc}") from exc
            port_a.connect(port_b)
            ports_a.append(port_a.port_id)
            ports_b.append(port_b.port_id)
        switch_a.program_route(brick_b.brick_id, ports_a)
        switch_b.program_route(brick_a.brick_id, ports_b)
        self.routes_programmed += 2

    def disconnect_pair(self, brick_a: Brick, brick_b: Brick) -> None:
        """Drop the routes and free the PBN ports between two bricks."""
        switch_a = self.switch_of(brick_a.brick_id)
        switch_b = self.switch_of(brick_b.brick_id)
        for port_id in switch_a.route_ports(brick_b.brick_id):
            port = brick_a.packet_ports.by_id(port_id)
            if not port.is_free:
                port.disconnect()
        switch_a.drop_route(brick_b.brick_id)
        switch_b.drop_route(brick_a.brick_id)

    def validate(self) -> list[str]:
        """Consistency check: every route's ports exist, are PBN ports of
        the owning brick, and lead to the claimed destination.

        Returns a list of human-readable problems (empty = consistent).
        """
        problems: list[str] = []
        for brick_id, switch in self._switches.items():
            brick = self._bricks[brick_id]
            for dst in switch.routed_destinations():
                for port_id in switch.route_ports(dst):
                    try:
                        port = brick.packet_ports.by_id(port_id)
                    except PortError:
                        problems.append(
                            f"{brick_id}: route to {dst} uses unknown port "
                            f"{port_id}")
                        continue
                    if port.peer is None:
                        problems.append(
                            f"{brick_id}: route to {dst} uses unwired port "
                            f"{port_id}")
                    elif not port.peer.port_id.startswith(dst + "."):
                        problems.append(
                            f"{brick_id}: port {port_id} leads to "
                            f"{port.peer.port_id}, not to {dst}")
        return problems
