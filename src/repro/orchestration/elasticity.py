"""Rack-level elastic memory management.

Project objective (§I): "an appropriately revisited design of virtual
memory ballooning subsystem for elastic distribution of disaggregated
memory".  In dReDBox the two mechanisms complement each other:

* **hotplug segments** (the §IV scale-up path) move memory between VMs
  and the rack pool in section-sized chunks — slow but unbounded;
* **balloons** move pages within a VM's configured memory — fast, fine
  grained, but bounded by what was previously configured.

:class:`ElasticMemoryManager` coordinates both across the VMs of a rack:
VMs report demand; the manager reclaims from over-provisioned guests
first (balloon-inflate small surpluses, scale-down whole segments) and
then grows pressured guests (balloon-deflate if reclaimable, scale-up
otherwise).  Reclaims run before grows so freed segments are available
for reallocation within the same pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import BalloonError, OrchestrationError, PlacementError
from repro.software.balloon import BalloonDriver
from repro.units import gib, mib

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.system import DisaggregatedRack


@dataclass
class ElasticityAction:
    """One adjustment the manager performed."""

    vm_id: str
    kind: str  # "scale_up" | "scale_down" | "inflate" | "deflate"
    size_bytes: int
    latency_s: float


@dataclass
class RebalanceReport:
    """Outcome of one :meth:`ElasticMemoryManager.rebalance` pass."""

    actions: list[ElasticityAction] = field(default_factory=list)
    unmet_demand_bytes: int = 0

    @property
    def total_latency_s(self) -> float:
        return sum(a.latency_s for a in self.actions)

    def count(self, kind: str) -> int:
        return sum(1 for a in self.actions if a.kind == kind)

    def bytes_moved(self, kind: str) -> int:
        return sum(a.size_bytes for a in self.actions if a.kind == kind)


class ElasticMemoryManager:
    """Coordinates balloons and hotplug across a rack's VMs."""

    def __init__(self, system: "DisaggregatedRack",
                 step_bytes: int = gib(1),
                 headroom_fraction: float = 0.1,
                 min_adjust_bytes: int = mib(64)) -> None:
        """Create the manager.

        Args:
            system: The rack whose VMs to manage.
            step_bytes: Hotplug granularity (one segment per step).
            headroom_fraction: Slack provisioned above reported demand.
            min_adjust_bytes: Dead band — imbalances smaller than this
                are left alone, so demand jitter does not thrash the
                balloons.
        """
        if step_bytes <= 0:
            raise OrchestrationError("step size must be positive")
        if not 0 <= headroom_fraction < 1:
            raise OrchestrationError("headroom fraction must be in [0, 1)")
        if min_adjust_bytes < 0:
            raise OrchestrationError("dead band must be non-negative")
        self.system = system
        self.step_bytes = step_bytes
        self.headroom_fraction = headroom_fraction
        self.min_adjust_bytes = min_adjust_bytes
        self._demands: dict[str, int] = {}
        self._balloons: dict[str, BalloonDriver] = {}
        self._segments: dict[str, list] = {}

    # -- registration -----------------------------------------------------------

    def manage(self, vm_id: str) -> None:
        """Put *vm_id* under management (instantiates its balloon)."""
        hosted = self.system.hosting(vm_id)
        if vm_id in self._balloons:
            raise OrchestrationError(f"VM {vm_id!r} is already managed")
        self._balloons[vm_id] = BalloonDriver(hosted.vm)
        self._segments[vm_id] = []
        self._demands[vm_id] = hosted.vm.ram_bytes

    def release(self, vm_id: str) -> None:
        """Stop managing *vm_id* (deflates its balloon fully)."""
        balloon = self._balloon(vm_id)
        if balloon.inflated_bytes:
            balloon.deflate(balloon.inflated_bytes)
        del self._balloons[vm_id]
        del self._segments[vm_id]
        del self._demands[vm_id]

    @property
    def managed_vms(self) -> list[str]:
        return sorted(self._balloons)

    def _balloon(self, vm_id: str) -> BalloonDriver:
        try:
            return self._balloons[vm_id]
        except KeyError:
            raise OrchestrationError(f"VM {vm_id!r} is not managed") from None

    # -- demand reporting ----------------------------------------------------------

    def set_demand(self, vm_id: str, demand_bytes: int) -> None:
        """Record the memory *vm_id* currently needs."""
        self._balloon(vm_id)  # membership check
        if demand_bytes < 0:
            raise OrchestrationError("demand must be non-negative")
        self._demands[vm_id] = demand_bytes

    def target_bytes(self, vm_id: str) -> int:
        """Demand plus the configured headroom."""
        return int(self._demands[vm_id] * (1.0 + self.headroom_fraction))

    # -- the rebalancing pass ---------------------------------------------------------

    def rebalance(self) -> RebalanceReport:
        """One pass: reclaim from the over-provisioned, grow the starved."""
        report = RebalanceReport()
        # Phase 1 — reclaim, so the pool has capacity for phase 2.
        for vm_id in self.managed_vms:
            self._reclaim(vm_id, report)
        # Phase 2 — grow.
        for vm_id in self.managed_vms:
            self._grow(vm_id, report)
        return report

    def _reclaim(self, vm_id: str, report: RebalanceReport) -> None:
        hosted = self.system.hosting(vm_id)
        balloon = self._balloons[vm_id]
        target = self.target_bytes(vm_id)
        surplus = hosted.vm.ram_bytes - target
        # Whole steps go back to the rack pool via scale-down.
        while surplus >= self.step_bytes and self._segments[vm_id]:
            segment = self._segments[vm_id].pop()
            steps = self.system.scale_down(vm_id, segment.segment_id)
            report.actions.append(ElasticityAction(
                vm_id, "scale_down", segment.size, sum(steps.values())))
            surplus = hosted.vm.ram_bytes - target
        # Sub-step surplus is parked in the balloon (fast reclaim);
        # jitter inside the dead band is ignored.
        if self.min_adjust_bytes <= surplus < self.step_bytes:
            try:
                latency = balloon.inflate(surplus)
            except BalloonError:
                return  # guaranteed floor reached; leave it be
            report.actions.append(ElasticityAction(
                vm_id, "inflate", surplus, latency))

    def _grow(self, vm_id: str, report: RebalanceReport) -> None:
        hosted = self.system.hosting(vm_id)
        balloon = self._balloons[vm_id]
        target = self.target_bytes(vm_id)
        shortfall = target - hosted.vm.ram_bytes
        if shortfall < self.min_adjust_bytes:
            return
        # Fast path: give back ballooned pages first.
        if balloon.inflated_bytes:
            give = min(shortfall, balloon.inflated_bytes)
            latency = balloon.deflate(give)
            report.actions.append(ElasticityAction(
                vm_id, "deflate", give, latency))
            shortfall -= give
        # Slow path: hotplug fresh segments from the pool.
        while shortfall > 0:
            chunk = min(self.step_bytes,
                        max(self.step_bytes, shortfall))
            try:
                result = self.system.scale_up(vm_id, chunk)
            except PlacementError:
                report.unmet_demand_bytes += shortfall
                return
            self._segments[vm_id].append(result.segment)
            report.actions.append(ElasticityAction(
                vm_id, "scale_up", chunk, result.total_latency_s))
            shortfall -= chunk
