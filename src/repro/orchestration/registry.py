"""System-wide resource inventory and availability accounting.

The registry is the SDM controller's world model: which bricks exist,
their capacities, which rack holds them, and what is currently reserved.
Memory bricks carry a :class:`~repro.memory.allocator.SegmentAllocator`;
compute bricks are tracked through their kernels/hypervisors.  Entries
record their rack so placement can score interconnect distance at pod
scale; single-rack deployments may leave ``rack_id`` empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OrchestrationError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.power import PowerState
from repro.memory.allocator import SegmentAllocator
from repro.orchestration.lifecycle import BrickLifecycle, BrickState
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.software.pages import DEFAULT_SECTION_BYTES


@dataclass
class ComputeEntry:
    """Registry record of one compute brick."""

    brick: ComputeBrick
    hypervisor: Hypervisor
    agent: SdmAgent
    #: Rack holding the brick ("" in single-rack deployments that never
    #: told the registry about topology).
    rack_id: str = ""
    #: Set when the brick (or its rack's uplink) has failed; failed
    #: bricks are excluded from placement until repaired.
    failed: bool = False
    #: Ironic-style provisioning state; only ``active`` bricks receive
    #: new placements.  Registration walks it straight to active so the
    #: default flow is unchanged.
    lifecycle: BrickLifecycle = field(default=None)  # type: ignore[assignment]


@dataclass
class MemoryEntry:
    """Registry record of one memory brick."""

    brick: MemoryBrick
    allocator: SegmentAllocator
    #: Set when the brick has failed; failed bricks never host segments.
    failed: bool = False
    rack_id: str = ""
    #: Ironic-style provisioning state (see :mod:`repro.orchestration.
    #: lifecycle`); the allocator's ``accepting`` gate shadows it.
    lifecycle: BrickLifecycle = field(default=None)  # type: ignore[assignment]


@dataclass(frozen=True, slots=True)
class ComputeAvailability:
    """Snapshot of a compute brick's free capacity."""

    brick_id: str
    free_cores: int
    free_ram_bytes: int
    powered: bool
    hosts_vms: bool
    rack_id: str = ""


@dataclass(frozen=True, slots=True)
class MemoryAvailability:
    """Snapshot of a memory brick's free capacity."""

    brick_id: str
    free_bytes: int
    largest_span_bytes: int
    utilization: float
    powered: bool
    rack_id: str = ""


class ResourceRegistry:
    """Inventory of every brick the SDM controller manages."""

    def __init__(self, segment_alignment: int = DEFAULT_SECTION_BYTES) -> None:
        self.segment_alignment = segment_alignment
        self._compute: dict[str, ComputeEntry] = {}
        self._memory: dict[str, MemoryEntry] = {}

    # -- registration -------------------------------------------------------------

    def register_compute(self, brick: ComputeBrick, hypervisor: Hypervisor,
                         agent: SdmAgent, rack_id: str = "") -> ComputeEntry:
        if brick.brick_id in self._compute:
            raise OrchestrationError(
                f"compute brick {brick.brick_id} already registered")
        entry = ComputeEntry(brick, hypervisor, agent, rack_id=rack_id)
        entry.lifecycle = BrickLifecycle(brick.brick_id)
        entry.lifecycle.activate()
        self._compute[brick.brick_id] = entry
        return entry

    def register_memory(self, brick: MemoryBrick,
                        rack_id: str = "") -> MemoryEntry:
        if brick.brick_id in self._memory:
            raise OrchestrationError(
                f"memory brick {brick.brick_id} already registered")
        allocator = SegmentAllocator(
            brick.capacity_bytes, alignment=self.segment_alignment)
        entry = MemoryEntry(brick, allocator, rack_id=rack_id)
        entry.lifecycle = BrickLifecycle(brick.brick_id)
        entry.lifecycle.activate()
        self._memory[brick.brick_id] = entry
        return entry

    # -- lookups ----------------------------------------------------------------------

    def compute(self, brick_id: str) -> ComputeEntry:
        try:
            return self._compute[brick_id]
        except KeyError:
            raise OrchestrationError(
                f"unknown compute brick {brick_id!r}") from None

    def memory(self, brick_id: str) -> MemoryEntry:
        try:
            return self._memory[brick_id]
        except KeyError:
            raise OrchestrationError(
                f"unknown memory brick {brick_id!r}") from None

    def rack_of(self, brick_id: str) -> str:
        """Rack holding *brick_id* (compute or memory), "" if untagged."""
        entry = self._compute.get(brick_id) or self._memory.get(brick_id)
        if entry is None:
            raise OrchestrationError(f"unknown brick {brick_id!r}")
        return entry.rack_id

    @property
    def brick_count(self) -> int:
        """Registered bricks (compute + memory); registries only grow,
        so this doubles as a cheap change marker for derived caches."""
        return len(self._compute) + len(self._memory)

    @property
    def compute_entries(self) -> list[ComputeEntry]:
        return list(self._compute.values())

    @property
    def memory_entries(self) -> list[MemoryEntry]:
        return list(self._memory.values())

    # -- availability snapshots ---------------------------------------------------------

    def compute_availability(self) -> list[ComputeAvailability]:
        """Free capacity of every healthy compute brick."""
        snapshots = []
        for entry in self._compute.values():
            if entry.failed or not entry.lifecycle.placeable:
                continue
            hypervisor = entry.hypervisor
            snapshots.append(ComputeAvailability(
                brick_id=entry.brick.brick_id,
                free_cores=(entry.brick.core_count
                            - hypervisor.cores_in_use()),
                free_ram_bytes=hypervisor.kernel.available_bytes,
                powered=entry.brick.is_powered,
                hosts_vms=bool(hypervisor.vms),
                rack_id=entry.rack_id,
            ))
        return snapshots

    def memory_availability(self) -> list[MemoryAvailability]:
        """Free capacity of every healthy memory brick."""
        return [
            MemoryAvailability(
                brick_id=entry.brick.brick_id,
                free_bytes=entry.allocator.free_bytes,
                largest_span_bytes=entry.allocator.largest_free_span,
                utilization=entry.allocator.utilization,
                powered=entry.brick.is_powered,
                rack_id=entry.rack_id,
            )
            for entry in self._memory.values()
            if not entry.failed and entry.lifecycle.placeable
        ]

    # -- lifecycle ------------------------------------------------------------------

    def transition_memory(self, brick_id: str,
                          state: BrickState) -> MemoryEntry:
        """Legal-checked lifecycle transition for a memory brick.

        Syncs the allocator's ``accepting`` gate with the new state and
        powers the brick down when it enters maintenance (the TCO lever:
        a serviced brick draws no power) and back up when it returns to
        the available pool.
        """
        entry = self.memory(brick_id)
        entry.lifecycle.transition(state)
        entry.allocator.accepting = entry.lifecycle.accepting
        if state is BrickState.MAINTENANCE:
            entry.brick.power_off()
        elif state is BrickState.AVAILABLE:
            entry.brick.power_on()
        return entry

    def transition_compute(self, brick_id: str,
                           state: BrickState) -> ComputeEntry:
        """Legal-checked lifecycle transition for a compute brick."""
        entry = self.compute(brick_id)
        entry.lifecycle.transition(state)
        return entry

    def lifecycle_of(self, brick_id: str) -> BrickLifecycle:
        """Lifecycle record for any registered brick."""
        entry = self._compute.get(brick_id) or self._memory.get(brick_id)
        if entry is None:
            raise OrchestrationError(f"unknown brick {brick_id!r}")
        return entry.lifecycle

    def mark_memory_failed(self, brick_id: str) -> MemoryEntry:
        """Exclude a failed memory brick from all future placement."""
        entry = self.memory(brick_id)
        entry.failed = True
        entry.brick.power_off()
        return entry

    def restore_memory(self, brick_id: str) -> MemoryEntry:
        """Return a repaired memory brick to the placement pool."""
        entry = self.memory(brick_id)
        entry.failed = False
        entry.brick.power_on()
        return entry

    def mark_compute_failed(self, brick_id: str) -> ComputeEntry:
        """Exclude a failed compute brick from all future placement.

        The brick keeps its registered state (hypervisor, VMs) — a
        repaired brick resumes serving its tenants where it stopped —
        but no new placement lands on it while failed.
        """
        entry = self.compute(brick_id)
        entry.failed = True
        return entry

    def restore_compute(self, brick_id: str) -> ComputeEntry:
        """Return a repaired compute brick to the placement pool."""
        entry = self.compute(brick_id)
        entry.failed = False
        return entry

    # -- power management ------------------------------------------------------------------

    def power_off_idle_bricks(self) -> list[str]:
        """Power down every brick with no allocation; returns their ids.

        This is the TCO lever of §VI: "evaluate the number of unutilized
        individually powered units that can be powered off".
        """
        powered_off: list[str] = []
        for entry in self._compute.values():
            if not entry.hypervisor.vms and entry.brick.is_powered:
                entry.brick.power_off()
                powered_off.append(entry.brick.brick_id)
        for entry in self._memory.values():
            if entry.allocator.allocation_count == 0 and entry.brick.is_powered:
                entry.brick.power_off()
                powered_off.append(entry.brick.brick_id)
        return powered_off

    def ensure_powered(self, brick_id: str) -> bool:
        """Power a brick on if needed; returns True when it was off."""
        if brick_id in self._compute:
            brick = self._compute[brick_id].brick
        elif brick_id in self._memory:
            brick = self._memory[brick_id].brick
        else:
            raise OrchestrationError(f"unknown brick {brick_id!r}")
        was_off = brick.power_state is PowerState.OFF
        brick.power_on()
        return was_off
