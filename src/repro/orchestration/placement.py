"""Placement policies for the SDM controller.

Section IV.C requires the controller to "safely inspect resource
availability and make a power-consumption conscious selection of
resources".  At pod scale a second concern appears: the interconnect
hierarchy is the dominant term in remote-memory latency, so policies
score *distance* (same rack vs. across the pod switch) alongside power.
Three policies are provided:

* :class:`PowerAwarePackingPolicy` — the paper's choice: prefer the
  requester's own rack, then pack onto already-powered, already-used
  bricks so unused ones stay off.  This is what makes the Fig. 12
  power-off fractions possible.
* :class:`FirstFitPolicy` — the neutral baseline (registration order),
  local rack first.
* :class:`SpreadPolicy` — load-balancing anti-policy used by the
  placement ablation bench: most-free-first, which maximizes the number
  of powered bricks and deliberately ignores topology.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.orchestration.registry import (
    ComputeAvailability,
    MemoryAvailability,
)

#: Placement-policy names accepted by :func:`make_placement_policy`.
PLACEMENT_POLICIES = ("pack", "first-fit", "spread")


def make_placement_policy(name: str) -> "PlacementPolicy":
    """Instantiate a placement policy from its builder-facing name.

    The federation builders take the *name*, not an instance: a string
    survives pickling into the parallel federation's worker processes,
    and each worker then constructs its own (stateful) policy object
    alongside the pod it builds.
    """
    if name == "pack":
        return PowerAwarePackingPolicy()
    if name == "first-fit":
        return FirstFitPolicy()
    if name == "spread":
        return SpreadPolicy()
    known = ", ".join(PLACEMENT_POLICIES)
    raise ConfigurationError(
        f"unknown placement policy {name!r}; known: {known}")


class PlacementPolicy(Protocol):
    """Strategy interface for brick selection.

    ``origin_rack_id`` names the rack the request originates from (the
    requesting compute brick's rack for memory placement, an affinity
    hint for VM placement); ``None`` means topology-oblivious selection.
    """

    def select_memory_brick(
            self, candidates: Sequence[MemoryAvailability],
            size_bytes: int,
            origin_rack_id: Optional[str] = None) -> Optional[str]:
        """Pick the dMEMBRICK to carve *size_bytes* from, or ``None``."""
        ...

    def select_compute_brick(
            self, candidates: Sequence[ComputeAvailability],
            vcpus: int, ram_bytes: int,
            origin_rack_id: Optional[str] = None) -> Optional[str]:
        """Pick the dCOMPUBRICK to host a VM, or ``None``."""
        ...


def _memory_fits(candidate: MemoryAvailability, size_bytes: int) -> bool:
    return candidate.largest_span_bytes >= size_bytes


def _compute_fits(candidate: ComputeAvailability, vcpus: int,
                  ram_bytes: int) -> bool:
    return candidate.free_cores >= vcpus and candidate.free_ram_bytes >= ram_bytes


def rack_distance(candidate_rack_id: str,
                  origin_rack_id: Optional[str]) -> int:
    """Interconnect tiers between a candidate and the request origin.

    0 — same rack (or topology unknown on either side): traffic stays
    behind the in-rack switch.  1 — different rack: traffic crosses the
    pod's second switch tier.
    """
    if not origin_rack_id or not candidate_rack_id:
        return 0
    return 0 if candidate_rack_id == origin_rack_id else 1


class FirstFitPolicy:
    """Take the first fitting candidate, preferring the origin rack.

    Within each distance tier the registration order is preserved (the
    sort is stable), so single-rack behaviour is unchanged.
    """

    def select_memory_brick(self, candidates: Sequence[MemoryAvailability],
                            size_bytes: int,
                            origin_rack_id: Optional[str] = None
                            ) -> Optional[str]:
        ordered = sorted(candidates,
                         key=lambda c: rack_distance(c.rack_id,
                                                     origin_rack_id))
        for candidate in ordered:
            if _memory_fits(candidate, size_bytes):
                return candidate.brick_id
        return None

    def select_compute_brick(self, candidates: Sequence[ComputeAvailability],
                             vcpus: int, ram_bytes: int,
                             origin_rack_id: Optional[str] = None
                             ) -> Optional[str]:
        ordered = sorted(candidates,
                         key=lambda c: rack_distance(c.rack_id,
                                                     origin_rack_id))
        for candidate in ordered:
            if _compute_fits(candidate, vcpus, ram_bytes):
                return candidate.brick_id
        return None


class PowerAwarePackingPolicy:
    """Local rack first, then pack onto powered/used bricks, best fit.

    Ordering for memory bricks: fewest interconnect tiers to the
    requester, then bricks already serving *hot* segments (see below),
    then powered before off, then most-utilized first (tightest
    packing), then smallest adequate span.  For compute bricks: closest
    to the affinity hint, then powered and VM-hosting before idle, then
    fewest free cores.  Powering on a sleeping brick is the last resort
    within a distance tier; crossing the pod switch is a later resort
    still, because the inter-rack hop dominates every remote access
    while power-on is paid once.

    **Hot-segment co-location.**  The data-mover layer reports which
    dMEMBRICKs back heavily accessed segments
    (:meth:`~repro.datamover.mover.DataMover.hot_memory_bricks`); when
    ``colocate_hot`` is on, new segments within a distance tier prefer
    those bricks, so hot traffic concentrates on fewer circuits — the
    mover's cache and prefetcher then see deeper locality per light
    path.  With no hot hints recorded the ordering is unchanged.
    """

    def __init__(self, colocate_hot: bool = True) -> None:
        self.colocate_hot = colocate_hot
        self._hot_bricks: set[str] = set()

    def note_hot_brick(self, brick_id: str) -> None:
        """Record that *brick_id* backs hot segments."""
        self._hot_bricks.add(brick_id)

    def clear_hot_bricks(self) -> None:
        self._hot_bricks.clear()

    @property
    def hot_bricks(self) -> frozenset[str]:
        return frozenset(self._hot_bricks)

    def _hot_rank(self, brick_id: str) -> int:
        """0 for a hot brick when co-location is on, else 1."""
        if self.colocate_hot and brick_id in self._hot_bricks:
            return 0
        return 1

    def select_memory_brick(self, candidates: Sequence[MemoryAvailability],
                            size_bytes: int,
                            origin_rack_id: Optional[str] = None
                            ) -> Optional[str]:
        fitting = [c for c in candidates if _memory_fits(c, size_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (
            rack_distance(c.rack_id, origin_rack_id),  # stay in-rack
            self._hot_rank(c.brick_id),  # co-locate with hot segments
            not c.powered,            # powered bricks first
            -c.utilization,           # pack the fullest
            c.largest_span_bytes,     # then tightest fitting span
            c.brick_id,               # deterministic tie-break
        ))
        return fitting[0].brick_id

    def select_compute_brick(self, candidates: Sequence[ComputeAvailability],
                             vcpus: int, ram_bytes: int,
                             origin_rack_id: Optional[str] = None
                             ) -> Optional[str]:
        fitting = [c for c in candidates if _compute_fits(c, vcpus, ram_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (
            rack_distance(c.rack_id, origin_rack_id),
            not c.powered,
            not c.hosts_vms,          # co-locate with existing VMs
            c.free_cores,             # tightest core fit
            c.brick_id,
        ))
        return fitting[0].brick_id


class SpreadPolicy:
    """Most-free-first: maximizes brick count in use (ablation baseline).

    Deliberately topology-oblivious — the ablation contrasts it with the
    locality-aware packing policy.
    """

    def select_memory_brick(self, candidates: Sequence[MemoryAvailability],
                            size_bytes: int,
                            origin_rack_id: Optional[str] = None
                            ) -> Optional[str]:
        fitting = [c for c in candidates if _memory_fits(c, size_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (-c.free_bytes, c.brick_id))
        return fitting[0].brick_id

    def select_compute_brick(self, candidates: Sequence[ComputeAvailability],
                             vcpus: int, ram_bytes: int,
                             origin_rack_id: Optional[str] = None
                             ) -> Optional[str]:
        fitting = [c for c in candidates if _compute_fits(c, vcpus, ram_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (-c.free_cores, c.brick_id))
        return fitting[0].brick_id
