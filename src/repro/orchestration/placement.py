"""Placement policies for the SDM controller.

Section IV.C requires the controller to "safely inspect resource
availability and make a power-consumption conscious selection of
resources".  Three policies are provided:

* :class:`PowerAwarePackingPolicy` — the paper's choice: pack onto
  already-powered, already-used bricks so unused ones stay off.  This is
  what makes the Fig. 12 power-off fractions possible.
* :class:`FirstFitPolicy` — the neutral baseline (registration order).
* :class:`SpreadPolicy` — load-balancing anti-policy used by the
  placement ablation bench: most-free-first, which maximizes the number
  of powered bricks.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.orchestration.registry import (
    ComputeAvailability,
    MemoryAvailability,
)


class PlacementPolicy(Protocol):
    """Strategy interface for brick selection."""

    def select_memory_brick(
            self, candidates: Sequence[MemoryAvailability],
            size_bytes: int) -> Optional[str]:
        """Pick the dMEMBRICK to carve *size_bytes* from, or ``None``."""
        ...

    def select_compute_brick(
            self, candidates: Sequence[ComputeAvailability],
            vcpus: int, ram_bytes: int) -> Optional[str]:
        """Pick the dCOMPUBRICK to host a VM, or ``None``."""
        ...


def _memory_fits(candidate: MemoryAvailability, size_bytes: int) -> bool:
    return candidate.largest_span_bytes >= size_bytes


def _compute_fits(candidate: ComputeAvailability, vcpus: int,
                  ram_bytes: int) -> bool:
    return candidate.free_cores >= vcpus and candidate.free_ram_bytes >= ram_bytes


class FirstFitPolicy:
    """Take the first candidate (registration order) that fits."""

    def select_memory_brick(self, candidates: Sequence[MemoryAvailability],
                            size_bytes: int) -> Optional[str]:
        for candidate in candidates:
            if _memory_fits(candidate, size_bytes):
                return candidate.brick_id
        return None

    def select_compute_brick(self, candidates: Sequence[ComputeAvailability],
                             vcpus: int, ram_bytes: int) -> Optional[str]:
        for candidate in candidates:
            if _compute_fits(candidate, vcpus, ram_bytes):
                return candidate.brick_id
        return None


class PowerAwarePackingPolicy:
    """Pack onto powered/used bricks first; within those, best fit.

    Ordering for memory bricks: powered before off, then most-utilized
    first (tightest packing), then smallest adequate span.  For compute
    bricks: powered and VM-hosting before idle, then fewest free cores.
    Powering on a sleeping brick is the last resort.
    """

    def select_memory_brick(self, candidates: Sequence[MemoryAvailability],
                            size_bytes: int) -> Optional[str]:
        fitting = [c for c in candidates if _memory_fits(c, size_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (
            not c.powered,            # powered bricks first
            -c.utilization,           # pack the fullest
            c.largest_span_bytes,     # then tightest fitting span
            c.brick_id,               # deterministic tie-break
        ))
        return fitting[0].brick_id

    def select_compute_brick(self, candidates: Sequence[ComputeAvailability],
                             vcpus: int, ram_bytes: int) -> Optional[str]:
        fitting = [c for c in candidates if _compute_fits(c, vcpus, ram_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (
            not c.powered,
            not c.hosts_vms,          # co-locate with existing VMs
            c.free_cores,             # tightest core fit
            c.brick_id,
        ))
        return fitting[0].brick_id


class SpreadPolicy:
    """Most-free-first: maximizes brick count in use (ablation baseline)."""

    def select_memory_brick(self, candidates: Sequence[MemoryAvailability],
                            size_bytes: int) -> Optional[str]:
        fitting = [c for c in candidates if _memory_fits(c, size_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (-c.free_bytes, c.brick_id))
        return fitting[0].brick_id

    def select_compute_brick(self, candidates: Sequence[ComputeAvailability],
                             vcpus: int, ram_bytes: int) -> Optional[str]:
        fitting = [c for c in candidates if _compute_fits(c, vcpus, ram_bytes)]
        if not fitting:
            return None
        fitting.sort(key=lambda c: (-c.free_cores, c.brick_id))
        return fitting[0].brick_id
