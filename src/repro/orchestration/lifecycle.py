"""Ironic-style brick lifecycle state machine.

Every registered brick carries a :class:`BrickLifecycle` that tracks
where it is on the provisioning path::

    enrolled -> available -> active -> draining -> cleaning -> maintenance

``active`` is the only state in which placement may put new segments or
VMs on the brick — the registry's availability snapshots filter on
:attr:`BrickLifecycle.placeable` and the :class:`SegmentAllocator`'s
``accepting`` gate enforces it at the allocation layer too.  ``draining``
is deliberately still *addressable* (its allocator keeps accepting) so a
rolled-back relocation can land segments back where they came from; it
is merely removed from the placement pool.  ``cleaning`` and
``maintenance`` refuse allocations outright.

Transitions are legal-checked: the graph below is the complete set, and
anything else raises :class:`~repro.errors.LifecycleError`.  The reverse
edge ``draining -> active`` is the drain-abort path; ``maintenance ->
available`` is the return-to-service path (a brick re-enters service
through ``available -> active`` so operators get a hook between the
two).
"""

from __future__ import annotations

from enum import Enum

from repro.errors import LifecycleError


class BrickState(str, Enum):
    """Provisioning state of a brick (Ironic-style)."""

    ENROLLED = "enrolled"
    AVAILABLE = "available"
    ACTIVE = "active"
    DRAINING = "draining"
    CLEANING = "cleaning"
    MAINTENANCE = "maintenance"


#: Legal transition graph.  Keys are source states, values the set of
#: permitted destinations.
LEGAL_TRANSITIONS: dict[BrickState, frozenset[BrickState]] = {
    BrickState.ENROLLED: frozenset({BrickState.AVAILABLE}),
    BrickState.AVAILABLE: frozenset({BrickState.ACTIVE,
                                     BrickState.MAINTENANCE}),
    BrickState.ACTIVE: frozenset({BrickState.DRAINING}),
    # draining -> active is the drain-abort/rollback edge.
    BrickState.DRAINING: frozenset({BrickState.CLEANING,
                                    BrickState.ACTIVE}),
    BrickState.CLEANING: frozenset({BrickState.MAINTENANCE}),
    BrickState.MAINTENANCE: frozenset({BrickState.AVAILABLE}),
}

#: States in which the brick may receive *new* placements.
PLACEABLE_STATES = frozenset({BrickState.ACTIVE})

#: States in which the brick's allocator still accepts grants (draining
#: bricks accept so rollbacks can restore evacuated segments).
ACCEPTING_STATES = frozenset({BrickState.ENROLLED, BrickState.AVAILABLE,
                              BrickState.ACTIVE, BrickState.DRAINING})


class BrickLifecycle:
    """Mutable lifecycle record for one brick.

    Records the state and the (simulated) history of transitions so
    tests and reports can audit the path a brick took through a
    maintenance window.
    """

    __slots__ = ("brick_id", "state", "history")

    def __init__(self, brick_id: str,
                 state: BrickState = BrickState.ENROLLED) -> None:
        self.brick_id = brick_id
        self.state = state
        self.history: list[BrickState] = [state]

    def can_transition(self, target: BrickState) -> bool:
        return target in LEGAL_TRANSITIONS[self.state]

    def transition(self, target: BrickState) -> BrickState:
        """Move to *target*, raising :class:`LifecycleError` if illegal."""
        if not self.can_transition(target):
            raise LifecycleError(
                f"brick {self.brick_id}: illegal lifecycle transition "
                f"{self.state.value} -> {target.value} (legal: "
                f"{sorted(s.value for s in LEGAL_TRANSITIONS[self.state])})")
        self.state = target
        self.history.append(target)
        return target

    @property
    def placeable(self) -> bool:
        """True when new segments/VMs may be placed on this brick."""
        return self.state in PLACEABLE_STATES

    @property
    def accepting(self) -> bool:
        """True when the brick's allocator should honour grants."""
        return self.state in ACCEPTING_STATES

    def activate(self) -> None:
        """Walk enrolled -> available -> active (idempotent)."""
        if self.state is BrickState.ENROLLED:
            self.transition(BrickState.AVAILABLE)
        if self.state is BrickState.AVAILABLE:
            self.transition(BrickState.ACTIVE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BrickLifecycle({self.brick_id!r}, {self.state.value})"
