"""Orchestration plane: the Software-Defined Memory controller (§IV.C).

"Orchestration of the disaggregated resources is performed by a software
component integrated with OpenStack, namely the SDM Controller (SDM-C)."

* :mod:`repro.orchestration.requests` — allocation request records.
* :mod:`repro.orchestration.registry` — rack-wide resource inventory and
  availability accounting.
* :mod:`repro.orchestration.placement` — selection policies, including
  the power-consumption-conscious one the paper calls for.
* :mod:`repro.orchestration.sdm_controller` — the SDM-C itself: safe
  reservation, circuit programming, configuration push.
* :mod:`repro.orchestration.sharding` — the sharded SDM-C facade:
  per-rack reservation domains with a two-phase cross-shard reserve.
* :mod:`repro.orchestration.openstack` — the thin OpenStack-like facade
  that feeds VM allocation requests to the SDM-C.
"""

from repro.orchestration.elasticity import (
    ElasticityAction,
    ElasticMemoryManager,
    RebalanceReport,
)
from repro.orchestration.openstack import Flavor, OpenStackFacade
from repro.orchestration.placement import (
    FirstFitPolicy,
    PlacementPolicy,
    PowerAwarePackingPolicy,
    SpreadPolicy,
)
from repro.orchestration.registry import (
    ComputeAvailability,
    MemoryAvailability,
    ResourceRegistry,
)
from repro.orchestration.requests import (
    MemoryAllocationRequest,
    VmAllocationRequest,
)
from repro.orchestration.sdm_controller import SdmController, SdmTimings
from repro.orchestration.sharding import ShardedSdmController, ShardHold

__all__ = [
    "ComputeAvailability",
    "ElasticMemoryManager",
    "ElasticityAction",
    "RebalanceReport",
    "FirstFitPolicy",
    "Flavor",
    "MemoryAllocationRequest",
    "MemoryAvailability",
    "OpenStackFacade",
    "PlacementPolicy",
    "PowerAwarePackingPolicy",
    "ResourceRegistry",
    "SdmController",
    "SdmTimings",
    "ShardHold",
    "ShardedSdmController",
    "SpreadPolicy",
    "VmAllocationRequest",
]
