"""The Software-Defined Memory Controller (SDM-C).

Section IV.C assigns the SDM-C four roles:

  a) receive VM/bare-metal allocation requests from OpenStack;
  b) safely inspect resource availability and make a power-consumption
     conscious selection of resources;
  c) safely reserve selected resources;
  d) generate all the necessary configurations and push them via
     appropriate interfaces to all involved devices.

The controller implements the :class:`~repro.software.scaleup.MemoryAllocator`
protocol so :class:`~repro.software.scaleup.ScaleUpController` instances can
drive it, and reuses/establishes optical circuits through the
:class:`~repro.network.optical.topology.OpticalFabric`.

Reservation is a *critical section* — the "safely" in roles (b) and (c).
The ``*_process`` generator methods model it as a real DES resource:
concurrent requests running on one shared
:class:`~repro.sim.control.ControlContext` queue on
``ctx.reservation`` and serialize in FIFO order, with their queueing
delay accounted on the simulated clock (the Fig. 10 agility-under-load
regime).  A single-threaded controller also generates and pushes each
request's configuration (role d) before serving the next, so by default
that cost is charged while the section is held; a batching control
plane passes ``charge_config=False`` and pushes ONE amortized
configuration per batch instead (see
:mod:`repro.cluster.control_plane`).

The synchronous methods (``allocate``, ``release``, ``place_vm``) are
**zero-contention compatibility wrappers**: each runs its process as
the only traffic on a private one-shot simulator
(:func:`~repro.sim.control.run_sync`), so the latencies they report are
pure service time — no queueing delay is, or can be, included.  Use the
process API on a shared context to study contention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import PlacementError, ReproError, ReservationError
from repro.hardware.rmst import SegmentEntry
from repro.memory.address import align_up
from repro.memory.segments import RemoteSegment
from repro.network.optical.topology import FabricCircuit, OpticalFabric
from repro.orchestration.placement import (
    PlacementPolicy,
    PowerAwarePackingPolicy,
)
from repro.orchestration.registry import ResourceRegistry
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.control import ControlContext, run_sync
from repro.sim.engine import ProcessGenerator
from repro.software.scaleup import AttachTicket
from repro.units import gbps, milliseconds, transfer_time


@dataclass(frozen=True)
class SdmTimings:
    """Latency parameters of SDM-C operations."""

    #: Critical-section work per request: inspect + reserve (roles b, c).
    reservation_s: float = milliseconds(5)
    #: Generating and pushing configurations (role d), excluding the
    #: circuit-switch reconfiguration itself.
    config_generation_s: float = milliseconds(2)
    #: Brick power-on settle time when a sleeping brick must wake.
    power_on_s: float = milliseconds(500)


DEFAULT_SDM_TIMINGS = SdmTimings()

#: Default brick-to-brick copy rate when relocating a segment's backing
#: bytes during defragmentation (the dMEMBRICK-to-dMEMBRICK bulk path).
SEGMENT_COPY_RATE_BPS = gbps(40)


@dataclass
class _SegmentRecord:
    """Controller-private record of a live segment."""

    segment: RemoteSegment
    entry: SegmentEntry
    circuit: FabricCircuit


class SdmController:
    """The SDM-C service (one per rack, or one per pod).

    The controller is topology-oblivious by construction: it talks to a
    fabric facade (rack-local :class:`OpticalFabric` or pod-wide
    :class:`~repro.fabric.fabric.PodFabric`) for light paths and passes
    the requester's rack to the placement policy so locality is scored
    where topology is known.
    """

    def __init__(self, registry: ResourceRegistry, fabric: OpticalFabric,
                 policy: Optional[PlacementPolicy] = None,
                 timings: SdmTimings = DEFAULT_SDM_TIMINGS) -> None:
        self.registry = registry
        self.fabric = fabric
        self.policy = policy or PowerAwarePackingPolicy()
        self.timings = timings
        self._segments: dict[str, _SegmentRecord] = {}
        self._segment_ids = itertools.count()
        #: circuit_id -> number of segments riding it.
        self._circuit_refs: dict[str, int] = {}
        #: memory_brick_id -> segment ids backed by that brick, in
        #: insertion order.  Kept in lockstep with ``_segments`` so
        #: :meth:`segments_on` / :meth:`impacted_by_memory_brick` are
        #: O(segments on the brick) instead of O(all live segments) —
        #: defragmentation and failure handling call them in loops.
        self._segments_by_brick: dict[str, dict[str, None]] = {}
        self.allocations = 0
        self.releases = 0

    # -- per-brick segment index ---------------------------------------

    def _index_add(self, memory_brick_id: str, segment_id: str) -> None:
        self._segments_by_brick.setdefault(memory_brick_id, {})[
            segment_id] = None

    def _index_discard(self, memory_brick_id: str,
                       segment_id: str) -> None:
        bucket = self._segments_by_brick.get(memory_brick_id)
        if bucket is not None:
            bucket.pop(segment_id, None)
            if not bucket:
                del self._segments_by_brick[memory_brick_id]

    # ------------------------------------------------------------------
    # Reservation scope (overridden by the sharded controller)
    # ------------------------------------------------------------------

    def reserve_scope(self, ctx: ControlContext, label: str,
                      brick_ids: tuple = ()) -> ProcessGenerator:
        """Acquire the reservation critical section(s) covering *brick_ids*.

        Process-style helper returning an opaque token the caller must
        hand back to :meth:`release_scope` (in a ``finally``).  The
        single-domain controller ignores *brick_ids* — there is exactly
        one critical section.  :class:`~repro.orchestration.sharding.\
ShardedSdmController` maps the bricks to their shards and acquires the
        involved shard domains in canonical order (deadlock-free).  An
        empty *brick_ids* means "everything the controller manages"
        (used by whole-pool passes such as elasticity rebalancing).
        """
        grant = yield from ctx.enter_reservation(label)
        return (("reservation", ctx.reservation, grant),)

    def reserve_scope_stable(self, ctx: ControlContext, label: str,
                             brick_ids_fn) -> ProcessGenerator:
        """Acquire a scope whose brick set may move while we queue.

        *brick_ids_fn* is re-evaluated after the locks are granted: if
        the bricks meanwhile migrated outside the held scope (e.g. a
        concurrent relocation moved the segment to another shard), the
        scope is released and re-acquired for the new set — so the
        critical work below always runs under the locks that actually
        cover its bricks.  On the single-domain controller one lock
        covers everything, so the first acquisition always stands.
        """
        while True:
            token = yield from self.reserve_scope(
                ctx, label, brick_ids=tuple(brick_ids_fn()))
            if self.scope_covers(token, tuple(brick_ids_fn())):
                return token
            self.release_scope(token)

    def scope_covers(self, token, brick_ids: tuple) -> bool:
        """Does *token* hold every critical section *brick_ids* need?
        Trivially true with a single reservation domain."""
        return True

    def release_scope(self, token) -> None:
        """Release every critical section acquired by :meth:`reserve_scope`."""
        for _name, resource, grant in reversed(token):
            resource.release(grant)

    def _segment_scope_fn(self, segment_id: str, extra: tuple = ()):
        """brick_ids factory tracking a segment's *current* bricks.

        Used with :meth:`reserve_scope_stable`; when the segment is
        gone by grant time only *extra* remains and the inner operation
        raises its usual unknown-segment error under the lock.
        """
        def brick_ids() -> tuple:
            record = self._segments.get(segment_id)
            if record is None:
                return tuple(extra)
            return (record.segment.memory_brick_id,
                    record.segment.compute_brick_id) + tuple(extra)
        return brick_ids

    # ------------------------------------------------------------------
    # MemoryAllocator protocol (consumed by ScaleUpController)
    # ------------------------------------------------------------------

    def allocate(self, compute_brick_id: str, vm_id: str,
                 size_bytes: int) -> AttachTicket:
        """Reserve a remote segment + circuit for *compute_brick_id*.

        Zero-contention synchronous wrapper around
        :meth:`allocate_process` (see the module docstring).  Returns an
        :class:`AttachTicket` whose ``control_latency_s`` covers
        reservation, any brick power-on, circuit setup (only when a new
        circuit is needed) and configuration generation — pure service
        time, since the private context has no competing requests.
        """
        return run_sync(lambda ctx: self.allocate_process(
            ctx, compute_brick_id, vm_id, size_bytes))

    def allocate_process(self, ctx: ControlContext, compute_brick_id: str,
                         vm_id: str, size_bytes: int, *,
                         charge_config: bool = True) -> ProcessGenerator:
        """DES process: reserve a segment under the critical section.

        Queues on ``ctx.reservation`` (FIFO) for the SDM-C service and,
        while holding it, charges the full per-request work on the
        clock: inspect/reserve, any power-on, circuit setup and — in
        the per-request baseline — configuration generation, because a
        single-threaded controller finishes pushing one request's
        configuration before picking up the next (roles b-d of §IV.C).

        With ``charge_config=False`` only the inspect/reserve part is
        charged (and the ticket's latency excludes the config share):
        this is the hook for batching control planes, which hold the
        section per-reservation but push ONE amortized configuration
        for a whole batch (see
        :class:`~repro.cluster.control_plane.ControlPlane`).

        Returns (via ``yield from``) the :class:`AttachTicket`; the
        queueing delay is observable as the difference between entry
        time and grant time, and is traced as ``sdm.reserve.wait``.
        """
        grant = yield from ctx.enter_reservation(vm_id)
        try:
            ticket = self._allocate_inner(compute_brick_id, vm_id,
                                          size_bytes)
            ticket, critical_s = self._charged(ticket, charge_config)
            yield ctx.sim.timeout(critical_s)
        finally:
            ctx.reservation.release(grant)
        return ticket

    def _charged(self, ticket: AttachTicket,
                 charge_config: bool) -> tuple[AttachTicket, float]:
        """Apply the batching config-share convention; returns
        ``(ticket, critical_section_seconds)``.

        With ``charge_config=False`` the configuration-generation share
        is stripped from both the charged critical time and the
        ticket's reported latency (a batching control plane pushes one
        amortized configuration per batch instead).
        """
        critical_s = ticket.control_latency_s
        if not charge_config:
            critical_s -= self.timings.config_generation_s
            ticket = replace(ticket, control_latency_s=critical_s)
        return ticket, critical_s

    def _allocate_inner(self, compute_brick_id: str, vm_id: str,
                        size_bytes: int) -> AttachTicket:
        """The reservation work itself (state mutation + latency ledger)."""
        compute_entry = self.registry.compute(compute_brick_id)
        padded = align_up(size_bytes, self.registry.segment_alignment)
        return self._allocate_from_candidates(
            compute_entry, vm_id, padded,
            self.registry.memory_availability())

    def _allocate_from_candidates(self, compute_entry, vm_id: str,
                                  padded: int,
                                  candidates: list) -> AttachTicket:
        """Select a target among *candidates* and reserve on it.

        Walks the policy's preferences, skipping bricks we cannot reach:
        a brick with space but no free optical port (or, across racks,
        no free uplink) toward us is the "running low in terms of
        physical ports" situation of §III.  The requester's rack is
        passed so topology-aware policies prefer local memory and only
        spill across the pod switch when the rack is exhausted.
        """
        target_id: Optional[str] = None
        while candidates:
            pick = self.policy.select_memory_brick(
                candidates, padded,
                origin_rack_id=compute_entry.rack_id or None)
            if pick is None:
                break
            memory_entry = self.registry.memory(pick)
            if self._circuit_feasible(compute_entry.brick, memory_entry.brick):
                target_id = pick
                break
            candidates = [c for c in candidates if c.brick_id != pick]
        if target_id is None:
            raise PlacementError(
                f"no reachable dMEMBRICK can host {padded} contiguous bytes "
                f"for {compute_entry.brick.brick_id} "
                f"(capacity or optical ports exhausted)")
        memory_entry = self.registry.memory(target_id)

        latency = self.timings.reservation_s
        if self.registry.ensure_powered(target_id):
            latency += self.timings.power_on_s

        offset = memory_entry.allocator.allocate(padded)
        try:
            return self._finish_allocation(
                compute_entry, vm_id, padded, memory_entry, offset, latency)
        except ReproError:
            memory_entry.allocator.free(offset)
            raise

    def _finish_allocation(self, compute_entry, vm_id: str, padded: int,
                           memory_entry, offset: int,
                           latency: float) -> AttachTicket:
        """Build segment, window, circuit and RMST entry for a granted
        reservation at *offset* on *memory_entry*'s brick.

        The caller owns the capacity at *offset* (an allocator grant or
        a two-phase hold) and must roll it back if this raises; the
        window/circuit steps clean up after themselves.
        """
        target_id = memory_entry.brick.brick_id
        segment = RemoteSegment(
            segment_id=f"seg-{next(self._segment_ids)}",
            memory_brick_id=target_id,
            offset=offset,
            size=padded,
            compute_brick_id=compute_entry.brick.brick_id,
            vm_id=vm_id,
        )
        window = compute_entry.agent.kernel.address_map.reserve_window(
            segment.segment_id, padded)
        try:
            # Reuse a live circuit between the pair when one exists;
            # else program a new one through the optical switch.
            circuit = self.fabric.circuit_between(
                compute_entry.brick, memory_entry.brick)
            if circuit is None:
                circuit = self.fabric.connect(
                    compute_entry.brick, memory_entry.brick)
                latency += circuit.setup_time_s
        except ReproError:
            compute_entry.agent.kernel.address_map.cancel_reservation(
                segment.segment_id)
            raise
        self._circuit_refs[circuit.circuit_id] = (
            self._circuit_refs.get(circuit.circuit_id, 0) + 1)

        entry = SegmentEntry(
            segment_id=segment.segment_id,
            base=window.base,
            size=padded,
            remote_brick_id=target_id,
            remote_offset=offset,
            egress_port_id=circuit.port_toward(compute_entry.brick).port_id,
        )
        latency += self.timings.config_generation_s

        self._segments[segment.segment_id] = _SegmentRecord(
            segment, entry, circuit)
        self._index_add(target_id, segment.segment_id)
        self.allocations += 1
        return AttachTicket(segment=segment, rmst_entry=entry,
                            control_latency_s=latency)

    def _circuit_feasible(self, compute_brick, memory_brick) -> bool:
        """Can traffic flow between the two bricks?

        Delegated to the fabric, which knows the topology: a live
        circuit, free CBN ports, and — across racks — a free uplink to
        the pod switch on both sides.
        """
        return self.fabric.can_connect(compute_brick, memory_brick)

    def can_reach(self, compute_brick_id: str, memory_brick_id: str) -> bool:
        """Public reachability probe (used by migration pre-flight)."""
        return self._circuit_feasible(
            self.registry.compute(compute_brick_id).brick,
            self.registry.memory(memory_brick_id).brick)

    def release(self, segment_id: str) -> float:
        """Free a segment; tears the circuit down when unreferenced.

        Zero-contention synchronous wrapper around
        :meth:`release_process`; returns the orchestration latency.
        """
        return run_sync(lambda ctx: self.release_process(ctx, segment_id))

    def release_process(self, ctx: ControlContext,
                        segment_id: str) -> ProcessGenerator:
        """DES process: free a segment under the critical section.

        The whole release is reservation-table work, so it runs (and is
        charged) while holding the reservation scope covering the
        segment's bricks (the single critical section here; the
        involved shards on a sharded controller).  Returns the
        orchestration latency.
        """
        self.segment_record(segment_id)  # fail fast on unknown ids
        token = yield from self.reserve_scope_stable(
            ctx, segment_id, self._segment_scope_fn(segment_id))
        try:
            latency = self._release_inner(segment_id)
            yield ctx.sim.timeout(latency)
        finally:
            self.release_scope(token)
        return latency

    def _release_inner(self, segment_id: str) -> float:
        """The release work itself (state mutation + latency ledger)."""
        record = self._segments.pop(segment_id, None)
        if record is None:
            raise ReservationError(f"unknown segment {segment_id!r}")
        self._index_discard(record.segment.memory_brick_id, segment_id)
        memory_entry = self.registry.memory(record.segment.memory_brick_id)
        memory_entry.allocator.free(record.segment.offset)
        latency = self.timings.reservation_s

        circuit_id = record.circuit.circuit_id
        self._circuit_refs[circuit_id] -= 1
        if self._circuit_refs[circuit_id] == 0:
            del self._circuit_refs[circuit_id]
            self.fabric.disconnect(record.circuit)
            latency += record.circuit.circuit.setup_time_s
        self.releases += 1
        return latency

    # ------------------------------------------------------------------
    # Migration support: re-point a segment at a new compute brick
    # ------------------------------------------------------------------

    def repoint_segment(self, segment_id: str,
                        new_compute_brick_id: str) -> tuple[SegmentEntry, float]:
        """Re-assign a live segment to a different compute brick.

        This is the disaggregation migration win: the memory *content*
        never moves — the controller only swings the light path and
        issues a fresh RMST entry for the new brick.  Returns the entry
        the new brick's agent must program, plus the control latency.

        The caller is responsible for the source-side teardown (agent
        detach/unprogram) and the target-side attach, in that order.
        """
        record = self._segments.get(segment_id)
        if record is None:
            raise ReservationError(f"unknown segment {segment_id!r}")
        target_entry = self.registry.compute(new_compute_brick_id)
        memory_entry = self.registry.memory(record.segment.memory_brick_id)
        if not self._circuit_feasible(target_entry.brick, memory_entry.brick):
            raise PlacementError(
                f"no optical path from {new_compute_brick_id} to "
                f"{record.segment.memory_brick_id}")

        latency = self.timings.reservation_s

        # Swing the circuit: drop the old reference, take/make a new one.
        old_circuit = record.circuit
        self._circuit_refs[old_circuit.circuit_id] -= 1
        if self._circuit_refs[old_circuit.circuit_id] == 0:
            del self._circuit_refs[old_circuit.circuit_id]
            self.fabric.disconnect(old_circuit)
        new_circuit = self.fabric.circuit_between(
            target_entry.brick, memory_entry.brick)
        if new_circuit is None:
            new_circuit = self.fabric.connect(
                target_entry.brick, memory_entry.brick)
            latency += new_circuit.setup_time_s
        self._circuit_refs[new_circuit.circuit_id] = (
            self._circuit_refs.get(new_circuit.circuit_id, 0) + 1)

        segment = record.segment
        segment.compute_brick_id = new_compute_brick_id
        window = target_entry.agent.kernel.address_map.reserve_window(
            segment.segment_id, segment.size)
        entry = SegmentEntry(
            segment_id=segment.segment_id,
            base=window.base,
            size=segment.size,
            remote_brick_id=segment.memory_brick_id,
            remote_offset=segment.offset,
            egress_port_id=new_circuit.port_toward(
                target_entry.brick).port_id,
        )
        latency += self.timings.config_generation_s
        record.entry = entry
        record.circuit = new_circuit
        return entry, latency

    # ------------------------------------------------------------------
    # Defragmentation support: move a segment's bytes to another brick
    # ------------------------------------------------------------------

    def relocate_segment(self, segment_id: str, target_memory_brick_id: str,
                         copy_rate_bps: float = SEGMENT_COPY_RATE_BPS
                         ) -> tuple[SegmentEntry, float]:
        """Move a live segment's backing bytes onto another dMEMBRICK.

        The consolidation primitive behind background defragmentation:
        unlike :meth:`repoint_segment` (which swings the compute side
        and moves nothing), relocation copies the segment's content
        brick-to-brick, so free space coalesces on the source and the
        pod runs on fewer powered memory bricks.  The compute brick's
        local window is untouched — only the RMST entry's remote side
        changes — so the guest never notices beyond the copy time.

        Returns ``(new_entry, latency_s)`` where the latency covers
        reservation, target power-on, circuit setup, the byte copy at
        *copy_rate_bps*, glue reprogramming, and config generation.
        """
        record, compute_entry, target_entry = self._relocate_validate(
            segment_id, target_memory_brick_id)
        latency = self.timings.reservation_s
        if self.registry.ensure_powered(target_memory_brick_id):
            latency += self.timings.power_on_s
        new_offset = target_entry.allocator.allocate(record.segment.size)
        try:
            return self._relocate_commit(record, compute_entry,
                                         target_entry, new_offset,
                                         copy_rate_bps, latency)
        except ReproError:
            target_entry.allocator.free(new_offset)
            raise

    def relocate_segment_process(self, ctx: ControlContext,
                                 segment_id: str,
                                 target_memory_brick_id: str,
                                 copy_rate_bps: float = SEGMENT_COPY_RATE_BPS
                                 ) -> ProcessGenerator:
        """DES process form of :meth:`relocate_segment`.

        Holds the reservation scope covering the segment's current
        brick, its compute brick and the relocation target for the
        whole move (relocation rewrites the reservation tables on both
        sides).  On a sharded controller a cross-shard move runs as a
        two-phase reserve instead of taking a global lock.  Returns
        ``(new_entry, latency_s)``.
        """
        self.segment_record(segment_id)  # fail fast on unknown ids
        token = yield from self.reserve_scope_stable(
            ctx, f"relocate:{segment_id}",
            self._segment_scope_fn(segment_id,
                                   extra=(target_memory_brick_id,)))
        try:
            entry, latency = self.relocate_segment(
                segment_id, target_memory_brick_id,
                copy_rate_bps=copy_rate_bps)
            yield ctx.sim.timeout(latency)
        finally:
            self.release_scope(token)
        return entry, latency

    def _relocate_validate(self, segment_id: str,
                           target_memory_brick_id: str):
        """Pre-flight checks; returns ``(record, compute_entry,
        target_entry)`` or raises."""
        record = self._segments.get(segment_id)
        if record is None:
            raise ReservationError(f"unknown segment {segment_id!r}")
        segment = record.segment
        if target_memory_brick_id == segment.memory_brick_id:
            raise ReservationError(
                f"segment {segment_id!r} already lives on "
                f"{target_memory_brick_id!r}")
        compute_entry = self.registry.compute(segment.compute_brick_id)
        target_entry = self.registry.memory(target_memory_brick_id)
        if target_entry.failed:
            raise PlacementError(
                f"cannot relocate onto failed brick "
                f"{target_memory_brick_id!r}")
        if not self._circuit_feasible(compute_entry.brick,
                                      target_entry.brick):
            raise PlacementError(
                f"no optical path from {segment.compute_brick_id} to "
                f"{target_memory_brick_id}")
        return record, compute_entry, target_entry

    def _relocate_commit(self, record: _SegmentRecord, compute_entry,
                         target_entry, new_offset: int,
                         copy_rate_bps: float,
                         latency: float) -> tuple[SegmentEntry, float]:
        """The relocation work itself, with the target capacity already
        granted at *new_offset* (allocator grant or two-phase hold).
        The caller rolls that capacity back if this raises."""
        segment = record.segment
        target_memory_brick_id = target_entry.brick.brick_id
        new_circuit = self.fabric.circuit_between(
            compute_entry.brick, target_entry.brick)
        if new_circuit is None:
            new_circuit = self.fabric.connect(
                compute_entry.brick, target_entry.brick)
            latency += new_circuit.setup_time_s
        self._circuit_refs[new_circuit.circuit_id] = (
            self._circuit_refs.get(new_circuit.circuit_id, 0) + 1)

        # The bytes actually move (the one cost repointing never pays).
        latency += transfer_time(segment.size, copy_rate_bps)

        new_entry = SegmentEntry(
            segment_id=segment.segment_id,
            base=record.entry.base,
            size=record.entry.size,
            remote_brick_id=target_memory_brick_id,
            remote_offset=new_offset,
            egress_port_id=new_circuit.port_toward(
                compute_entry.brick).port_id,
        )
        # Reprogram the glue only when the entry is installed; a still-
        # RESERVED segment gets the updated entry from the controller
        # record when its owner programs it.
        agent = compute_entry.agent
        if any(e.segment_id == segment.segment_id
               for e in compute_entry.brick.rmst):
            latency += agent.unprogram_segment(segment.segment_id)
            latency += agent.program_segment(new_entry)

        source_entry = self.registry.memory(segment.memory_brick_id)
        source_entry.allocator.free(segment.offset)
        old_circuit = record.circuit
        self._circuit_refs[old_circuit.circuit_id] -= 1
        if self._circuit_refs[old_circuit.circuit_id] == 0:
            del self._circuit_refs[old_circuit.circuit_id]
            self.fabric.disconnect(old_circuit)

        latency += self.timings.config_generation_s
        self._index_discard(segment.memory_brick_id, segment.segment_id)
        self._index_add(target_memory_brick_id, segment.segment_id)
        segment.memory_brick_id = target_memory_brick_id
        segment.offset = new_offset
        record.entry = new_entry
        record.circuit = new_circuit
        return new_entry, latency

    # ------------------------------------------------------------------
    # VM allocation (role a: requests arriving from OpenStack)
    # ------------------------------------------------------------------

    def place_vm(self, request: VmAllocationRequest) -> tuple[str, float]:
        """Choose a compute brick for *request*; returns (brick, latency).

        Zero-contention synchronous wrapper around
        :meth:`place_vm_process`.  Local brick RAM may be insufficient
        for the request — boot-time memory beyond local DRAM is attached
        through :meth:`allocate` by the caller (see
        :mod:`repro.core.flows`).
        """
        return run_sync(lambda ctx: self.place_vm_process(ctx, request))

    def place_vm_process(self, ctx: ControlContext,
                         request: VmAllocationRequest) -> ProcessGenerator:
        """DES process: select (and reserve) a compute brick under the
        critical section.  Returns ``(brick_id, latency_s)``."""
        grant = yield from ctx.enter_reservation(request.vm_id)
        try:
            brick_id, latency = self._place_vm_inner(request)
            yield ctx.sim.timeout(latency)
        finally:
            ctx.reservation.release(grant)
        return brick_id, latency

    def _place_vm_inner(self, request: VmAllocationRequest
                        ) -> tuple[str, float]:
        """The placement work itself (state mutation + latency ledger)."""
        latency = self.timings.reservation_s
        candidates = self.registry.compute_availability()
        # Boot RAM beyond the brick's local DRAM comes from remote
        # segments, so only the vCPU requirement gates placement here.
        brick_id = self.policy.select_compute_brick(
            candidates, request.vcpus, ram_bytes=0,
            origin_rack_id=request.affinity_rack_id or None)
        if brick_id is None:
            raise PlacementError(
                f"no dCOMPUBRICK has {request.vcpus} free cores")
        if self.registry.ensure_powered(brick_id):
            latency += self.timings.power_on_s
        return brick_id, latency

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def scan_unhealthy_circuits(self, target_ber: float = 1e-12
                                ) -> list[FabricCircuit]:
        """Circuits carrying segments whose links no longer close.

        Optical paths degrade in service (connector contamination, fibre
        stress); the SDM-C periodically audits every circuit it manages
        against the FEC-free BER target.
        """
        unhealthy: list[FabricCircuit] = []
        seen: set[str] = set()
        for record in self._segments.values():
            circuit = record.circuit
            if circuit.circuit_id in seen:
                continue
            seen.add(circuit.circuit_id)
            if not circuit.circuit.closes(target_ber):
                unhealthy.append(circuit)
        return unhealthy

    def repair_circuit(self, circuit_id: str) -> float:
        """Re-establish a degraded circuit and re-program its segments.

        The light path is torn down and rebuilt (a fresh path through
        the switch avoids the lossy patch); every segment that rode it
        gets a new RMST entry with the same local window — no hotplug is
        needed, since the memory and its mapping are unchanged.  Returns
        the total control latency.
        """
        riders = [record for record in self._segments.values()
                  if record.circuit.circuit_id == circuit_id]
        if not riders:
            raise ReservationError(
                f"no managed segments ride circuit {circuit_id!r}")
        old_circuit = riders[0].circuit
        compute_brick = (old_circuit.brick_a
                         if old_circuit.brick_a.brick_id
                         == riders[0].segment.compute_brick_id
                         else old_circuit.brick_b)
        memory_brick = (old_circuit.brick_b
                        if compute_brick is old_circuit.brick_a
                        else old_circuit.brick_a)

        latency = self.timings.reservation_s
        del self._circuit_refs[circuit_id]
        self.fabric.disconnect(old_circuit)
        new_circuit = self.fabric.connect(compute_brick, memory_brick)
        latency += new_circuit.setup_time_s
        self._circuit_refs[new_circuit.circuit_id] = len(riders)

        agent = self.registry.compute(compute_brick.brick_id).agent
        for record in riders:
            new_entry = SegmentEntry(
                segment_id=record.entry.segment_id,
                base=record.entry.base,
                size=record.entry.size,
                remote_brick_id=record.entry.remote_brick_id,
                remote_offset=record.entry.remote_offset,
                egress_port_id=new_circuit.port_toward(
                    compute_brick).port_id,
            )
            latency += agent.unprogram_segment(record.entry.segment_id)
            latency += agent.program_segment(new_entry)
            record.entry = new_entry
            record.circuit = new_circuit
        latency += self.timings.config_generation_s
        return latency

    def impacted_by_memory_brick(self, brick_id: str
                                 ) -> list[RemoteSegment]:
        """Segments whose backing memory lives on *brick_id*.

        Served from the per-brick index (O(segments on the brick)), so
        failure handling stays cheap even with a large live-segment
        population.
        """
        return self.segments_on(brick_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_segments(self) -> list[RemoteSegment]:
        return [r.segment for r in self._segments.values()]

    def segments_on(self, memory_brick_id: str) -> list[RemoteSegment]:
        """Segments backed by *memory_brick_id*, in allocation order.

        Backed by the per-brick index maintained on allocate/release/
        relocate, not a scan of every live segment — defragmentation
        and failure handling call this in loops.
        """
        return [self._segments[segment_id].segment
                for segment_id in self._segments_by_brick.get(
                    memory_brick_id, ())]

    def segment_record(self, segment_id: str) -> _SegmentRecord:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise ReservationError(f"unknown segment {segment_id!r}") from None

    def circuit_utilization(self) -> dict[str, int]:
        """Live circuits and how many segments ride each."""
        return dict(self._circuit_refs)
