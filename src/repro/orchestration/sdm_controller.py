"""The Software-Defined Memory Controller (SDM-C).

Section IV.C assigns the SDM-C four roles:

  a) receive VM/bare-metal allocation requests from OpenStack;
  b) safely inspect resource availability and make a power-consumption
     conscious selection of resources;
  c) safely reserve selected resources;
  d) generate all the necessary configurations and push them via
     appropriate interfaces to all involved devices.

The controller implements the :class:`~repro.software.scaleup.MemoryAllocator`
protocol so :class:`~repro.software.scaleup.ScaleUpController` instances can
drive it, and reuses/establishes optical circuits through the
:class:`~repro.network.optical.topology.OpticalFabric`.

Reservation is a *critical section* — the "safely" in roles (b) and (c).
In timed simulations (Fig. 10) concurrent requests serialize on it; the
synchronous API here accounts its latency per request.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlacementError, ReservationError
from repro.hardware.rmst import SegmentEntry
from repro.memory.address import align_up
from repro.memory.segments import RemoteSegment, SegmentState
from repro.network.optical.topology import FabricCircuit, OpticalFabric
from repro.orchestration.placement import (
    PlacementPolicy,
    PowerAwarePackingPolicy,
)
from repro.orchestration.registry import ResourceRegistry
from repro.orchestration.requests import (
    MemoryAllocationRequest,
    VmAllocationRequest,
)
from repro.software.scaleup import AttachTicket
from repro.units import milliseconds


@dataclass(frozen=True)
class SdmTimings:
    """Latency parameters of SDM-C operations."""

    #: Critical-section work per request: inspect + reserve (roles b, c).
    reservation_s: float = milliseconds(5)
    #: Generating and pushing configurations (role d), excluding the
    #: circuit-switch reconfiguration itself.
    config_generation_s: float = milliseconds(2)
    #: Brick power-on settle time when a sleeping brick must wake.
    power_on_s: float = milliseconds(500)


DEFAULT_SDM_TIMINGS = SdmTimings()


@dataclass
class _SegmentRecord:
    """Controller-private record of a live segment."""

    segment: RemoteSegment
    entry: SegmentEntry
    circuit: FabricCircuit


class SdmController:
    """The SDM-C service (one per rack, or one per pod).

    The controller is topology-oblivious by construction: it talks to a
    fabric facade (rack-local :class:`OpticalFabric` or pod-wide
    :class:`~repro.fabric.fabric.PodFabric`) for light paths and passes
    the requester's rack to the placement policy so locality is scored
    where topology is known.
    """

    def __init__(self, registry: ResourceRegistry, fabric: OpticalFabric,
                 policy: Optional[PlacementPolicy] = None,
                 timings: SdmTimings = DEFAULT_SDM_TIMINGS) -> None:
        self.registry = registry
        self.fabric = fabric
        self.policy = policy or PowerAwarePackingPolicy()
        self.timings = timings
        self._segments: dict[str, _SegmentRecord] = {}
        self._segment_ids = itertools.count()
        #: circuit_id -> number of segments riding it.
        self._circuit_refs: dict[str, int] = {}
        self.allocations = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # MemoryAllocator protocol (consumed by ScaleUpController)
    # ------------------------------------------------------------------

    def allocate(self, compute_brick_id: str, vm_id: str,
                 size_bytes: int) -> AttachTicket:
        """Reserve a remote segment + circuit for *compute_brick_id*.

        Returns an :class:`AttachTicket` whose ``control_latency_s``
        covers reservation, any brick power-on, circuit setup (only when
        a new circuit is needed) and configuration generation.
        """
        compute_entry = self.registry.compute(compute_brick_id)
        padded = align_up(size_bytes, self.registry.segment_alignment)
        latency = self.timings.reservation_s

        # Walk the policy's preferences, skipping bricks we cannot reach:
        # a brick with space but no free optical port (or, across racks,
        # no free uplink) toward us is the "running low in terms of
        # physical ports" situation of §III.  The requester's rack is
        # passed so topology-aware policies prefer local memory and only
        # spill across the pod switch when the rack is exhausted.
        candidates = self.registry.memory_availability()
        target_id: Optional[str] = None
        while candidates:
            pick = self.policy.select_memory_brick(
                candidates, padded,
                origin_rack_id=compute_entry.rack_id or None)
            if pick is None:
                break
            memory_entry = self.registry.memory(pick)
            if self._circuit_feasible(compute_entry.brick, memory_entry.brick):
                target_id = pick
                break
            candidates = [c for c in candidates if c.brick_id != pick]
        if target_id is None:
            raise PlacementError(
                f"no reachable dMEMBRICK can host {padded} contiguous bytes "
                f"for {compute_brick_id} (capacity or optical ports exhausted)")
        memory_entry = self.registry.memory(target_id)

        if self.registry.ensure_powered(target_id):
            latency += self.timings.power_on_s

        offset = memory_entry.allocator.allocate(padded)
        segment = RemoteSegment(
            segment_id=f"seg-{next(self._segment_ids)}",
            memory_brick_id=target_id,
            offset=offset,
            size=padded,
            compute_brick_id=compute_brick_id,
            vm_id=vm_id,
        )

        # Reuse a live circuit between the pair when one exists; else
        # program a new one through the optical switch.
        circuit = self.fabric.circuit_between(
            compute_entry.brick, memory_entry.brick)
        if circuit is None:
            circuit = self.fabric.connect(
                compute_entry.brick, memory_entry.brick)
            latency += circuit.setup_time_s
        self._circuit_refs[circuit.circuit_id] = (
            self._circuit_refs.get(circuit.circuit_id, 0) + 1)

        window = compute_entry.agent.kernel.address_map.reserve_window(
            segment.segment_id, padded)
        entry = SegmentEntry(
            segment_id=segment.segment_id,
            base=window.base,
            size=padded,
            remote_brick_id=target_id,
            remote_offset=offset,
            egress_port_id=circuit.port_toward(compute_entry.brick).port_id,
        )
        latency += self.timings.config_generation_s

        self._segments[segment.segment_id] = _SegmentRecord(
            segment, entry, circuit)
        self.allocations += 1
        return AttachTicket(segment=segment, rmst_entry=entry,
                            control_latency_s=latency)

    def _circuit_feasible(self, compute_brick, memory_brick) -> bool:
        """Can traffic flow between the two bricks?

        Delegated to the fabric, which knows the topology: a live
        circuit, free CBN ports, and — across racks — a free uplink to
        the pod switch on both sides.
        """
        return self.fabric.can_connect(compute_brick, memory_brick)

    def can_reach(self, compute_brick_id: str, memory_brick_id: str) -> bool:
        """Public reachability probe (used by migration pre-flight)."""
        return self._circuit_feasible(
            self.registry.compute(compute_brick_id).brick,
            self.registry.memory(memory_brick_id).brick)

    def release(self, segment_id: str) -> float:
        """Free a segment; tears the circuit down when unreferenced."""
        record = self._segments.pop(segment_id, None)
        if record is None:
            raise ReservationError(f"unknown segment {segment_id!r}")
        memory_entry = self.registry.memory(record.segment.memory_brick_id)
        memory_entry.allocator.free(record.segment.offset)
        latency = self.timings.reservation_s

        circuit_id = record.circuit.circuit_id
        self._circuit_refs[circuit_id] -= 1
        if self._circuit_refs[circuit_id] == 0:
            del self._circuit_refs[circuit_id]
            self.fabric.disconnect(record.circuit)
            latency += record.circuit.circuit.setup_time_s
        self.releases += 1
        return latency

    # ------------------------------------------------------------------
    # Migration support: re-point a segment at a new compute brick
    # ------------------------------------------------------------------

    def repoint_segment(self, segment_id: str,
                        new_compute_brick_id: str) -> tuple[SegmentEntry, float]:
        """Re-assign a live segment to a different compute brick.

        This is the disaggregation migration win: the memory *content*
        never moves — the controller only swings the light path and
        issues a fresh RMST entry for the new brick.  Returns the entry
        the new brick's agent must program, plus the control latency.

        The caller is responsible for the source-side teardown (agent
        detach/unprogram) and the target-side attach, in that order.
        """
        record = self._segments.get(segment_id)
        if record is None:
            raise ReservationError(f"unknown segment {segment_id!r}")
        target_entry = self.registry.compute(new_compute_brick_id)
        memory_entry = self.registry.memory(record.segment.memory_brick_id)
        if not self._circuit_feasible(target_entry.brick, memory_entry.brick):
            raise PlacementError(
                f"no optical path from {new_compute_brick_id} to "
                f"{record.segment.memory_brick_id}")

        latency = self.timings.reservation_s

        # Swing the circuit: drop the old reference, take/make a new one.
        old_circuit = record.circuit
        self._circuit_refs[old_circuit.circuit_id] -= 1
        if self._circuit_refs[old_circuit.circuit_id] == 0:
            del self._circuit_refs[old_circuit.circuit_id]
            self.fabric.disconnect(old_circuit)
        new_circuit = self.fabric.circuit_between(
            target_entry.brick, memory_entry.brick)
        if new_circuit is None:
            new_circuit = self.fabric.connect(
                target_entry.brick, memory_entry.brick)
            latency += new_circuit.setup_time_s
        self._circuit_refs[new_circuit.circuit_id] = (
            self._circuit_refs.get(new_circuit.circuit_id, 0) + 1)

        segment = record.segment
        segment.compute_brick_id = new_compute_brick_id
        window = target_entry.agent.kernel.address_map.reserve_window(
            segment.segment_id, segment.size)
        entry = SegmentEntry(
            segment_id=segment.segment_id,
            base=window.base,
            size=segment.size,
            remote_brick_id=segment.memory_brick_id,
            remote_offset=segment.offset,
            egress_port_id=new_circuit.port_toward(
                target_entry.brick).port_id,
        )
        latency += self.timings.config_generation_s
        record.entry = entry
        record.circuit = new_circuit
        return entry, latency

    # ------------------------------------------------------------------
    # VM allocation (role a: requests arriving from OpenStack)
    # ------------------------------------------------------------------

    def place_vm(self, request: VmAllocationRequest) -> tuple[str, float]:
        """Choose a compute brick for *request*; returns (brick, latency).

        Local brick RAM may be insufficient for the request — boot-time
        memory beyond local DRAM is attached through :meth:`allocate` by
        the caller (see :mod:`repro.core.flows`).
        """
        latency = self.timings.reservation_s
        candidates = self.registry.compute_availability()
        # Boot RAM beyond the brick's local DRAM comes from remote
        # segments, so only the vCPU requirement gates placement here.
        brick_id = self.policy.select_compute_brick(
            candidates, request.vcpus, ram_bytes=0,
            origin_rack_id=request.affinity_rack_id or None)
        if brick_id is None:
            raise PlacementError(
                f"no dCOMPUBRICK has {request.vcpus} free cores")
        if self.registry.ensure_powered(brick_id):
            latency += self.timings.power_on_s
        return brick_id, latency

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def scan_unhealthy_circuits(self, target_ber: float = 1e-12
                                ) -> list[FabricCircuit]:
        """Circuits carrying segments whose links no longer close.

        Optical paths degrade in service (connector contamination, fibre
        stress); the SDM-C periodically audits every circuit it manages
        against the FEC-free BER target.
        """
        unhealthy: list[FabricCircuit] = []
        seen: set[str] = set()
        for record in self._segments.values():
            circuit = record.circuit
            if circuit.circuit_id in seen:
                continue
            seen.add(circuit.circuit_id)
            if not circuit.circuit.closes(target_ber):
                unhealthy.append(circuit)
        return unhealthy

    def repair_circuit(self, circuit_id: str) -> float:
        """Re-establish a degraded circuit and re-program its segments.

        The light path is torn down and rebuilt (a fresh path through
        the switch avoids the lossy patch); every segment that rode it
        gets a new RMST entry with the same local window — no hotplug is
        needed, since the memory and its mapping are unchanged.  Returns
        the total control latency.
        """
        riders = [record for record in self._segments.values()
                  if record.circuit.circuit_id == circuit_id]
        if not riders:
            raise ReservationError(
                f"no managed segments ride circuit {circuit_id!r}")
        old_circuit = riders[0].circuit
        compute_brick = (old_circuit.brick_a
                         if old_circuit.brick_a.brick_id
                         == riders[0].segment.compute_brick_id
                         else old_circuit.brick_b)
        memory_brick = (old_circuit.brick_b
                        if compute_brick is old_circuit.brick_a
                        else old_circuit.brick_a)

        latency = self.timings.reservation_s
        del self._circuit_refs[circuit_id]
        self.fabric.disconnect(old_circuit)
        new_circuit = self.fabric.connect(compute_brick, memory_brick)
        latency += new_circuit.setup_time_s
        self._circuit_refs[new_circuit.circuit_id] = len(riders)

        agent = self.registry.compute(compute_brick.brick_id).agent
        for record in riders:
            new_entry = SegmentEntry(
                segment_id=record.entry.segment_id,
                base=record.entry.base,
                size=record.entry.size,
                remote_brick_id=record.entry.remote_brick_id,
                remote_offset=record.entry.remote_offset,
                egress_port_id=new_circuit.port_toward(
                    compute_brick).port_id,
            )
            latency += agent.unprogram_segment(record.entry.segment_id)
            latency += agent.program_segment(new_entry)
            record.entry = new_entry
            record.circuit = new_circuit
        latency += self.timings.config_generation_s
        return latency

    def impacted_by_memory_brick(self, brick_id: str
                                 ) -> list[RemoteSegment]:
        """Segments whose backing memory lives on *brick_id*."""
        return self.segments_on(brick_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_segments(self) -> list[RemoteSegment]:
        return [r.segment for r in self._segments.values()]

    def segments_on(self, memory_brick_id: str) -> list[RemoteSegment]:
        return [r.segment for r in self._segments.values()
                if r.segment.memory_brick_id == memory_brick_id]

    def segment_record(self, segment_id: str) -> _SegmentRecord:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise ReservationError(f"unknown segment {segment_id!r}") from None

    def circuit_utilization(self) -> dict[str, int]:
        """Live circuits and how many segments ride each."""
        return dict(self._circuit_refs)
