"""Thin OpenStack-like facade.

The real SDM-C "runs as an autonomous service ... integrated with
OpenStack" (§IV.C).  Only the surface the controller consumes is needed
here: flavors (vCPU/RAM shapes) and a boot API that converts a flavor
into a :class:`~repro.orchestration.requests.VmAllocationRequest` and
hands it to whoever fulfils it (the :mod:`repro.core.flows` layer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib


@dataclass(frozen=True)
class Flavor:
    """A nova-style instance shape."""

    name: str
    vcpus: int
    ram_bytes: int

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigurationError(f"flavor {self.name}: vcpus must be >= 1")
        if self.ram_bytes <= 0:
            raise ConfigurationError(
                f"flavor {self.name}: ram must be positive")


#: A conventional small/medium/large/xlarge ladder.
DEFAULT_FLAVORS = {
    "small": Flavor("small", vcpus=1, ram_bytes=gib(2)),
    "medium": Flavor("medium", vcpus=2, ram_bytes=gib(4)),
    "large": Flavor("large", vcpus=4, ram_bytes=gib(8)),
    "xlarge": Flavor("xlarge", vcpus=8, ram_bytes=gib(16)),
}


class OpenStackFacade:
    """The request-intake surface of the cloud layer."""

    def __init__(self, fulfiller: Callable[[VmAllocationRequest], object],
                 flavors: Optional[dict[str, Flavor]] = None) -> None:
        """Create the facade.

        Args:
            fulfiller: Called with each :class:`VmAllocationRequest`;
                its return value is passed through to the caller.
            flavors: Flavor catalogue (defaults to the standard ladder).
        """
        self._fulfiller = fulfiller
        self._flavors = dict(flavors or DEFAULT_FLAVORS)
        self._instance_ids = itertools.count()
        self.boots_requested = 0

    # -- flavors ---------------------------------------------------------------

    def flavor(self, name: str) -> Flavor:
        try:
            return self._flavors[name]
        except KeyError:
            known = ", ".join(sorted(self._flavors))
            raise ConfigurationError(
                f"unknown flavor {name!r}; known: {known}") from None

    def register_flavor(self, flavor: Flavor) -> None:
        if flavor.name in self._flavors:
            raise ConfigurationError(f"flavor {flavor.name!r} exists")
        self._flavors[flavor.name] = flavor

    @property
    def flavors(self) -> list[Flavor]:
        return sorted(self._flavors.values(), key=lambda f: f.name)

    # -- boot API -----------------------------------------------------------------

    def boot(self, flavor_name: str, vm_id: Optional[str] = None) -> object:
        """Boot an instance of *flavor_name*; returns the fulfiller's
        result (a :class:`~repro.core.flows.BootResult` in the full stack)."""
        flavor = self.flavor(flavor_name)
        if vm_id is None:
            vm_id = f"vm-{next(self._instance_ids)}"
        request = VmAllocationRequest(
            vm_id=vm_id, vcpus=flavor.vcpus, ram_bytes=flavor.ram_bytes)
        self.boots_requested += 1
        return self._fulfiller(request)

    def boot_custom(self, vcpus: int, ram_bytes: int,
                    vm_id: Optional[str] = None) -> object:
        """Boot an instance with an ad-hoc shape (no flavor)."""
        if vm_id is None:
            vm_id = f"vm-{next(self._instance_ids)}"
        request = VmAllocationRequest(
            vm_id=vm_id, vcpus=vcpus, ram_bytes=ram_bytes)
        self.boots_requested += 1
        return self._fulfiller(request)
