"""Sharded SDM controller: per-rack reservation domains.

One SDM-C critical section serving a whole pod is the orchestration
tier's scalability wall: adding racks adds brick-side capacity but not
controller capacity (the `cluster_scale` sweep shows per-request p99
*worsening* from 1 to 2 racks at high arrival rates).  The dReDBox
orchestration tier is explicitly hierarchical — per-rack controllers
under a datacenter-level SDM — and both DRackSim (Puri et al.) and the
cross-layer disaggregated-memory survey identify centralized allocation
metadata as the limiting factor.

:class:`ShardedSdmController` splits the reservation domain into
**shards** — one per rack by default, or racks grouped round-robin into
a configured shard count — each backed by its own capacity-1 DES
critical section (a named domain on the shared
:class:`~repro.sim.control.ControlContext`).  The synchronous API and
every ``*_process`` generator of :class:`~repro.orchestration.\
sdm_controller.SdmController` are preserved; only the locking changes:

* **locality-first placements** that stay within the requester's shard
  take only that shard's lock — the common case under a locality-aware
  policy, so shards serve their racks in parallel;
* **cross-shard placements** (and cross-shard relocation / migration)
  run a **two-phase reserve**: the involved shard locks are acquired in
  canonical shard-ID order (deadlock-free), capacity on the target
  shard is tentatively *held* (phase 1), then the compute-side work —
  local window, light path across the pod switch — either commits the
  hold or rolls it back (phase 2).  A mid-pipeline rejection therefore
  never strands capacity: the hold is freed and the next candidate (or
  a :class:`~repro.errors.PlacementError`) follows.

No global lock exists anywhere: correctness across shards rests on the
canonical acquisition order plus hold/commit/abort, which the
sharding-invariant test suite checks (capacity conservation under
concurrent cross-shard traffic; explicit abort rollback).
"""

from __future__ import annotations

import bisect
import itertools
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    AllocationError,
    OrchestrationError,
    PlacementError,
    ReproError,
)
from repro.memory.address import align_up
from repro.network.optical.topology import OpticalFabric
from repro.orchestration.placement import PlacementPolicy
from repro.orchestration.registry import ResourceRegistry
from repro.orchestration.requests import VmAllocationRequest
from repro.orchestration.sdm_controller import (
    DEFAULT_SDM_TIMINGS,
    SEGMENT_COPY_RATE_BPS,
    SdmController,
    SdmTimings,
)
from repro.sim.control import ControlContext
from repro.sim.engine import ProcessGenerator
from repro.software.scaleup import AttachTicket

#: Prefix of the named reservation domains the shards live on.
SHARD_DOMAIN_PREFIX = "sdm."

#: Virtual nodes per shard on the takeover hash ring.  Enough replicas
#: that a dead shard's racks spread across the survivors instead of all
#: landing on one neighbour (the Ironic conductor hash-ring rationale).
RING_REPLICAS = 32


@dataclass(frozen=True)
class ShardHold:
    """A tentative (phase-1) capacity reservation on one shard.

    The held bytes are already carved out of the brick's allocator, so
    no concurrent placement can double-book them; until committed the
    hold is tracked by the controller and is rolled back (freed) when
    phase 2 rejects.
    """

    hold_id: int
    shard: str
    brick_id: str
    offset: int
    size: int


class ShardedSdmController(SdmController):
    """SDM-C facade whose reservation domain is sharded per rack.

    Drop-in replacement for :class:`SdmController`: same synchronous
    API, same ``*_process`` generators, same registry/fabric/policy
    collaborators.  ``shard_count=None`` (default) gives one shard per
    rack; an explicit count groups racks round-robin (in sorted rack-id
    order, so the mapping is canonical) into that many shards.
    ``shard_count=1`` degenerates to a single serialized controller —
    the baseline for shard-scaling sweeps.
    """

    def __init__(self, registry: ResourceRegistry, fabric: OpticalFabric,
                 policy: Optional[PlacementPolicy] = None,
                 timings: SdmTimings = DEFAULT_SDM_TIMINGS,
                 shard_count: Optional[int] = None) -> None:
        super().__init__(registry, fabric, policy=policy, timings=timings)
        if shard_count is not None and shard_count < 1:
            raise OrchestrationError(
                f"shard count must be >= 1, got {shard_count}")
        self._shard_count = shard_count
        self._rack_to_shard: dict[str, str] = {}
        self._mapped_brick_count = -1
        self._holds: dict[int, ShardHold] = {}
        self._hold_ids = itertools.count()
        #: Failed shard -> whether the survivors take its racks over.
        self._failed_shards: dict[str, bool] = {}
        #: Hash rings keyed by the frozen live-shard set they cover.
        self._rings: dict[frozenset, list[tuple[int, str]]] = {}

    # -- shard topology -----------------------------------------------------

    def _shard_map(self) -> dict[str, str]:
        """rack_id -> shard name, rebuilt when the brick set grows.

        Racks are sorted before assignment, so the mapping (and with it
        the canonical lock order) is deterministic regardless of
        registration order.  The registry only grows, so its brick
        count is a sufficient change marker — steady-state calls (the
        allocation hot path queries this per candidate) are a dict
        return, not a rescan.
        """
        if self.registry.brick_count != self._mapped_brick_count:
            racks = sorted(
                {e.rack_id for e in self.registry.compute_entries}
                | {e.rack_id for e in self.registry.memory_entries})
            count = self._shard_count or max(1, len(racks))
            self._rack_to_shard = {
                rack: f"shard{index % count}"
                for index, rack in enumerate(racks)}
            self._mapped_brick_count = self.registry.brick_count
        return self._rack_to_shard

    def shard_of_rack(self, rack_id: str) -> str:
        """The shard (reservation domain) responsible for *rack_id*.

        Normally the canonical round-robin assignment; while the home
        shard is failed *with takeover*, the rack is served by the
        surviving shard the consistent hash ring maps it to (Ironic
        conductor style), and moves back the moment the home shard is
        restored.  A shard failed *without* takeover keeps nominal
        responsibility — its racks are simply unmanaged until repair
        (see :meth:`rack_is_served`).
        """
        shard = self._shard_map().get(rack_id, "shard0")
        if self._failed_shards.get(shard, False):
            return self._takeover_shard(rack_id)
        return shard

    def shard_of_brick(self, brick_id: str) -> str:
        """The shard (reservation domain) responsible for *brick_id*."""
        return self.shard_of_rack(self.registry.rack_of(brick_id))

    def shard_names(self) -> list[str]:
        """Every shard name, sorted (the canonical acquisition order)."""
        names = sorted(set(self._shard_map().values()))
        return names or ["shard0"]

    @property
    def shard_count(self) -> int:
        return len(self.shard_names())

    def shard_members(self) -> dict[str, list[str]]:
        """shard name -> sorted rack ids it covers (introspection)."""
        members: dict[str, list[str]] = {}
        for rack_id, shard in sorted(self._shard_map().items()):
            members.setdefault(shard, []).append(rack_id)
        return members

    # -- shard failure and takeover -----------------------------------------

    @property
    def failed_shards(self) -> list[str]:
        """Currently failed shards, sorted."""
        return sorted(self._failed_shards)

    def live_shards(self) -> list[str]:
        """Shards currently serving, sorted (canonical order)."""
        return [name for name in self.shard_names()
                if name not in self._failed_shards]

    def rack_is_served(self, rack_id: str) -> bool:
        """True when some live shard manages *rack_id*'s reservations.

        False only for racks whose home shard failed *without*
        takeover: their capacity is unreachable until the shard
        repairs — the baseline the Ironic-style takeover is measured
        against.
        """
        return self.shard_of_rack(rack_id) not in self._failed_shards

    def _ring(self, live: frozenset) -> list[tuple[int, str]]:
        """The consistent hash ring over *live* shards (cached).

        Each shard contributes :data:`RING_REPLICAS` CRC32-hashed
        virtual nodes, so rack reassignment on membership change is
        both deterministic across processes and spread across the
        survivors.
        """
        ring = self._rings.get(live)
        if ring is None:
            ring = sorted(
                (zlib.crc32(f"{shard}#{replica}".encode("utf-8")), shard)
                for shard in live for replica in range(RING_REPLICAS))
            self._rings[live] = ring
        return ring

    def _takeover_shard(self, rack_id: str) -> str:
        """The live shard taking *rack_id* over (clockwise ring walk)."""
        live = frozenset(self.live_shards())
        if not live:
            raise OrchestrationError(
                "every controller shard is down; no takeover possible")
        ring = self._ring(live)
        point = zlib.crc32(rack_id.encode("utf-8"))
        index = bisect.bisect_left(ring, (point, "")) % len(ring)
        return ring[index][1]

    def takeover_map(self) -> dict[str, str]:
        """rack id -> shard currently serving it (introspection)."""
        return {rack_id: self.shard_of_rack(rack_id)
                for rack_id in sorted(self._shard_map())}

    def fail_shard(self, name: str, *,
                   takeover: bool = True) -> list[ShardHold]:
        """Kill one reservation shard; returns the holds rolled back.

        Every in-flight phase-1 :class:`ShardHold` on the dead shard is
        aborted — its tentatively carved bytes return to the pool, so a
        reserve the dead controller could no longer commit never
        strands capacity.  With *takeover* (the self-healing path) the
        surviving shards immediately adopt the dead shard's racks over
        the consistent hash ring; without it the racks go unmanaged
        (:meth:`rack_is_served` turns False) until
        :meth:`restore_shard`.
        """
        if name not in self.shard_names():
            raise OrchestrationError(f"unknown shard {name!r}")
        if name in self._failed_shards:
            raise OrchestrationError(f"shard {name!r} is already failed")
        if takeover and len(self.live_shards()) < 2:
            raise OrchestrationError(
                f"cannot take over {name!r}: no surviving shard")
        aborted = [hold for hold in self._holds.values()
                   if hold.shard == name]
        for hold in aborted:
            self._abort_hold(hold)
        self._failed_shards[name] = takeover
        return aborted

    def restore_shard(self, name: str) -> None:
        """Bring a repaired shard back; its racks return to it."""
        if name not in self._failed_shards:
            raise OrchestrationError(f"shard {name!r} is not failed")
        del self._failed_shards[name]

    # -- locking ------------------------------------------------------------

    def _enter_shards(self, ctx: ControlContext, label: str,
                      shards) -> ProcessGenerator:
        """Acquire the named shard domains in canonical (sorted) order.

        Every multi-shard acquisition in the controller goes through
        here, so two concurrent cross-shard operations always claim
        their common shards in the same order — the classic total-order
        argument that makes the two-phase reserve deadlock-free.
        """
        token = []
        for name in sorted(set(shards)):
            domain_name = SHARD_DOMAIN_PREFIX + name
            grant = yield from ctx.enter_domain(domain_name, label)
            token.append((name, ctx.domain(domain_name), grant))
        return tuple(token)

    def reserve_scope(self, ctx: ControlContext, label: str,
                      brick_ids: tuple = ()) -> ProcessGenerator:
        """Acquire the shard domains covering *brick_ids*.

        Empty *brick_ids* acquires every shard (whole-pool passes such
        as elasticity rebalancing).  The token is released through the
        inherited :meth:`SdmController.release_scope`.
        """
        if brick_ids:
            shards = {self.shard_of_brick(b) for b in brick_ids}
        else:
            shards = set(self.shard_names())
        token = yield from self._enter_shards(ctx, label, shards)
        return token

    def scope_covers(self, token, brick_ids: tuple) -> bool:
        """True when the held shard locks cover every brick — the
        re-validation behind :meth:`SdmController.reserve_scope_stable`
        (a segment may migrate to another shard while the scope
        queues)."""
        held = {name for name, _resource, _grant in token}
        needed = {self.shard_of_brick(b) for b in brick_ids}
        return needed <= held

    # -- two-phase holds ----------------------------------------------------

    @property
    def pending_holds(self) -> list[ShardHold]:
        """Phase-1 holds not yet committed or aborted (normally empty
        outside a cross-shard critical section)."""
        return list(self._holds.values())

    def _prepare_hold(self, brick_id: str, size: int) -> ShardHold:
        """Phase 1: tentatively carve *size* bytes out of *brick_id*.

        Must be called while holding the brick's shard lock.  Raises
        :class:`~repro.errors.AllocationError` when the brick cannot
        fit the request (the caller treats that as a rejected
        candidate, not a failure).
        """
        entry = self.registry.memory(brick_id)
        offset = entry.allocator.allocate(size)
        hold = ShardHold(hold_id=next(self._hold_ids),
                         shard=self.shard_of_brick(brick_id),
                         brick_id=brick_id, offset=offset, size=size)
        self._holds[hold.hold_id] = hold
        return hold

    def _commit_hold(self, hold: ShardHold) -> None:
        """Phase 2 success: the held bytes become a live reservation."""
        del self._holds[hold.hold_id]

    def _abort_hold(self, hold: ShardHold) -> None:
        """Phase 2 rejection: return the held bytes to the pool."""
        entry = self.registry.memory(hold.brick_id)
        entry.allocator.free(hold.offset)
        del self._holds[hold.hold_id]

    # -- allocation ---------------------------------------------------------

    def allocate_process(self, ctx: ControlContext, compute_brick_id: str,
                         vm_id: str, size_bytes: int, *,
                         charge_config: bool = True) -> ProcessGenerator:
        """DES process: reserve a segment under the *shard* critical
        sections.

        Locality first: the requester's home shard is tried under that
        single shard lock — the common case with a topology-aware
        policy, so different racks' allocations proceed in parallel.
        Only when the home shard cannot host the segment does the
        two-phase cross-shard path run: home and target shard locks in
        canonical order, tentative hold on the target, commit or
        rollback.  ``charge_config`` behaves exactly as on the base
        controller (batching planes amortize the config push).
        """
        compute_entry = self.registry.compute(compute_brick_id)
        padded = align_up(size_bytes, self.registry.segment_alignment)
        home = self.shard_of_brick(compute_brick_id)

        # Phase 0 — locality fast path: home shard lock only.
        token = yield from self._enter_shards(ctx, vm_id, [home])
        try:
            ticket = self._allocate_in_shard(compute_entry, vm_id,
                                             padded, home)
            if ticket is not None:
                ticket, critical_s = self._charged(ticket, charge_config)
                yield ctx.sim.timeout(critical_s)
                return ticket
        finally:
            self.release_scope(token)

        # Cross-shard path: optimistic candidate pick (no lock), then
        # two-phase reserve under both locks; a candidate invalidated
        # between pick and lock is skipped and the next one tried.
        rejected: set[str] = set()
        while True:
            pick = self._pick_remote_candidate(compute_entry, padded,
                                               home, rejected)
            if pick is None:
                raise PlacementError(
                    f"no reachable dMEMBRICK can host {padded} contiguous "
                    f"bytes for {compute_brick_id} (home shard and every "
                    f"remote shard rejected the placement)")
            target_shard = self.shard_of_brick(pick)
            token = yield from self._enter_shards(ctx, vm_id,
                                                  [home, target_shard])
            try:
                ticket = self._two_phase_allocate(compute_entry, vm_id,
                                                  padded, pick)
                if ticket is not None:
                    ticket, critical_s = self._charged(ticket,
                                                       charge_config)
                    yield ctx.sim.timeout(critical_s)
                    return ticket
            finally:
                self.release_scope(token)
            rejected.add(pick)

    def _allocate_in_shard(self, compute_entry, vm_id: str, padded: int,
                           shard: str) -> Optional[AttachTicket]:
        """Try the reservation with candidates restricted to *shard*.

        Returns ``None`` when the shard has no suitable brick (the
        caller falls through to the cross-shard path).
        """
        if shard in self._failed_shards:
            return None  # home shard down without takeover
        candidates = [c for c in self.registry.memory_availability()
                      if self.shard_of_rack(c.rack_id) == shard]
        if not candidates:
            return None
        try:
            return self._allocate_from_candidates(
                compute_entry, vm_id, padded, candidates)
        except PlacementError:
            return None

    def _pick_remote_candidate(self, compute_entry, padded: int,
                               home: str, rejected: set) -> Optional[str]:
        """Policy pick among non-home-shard bricks (optimistic, no lock)."""
        candidates = [c for c in self.registry.memory_availability()
                      if self.shard_of_rack(c.rack_id) != home
                      and self.rack_is_served(c.rack_id)
                      and c.brick_id not in rejected]
        if not candidates:
            return None
        return self.policy.select_memory_brick(
            candidates, padded,
            origin_rack_id=compute_entry.rack_id or None)

    def _two_phase_allocate(self, compute_entry, vm_id: str, padded: int,
                            target_id: str) -> Optional[AttachTicket]:
        """Two-phase reserve on *target_id*, both shard locks held.

        Phase 1 tentatively holds the capacity on the target shard;
        phase 2 validates reachability and builds the compute-side
        state (window, circuit).  Any phase-2 rejection rolls the hold
        back.  Returns ``None`` when this candidate must be skipped
        (stale availability, unreachable); propagates hard compute-side
        failures (e.g. address-map exhaustion) after rollback.
        """
        target_entry = self.registry.memory(target_id)
        if target_entry.failed:
            return None

        latency = self.timings.reservation_s
        try:
            hold = self._prepare_hold(target_id, padded)  # phase 1
        except AllocationError:
            return None  # shrank since the optimistic pick
        try:
            if not self._circuit_feasible(compute_entry.brick,
                                          target_entry.brick):
                self._abort_hold(hold)
                return None
            if self.registry.ensure_powered(target_id):
                latency += self.timings.power_on_s
            ticket = self._finish_allocation(
                compute_entry, vm_id, padded, target_entry,
                hold.offset, latency)
        except ReproError:
            if hold.hold_id in self._holds:
                self._abort_hold(hold)
            raise
        self._commit_hold(hold)
        return ticket

    # -- VM placement -------------------------------------------------------

    def place_vm_process(self, ctx: ControlContext,
                         request: VmAllocationRequest) -> ProcessGenerator:
        """DES process: select (and reserve) a compute brick under its
        shard's critical section.

        The candidate brick is picked optimistically, its shard lock is
        taken, and the selection is re-validated under the lock against
        that shard's bricks only; a shard whose capacity evaporated in
        between is excluded and the next preference tried.
        """
        excluded: set[str] = set()
        while True:
            candidates = [c for c in self.registry.compute_availability()
                          if self.rack_is_served(c.rack_id)
                          and c.brick_id not in excluded]
            pick = self.policy.select_compute_brick(
                candidates, request.vcpus, ram_bytes=0,
                origin_rack_id=request.affinity_rack_id or None)
            if pick is None:
                raise PlacementError(
                    f"no dCOMPUBRICK has {request.vcpus} free cores")
            shard = self.shard_of_brick(pick)
            mark = ctx.sim.events_processed
            token = yield from self._enter_shards(ctx, request.vm_id,
                                                  [shard])
            try:
                if ctx.sim.events_processed - mark <= 1:
                    # Uncontended fast path: acquiring the free shard
                    # lock processed at most our own grant event, so no
                    # other process ran between the optimistic snapshot
                    # and here — the pick is still the policy's argmin
                    # (it is the best of all candidates, hence the best
                    # of its own shard's subset) and the re-snapshot
                    # below would reproduce it verbatim.
                    brick_id = pick
                else:
                    shard_candidates = [
                        c for c in self.registry.compute_availability()
                        if self.shard_of_rack(c.rack_id) == shard
                        and self.rack_is_served(c.rack_id)
                        and c.brick_id not in excluded]
                    brick_id = self.policy.select_compute_brick(
                        shard_candidates, request.vcpus, ram_bytes=0,
                        origin_rack_id=request.affinity_rack_id or None)
                if brick_id is not None:
                    latency = self.timings.reservation_s
                    if self.registry.ensure_powered(brick_id):
                        latency += self.timings.power_on_s
                    yield ctx.sim.timeout(latency)
                    return brick_id, latency
            finally:
                self.release_scope(token)
            # Only the revalidated pick is written off: capacity that
            # reappears on the shard's other bricks (a concurrent
            # depart while we queue) stays eligible for the next try.
            excluded.add(pick)

    # -- release / relocation ----------------------------------------------

    # release_process is inherited: the base implementation already
    # routes its locking through reserve_scope, which this class
    # overrides to take the shards of the segment's memory and compute
    # bricks (canonical order).

    def relocate_segment_process(self, ctx: ControlContext,
                                 segment_id: str,
                                 target_memory_brick_id: str,
                                 copy_rate_bps: float = SEGMENT_COPY_RATE_BPS
                                 ) -> ProcessGenerator:
        """DES process: move a segment's bytes, two-phase across shards.

        Holds the shards of the source brick, the compute brick and the
        target brick (canonical order).  The target capacity is a
        phase-1 hold; the copy/reprogram pipeline commits it, and any
        mid-pipeline failure rolls it back, leaving the segment intact
        on its source brick.
        """
        self.segment_record(segment_id)  # fail fast on unknown ids
        token = yield from self.reserve_scope_stable(
            ctx, f"relocate:{segment_id}",
            self._segment_scope_fn(segment_id,
                                   extra=(target_memory_brick_id,)))
        try:
            # Re-validate under the locks: the plan may have gone stale
            # while this process queued (defrag plans outside the lock).
            record, compute_entry, target_entry = self._relocate_validate(
                segment_id, target_memory_brick_id)
            latency = self.timings.reservation_s
            if self.registry.ensure_powered(target_memory_brick_id):
                latency += self.timings.power_on_s
            hold = self._prepare_hold(target_memory_brick_id,
                                      record.segment.size)  # phase 1
            try:
                entry, latency = self._relocate_commit(
                    record, compute_entry, target_entry, hold.offset,
                    copy_rate_bps, latency)
            except ReproError:
                self._abort_hold(hold)
                raise
            self._commit_hold(hold)
            yield ctx.sim.timeout(latency)
        finally:
            self.release_scope(token)
        return entry, latency
