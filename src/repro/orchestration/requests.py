"""Allocation request records flowing into the SDM controller."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OrchestrationError


@dataclass(frozen=True)
class VmAllocationRequest:
    """A VM/bare-metal allocation request, as received from OpenStack
    (§IV.C role a).

    Attributes:
        vm_id: Requested instance identifier.
        vcpus: Cores the instance needs.
        ram_bytes: Memory the instance needs at boot.
        affinity_rack_id: Optional placement hint — prefer compute
            bricks in this rack (e.g. near the tenant's other VMs or a
            pinned dataset); topology-aware policies score it as rack
            distance, topology-oblivious ones ignore it.
    """

    vm_id: str
    vcpus: int
    ram_bytes: int
    affinity_rack_id: str = ""

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise OrchestrationError(f"vcpus must be >= 1, got {self.vcpus}")
        if self.ram_bytes <= 0:
            raise OrchestrationError(
                f"ram must be positive, got {self.ram_bytes}")


@dataclass(frozen=True)
class MemoryAllocationRequest:
    """A dynamic scale-up request for an existing instance.

    Attributes:
        compute_brick_id: The brick whose VM wants more memory.
        vm_id: The consuming VM.
        size_bytes: How much memory to attach.
    """

    compute_brick_id: str
    vm_id: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise OrchestrationError(
                f"size must be positive, got {self.size_bytes}")
