"""Plain-text table rendering."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned.  Floats are
    shown with four significant digits unless already strings.
    """
    if not headers:
        raise ValueError("a table needs at least one column")
    formatted_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells for {len(headers)} columns")
        formatted_rows.append([_format_cell(cell) for cell in row])

    widths = [len(str(h)) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    numeric = [
        all(_is_numeric(row[i]) for row in formatted_rows) if formatted_rows
        else False
        for i in range(len(headers))
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "| " + " | ".join(parts) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_line([str(h) for h in headers]))
    lines.append(separator)
    for row in formatted_rows:
        lines.append(fmt_line(row))
    lines.append(separator)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
