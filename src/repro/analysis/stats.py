"""Summary and box-plot statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Standard summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
                f"min={self.minimum:.4g} med={self.median:.4g} "
                f"max={self.maximum:.4g}")


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of *values* (population std)."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey box-plot five-number summary plus outliers.

    Whiskers extend to the most extreme data point within 1.5 IQR of the
    box; anything beyond is an outlier — the convention the Fig. 7 box
    plot follows.
    """

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Tukey box-plot statistics of *values*."""
    if len(values) == 0:
        raise ValueError("cannot compute box-plot stats of an empty sample")
    arr = np.sort(np.asarray(values, dtype=float))
    q1, median, q3 = (float(q) for q in np.percentile(arr, [25, 50, 75]))
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= low_fence) & (arr <= high_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    outliers = tuple(float(v) for v in arr[(arr < low_fence) | (arr > high_fence)])
    return BoxplotStats(
        median=median,
        q1=q1,
        q3=q3,
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all values must be positive)."""
    if len(values) == 0:
        raise ValueError("cannot average an empty sample")
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(math.exp(np.log(arr).mean()))
