"""Statistics and plain-text rendering for experiment outputs.

The benches print the same rows/series the paper's tables and figures
report; these helpers compute the statistics (including the box-plot
five-number summaries of Fig. 7) and render ASCII tables / bar charts.
"""

from repro.analysis.figures import render_bars, render_grouped_bars
from repro.analysis.stats import (
    BoxplotStats,
    SummaryStats,
    boxplot_stats,
    geometric_mean,
    summarize,
)
from repro.analysis.tables import render_table

__all__ = [
    "BoxplotStats",
    "SummaryStats",
    "boxplot_stats",
    "geometric_mean",
    "render_bars",
    "render_grouped_bars",
    "render_table",
    "summarize",
]
