"""Plain-text bar charts (the terminal rendition of the paper's figures)."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Glyph used for bar fills.
_BAR = "#"


def render_bars(labels: Sequence[str], values: Sequence[float],
                title: str = "", unit: str = "", width: int = 50,
                log_scale: bool = False) -> str:
    """Render one horizontal bar per (label, value).

    ``log_scale=True`` maps bar lengths to log10 of the value — used for
    BER charts whose values span many decades.
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels for {len(values)} values")
    if not labels:
        raise ValueError("nothing to render")
    if width < 10:
        raise ValueError("width must be at least 10 characters")

    if log_scale:
        if any(v <= 0 for v in values):
            raise ValueError("log-scale bars need positive values")
        magnitudes = [math.log10(v) for v in values]
        low = min(magnitudes)
        span = max(magnitudes) - low or 1.0
        lengths = [max(1, round((m - low) / span * (width - 1)) + 1)
                   for m in magnitudes]
    else:
        peak = max(values)
        if peak < 0:
            raise ValueError("bar values must not all be negative")
        lengths = [
            0 if peak == 0 else max(0, round(v / peak * width))
            for v in values
        ]

    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value, length in zip(labels, values, lengths):
        bar = _BAR * length
        value_text = f"{value:.4g}{(' ' + unit) if unit else ''}"
        lines.append(f"{label.ljust(label_width)} |{bar} {value_text}")
    return "\n".join(lines)


def render_grouped_bars(categories: Sequence[str],
                        series: Mapping[str, Sequence[float]],
                        title: str = "", unit: str = "",
                        width: int = 40) -> str:
    """Render grouped bars: for each category, one bar per series.

    Mirrors figures like Fig. 10/12/13 where each workload/config has a
    bar per system or concurrency level.
    """
    if not categories or not series:
        raise ValueError("need at least one category and one series")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories")
    peak = max(max(values) for values in series.values())
    if peak <= 0:
        peak = 1.0
    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for index, category in enumerate(categories):
        lines.append(f"{category}:")
        for name, values in series.items():
            value = values[index]
            length = max(0, round(value / peak * width))
            value_text = f"{value:.4g}{(' ' + unit) if unit else ''}"
            lines.append(
                f"  {name.ljust(name_width)} |{_BAR * length} {value_text}")
    return "\n".join(lines)
