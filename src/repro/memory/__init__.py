"""Disaggregated memory: address spaces, segments, allocation, access paths.

This package implements the data-plane view of remote memory (§II-III):

* :mod:`repro.memory.address` — address ranges and per-brick physical
  address maps (local DRAM window + hotplugged remote windows).
* :mod:`repro.memory.segments` — the remote-segment objects orchestration
  hands out.
* :mod:`repro.memory.allocator` — first-fit offset allocation with
  coalescing on each dMEMBRICK.
* :mod:`repro.memory.transactions` — read/write transaction descriptors.
* :mod:`repro.memory.path` — end-to-end latency models of a remote access
  over the circuit-switched and packet-switched planes (the Fig. 8
  quantities).
"""

from repro.memory.address import AddressRange, PhysicalAddressMap
from repro.memory.allocator import SegmentAllocator
from repro.memory.contention import (
    ContentionResult,
    MemoryContentionSim,
)
from repro.memory.path import (
    CircuitAccessPath,
    PacketAccessPath,
    PacketPathBlocks,
)
from repro.memory.segments import RemoteSegment, SegmentState
from repro.memory.transactions import (
    MemoryOp,
    MemoryTransaction,
    TransactionResult,
)

__all__ = [
    "AddressRange",
    "CircuitAccessPath",
    "ContentionResult",
    "MemoryContentionSim",
    "MemoryOp",
    "MemoryTransaction",
    "PacketAccessPath",
    "PacketPathBlocks",
    "PhysicalAddressMap",
    "RemoteSegment",
    "SegmentAllocator",
    "SegmentState",
    "TransactionResult",
]
