"""End-to-end remote-memory access paths.

Two data-plane variants, mirroring §III:

* :class:`CircuitAccessPath` — the mainline approach: transactions ride an
  already-established optical circuit; no packetization, no MAC/PHY, no
  per-hop arbitration.  This is the latency-minimizing design point.
* :class:`PacketAccessPath` — the experimental packet-switched mode, whose
  measured round-trip breakdown is Fig. 8: on-brick switch, MAC/PHY blocks
  on both bricks, and the optical propagation delay.

Both produce a :class:`~repro.memory.transactions.TransactionResult` whose
:class:`~repro.network.latency.LatencyBreakdown` lists every block in path
order, grouped by ``dCOMPUBRICK`` / ``optical path`` / ``dMEMBRICK``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CircuitError, RoutingError
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.network.latency import LatencyBreakdown
from repro.network.optical.topology import FabricCircuit
from repro.network.packet.mac_phy import MacPhy
from repro.network.packet.nic import NetworkInterface
from repro.network.packet.switch import OnBrickPacketSwitch
from repro.memory.transactions import (
    MemoryTransaction,
    TransactionResult,
)
from repro.units import nanoseconds

#: Fixed latency of one GTH transceiver traversal (serial/parallel
#: conversion) on the raw circuit path, where no MAC/PHY block exists.
TRANSCEIVER_LATENCY_S = nanoseconds(50)


def link_one_way_s(hop_path) -> float:
    """One-way link latency composed from a fabric hop path.

    A transceiver traversal at each end plus the path's flight time —
    the single composition every timed link model (contention sim, data
    mover scheduler) charges, so they cannot drift from the access-path
    model above.
    """
    return hop_path.propagation_delay_s + 2 * TRANSCEIVER_LATENCY_S

#: Group labels used in breakdowns (match the Fig. 8 legend).
GROUP_COMPUTE = "dCOMPUBRICK"
GROUP_OPTICAL = "optical path"
GROUP_MEMORY = "dMEMBRICK"


def propagation_segments(hop_path, total_delay_s: float
                         ) -> list[tuple[str, float]]:
    """One-way propagation itemized from an interconnect hop list.

    When *hop_path* is ``None`` (single-rack fabrics that predate the
    pod layer) the whole flight time stays one ``"propagation"``
    component; otherwise each costed hop becomes its own
    ``"propagation:<hop>"`` entry, so a pod-spanning access shows where
    the extra nanoseconds live.
    """
    if hop_path is None:
        return [("propagation", total_delay_s)]
    segments = [(f"propagation:{name}", seconds)
                for name, seconds in hop_path.propagation_segments()]
    return segments or [("propagation", total_delay_s)]


class CircuitAccessPath:
    """Remote access over an established optical circuit."""

    def __init__(self, compute: ComputeBrick, memory: MemoryBrick,
                 circuit: FabricCircuit) -> None:
        if circuit.brick_a is not compute and circuit.brick_b is not compute:
            raise CircuitError(
                f"circuit {circuit.circuit_id} does not touch "
                f"{compute.brick_id}")
        if circuit.brick_a is not memory and circuit.brick_b is not memory:
            raise CircuitError(
                f"circuit {circuit.circuit_id} does not touch "
                f"{memory.brick_id}")
        self.compute = compute
        self.memory = memory
        self.circuit = circuit

    def access(self, txn: MemoryTransaction,
               now: Optional[float] = None) -> TransactionResult:
        """Drive *txn* through the circuit; returns the latency ledger.

        When *now* is given, memory-controller occupancy is modelled (a
        transaction arriving while the controller is busy queues behind
        it); otherwise the unloaded service time is charged.
        """
        decision = self.compute.glue.steer(txn.address)
        local_port = self.circuit.port_toward(self.compute)
        if decision.egress_port_id != local_port.port_id:
            raise CircuitError(
                f"RMST steers {txn.address:#x} to {decision.egress_port_id}, "
                f"but the circuit terminates on {local_port.port_id}")
        if decision.entry.remote_brick_id != self.memory.brick_id:
            raise CircuitError(
                f"segment {decision.entry.segment_id} lives on "
                f"{decision.entry.remote_brick_id}, not {self.memory.brick_id}")

        prop = self.circuit.propagation_delay_s
        prop_segments = propagation_segments(
            getattr(self.circuit, "hop_path", None), prop)
        request_bytes = txn.size_bytes if txn.is_write else 0
        response_bytes = 0 if txn.is_write else txn.size_bytes

        breakdown = LatencyBreakdown()
        breakdown.add("tgl", decision.latency_s, GROUP_COMPUTE)
        breakdown.add("transceiver",
                      TRANSCEIVER_LATENCY_S, GROUP_COMPUTE)
        breakdown.add("serialization",
                      local_port.serialization_delay(request_bytes + 16),
                      GROUP_OPTICAL)
        breakdown.add_segments(prop_segments, GROUP_OPTICAL)
        breakdown.add("transceiver", TRANSCEIVER_LATENCY_S, GROUP_MEMORY)

        module, local_offset, glue_in = self.memory.glue.ingress(
            decision.remote_address)
        breakdown.add("glue", glue_in, GROUP_MEMORY)
        breakdown.add("memory",
                      self._memory_service(module, txn.size_bytes, now,
                                           breakdown.total_s),
                      GROUP_MEMORY)
        breakdown.add("glue", self.memory.glue.egress_latency_s(), GROUP_MEMORY)
        breakdown.add("transceiver", TRANSCEIVER_LATENCY_S, GROUP_MEMORY)
        breakdown.add("serialization",
                      local_port.serialization_delay(response_bytes + 16),
                      GROUP_OPTICAL)
        breakdown.add_segments(prop_segments, GROUP_OPTICAL)
        breakdown.add("transceiver", TRANSCEIVER_LATENCY_S, GROUP_COMPUTE)
        breakdown.add("tgl", self.compute.glue.response_path_latency_s,
                      GROUP_COMPUTE)
        return TransactionResult(
            transaction=txn,
            breakdown=breakdown,
            remote_brick_id=self.memory.brick_id,
            remote_offset=local_offset,
        )

    @staticmethod
    def _memory_service(module, size_bytes: int, now: Optional[float],
                        elapsed_s: float) -> float:
        if now is None:
            return module.controller.service_time(size_bytes)
        arrival = now + elapsed_s
        finish = module.controller.occupy(arrival, size_bytes)
        return finish - arrival


@dataclass
class PacketPathBlocks:
    """The PBN blocks on one brick: NI, packet switch, MAC/PHY."""

    nic: NetworkInterface
    switch: OnBrickPacketSwitch
    mac_phy: MacPhy

    @classmethod
    def for_brick(cls, brick_id: str,
                  switch: Optional[OnBrickPacketSwitch] = None,
                  fec_enabled: bool = False) -> "PacketPathBlocks":
        """Default block set named after *brick_id*."""
        return cls(
            nic=NetworkInterface(f"{brick_id}.ni"),
            switch=switch or OnBrickPacketSwitch(f"{brick_id}.pswitch"),
            mac_phy=MacPhy(f"{brick_id}.macphy", fec_enabled=fec_enabled),
        )


class PacketAccessPath:
    """Remote access over the experimental packet-switched plane.

    The full Fig. 8 chain, request and response:

    TGL -> NI -> on-brick switch -> MAC/PHY -> wire -> MAC/PHY ->
    on-brick switch -> glue -> memory -> glue -> NI -> switch ->
    MAC/PHY -> wire -> MAC/PHY -> switch -> TGL.
    """

    def __init__(self, compute: ComputeBrick, memory: MemoryBrick,
                 compute_blocks: Optional[PacketPathBlocks] = None,
                 memory_blocks: Optional[PacketPathBlocks] = None,
                 propagation_delay_s: float = nanoseconds(49),
                 hop_path=None) -> None:
        self.compute = compute
        self.memory = memory
        self.compute_blocks = (compute_blocks
                               or PacketPathBlocks.for_brick(compute.brick_id))
        self.memory_blocks = (memory_blocks
                              or PacketPathBlocks.for_brick(memory.brick_id))
        #: Interconnect hop list; when given it both sets the flight time
        #: and lets the breakdown itemize per-tier propagation.
        self.hop_path = hop_path
        if hop_path is not None:
            propagation_delay_s = hop_path.propagation_delay_s
        if propagation_delay_s < 0:
            raise RoutingError("propagation delay must be non-negative")
        self.propagation_delay_s = propagation_delay_s

    def ensure_routes(self) -> None:
        """Install default single-port lookup entries on both switches if
        orchestration has not programmed them yet."""
        cswitch = self.compute_blocks.switch
        if self.memory.brick_id not in cswitch.routed_destinations():
            port = self.compute.packet_ports.free_ports[0]
            cswitch.program_route(self.memory.brick_id, [port.port_id])
        mswitch = self.memory_blocks.switch
        if self.compute.brick_id not in mswitch.routed_destinations():
            port = self.memory.packet_ports.free_ports[0]
            mswitch.program_route(self.compute.brick_id, [port.port_id])

    def access(self, txn: MemoryTransaction,
               now: Optional[float] = None) -> TransactionResult:
        """Drive *txn* through the packet plane; returns the ledger."""
        decision = self.compute.glue.steer(txn.address)
        if decision.entry.remote_brick_id != self.memory.brick_id:
            raise RoutingError(
                f"segment {decision.entry.segment_id} lives on "
                f"{decision.entry.remote_brick_id}, not {self.memory.brick_id}")

        cblocks, mblocks = self.compute_blocks, self.memory_blocks
        prop_segments = propagation_segments(self.hop_path,
                                             self.propagation_delay_s)
        breakdown = LatencyBreakdown()

        # --- request: compute brick egress -------------------------------
        breakdown.add("tgl", decision.latency_s, GROUP_COMPUTE)
        request = cblocks.nic.frame_request(
            txn.is_write, self.compute.brick_id, self.memory.brick_id,
            decision.remote_address, txn.size_bytes)
        breakdown.add("ni", cblocks.nic.pipeline_latency_s, GROUP_COMPUTE)
        _port, switch_latency = cblocks.switch.forward(request)
        breakdown.add("switch", switch_latency, GROUP_COMPUTE)
        breakdown.add("mac_phy",
                      cblocks.mac_phy.transmit_latency_s(request.frame_bytes),
                      GROUP_COMPUTE)
        breakdown.add_segments(prop_segments, GROUP_OPTICAL)

        # --- request: memory brick ingress ---------------------------------
        breakdown.add("mac_phy", mblocks.mac_phy.receive_latency_s(),
                      GROUP_MEMORY)
        breakdown.add("switch", mblocks.switch.traversal_latency_s,
                      GROUP_MEMORY)
        mblocks.switch.packets_forwarded += 1
        module, local_offset, glue_in = self.memory.glue.ingress(
            decision.remote_address)
        breakdown.add("glue", glue_in, GROUP_MEMORY)
        breakdown.add("memory",
                      self._memory_service(module, txn.size_bytes, now,
                                           breakdown.total_s),
                      GROUP_MEMORY)

        # --- response: memory brick egress -----------------------------------
        breakdown.add("glue", self.memory.glue.egress_latency_s(), GROUP_MEMORY)
        response = mblocks.nic.frame_response(request, txn.size_bytes)
        breakdown.add("ni", mblocks.nic.pipeline_latency_s, GROUP_MEMORY)
        _port, switch_latency = mblocks.switch.forward(response)
        breakdown.add("switch", switch_latency, GROUP_MEMORY)
        breakdown.add("mac_phy",
                      mblocks.mac_phy.transmit_latency_s(response.frame_bytes),
                      GROUP_MEMORY)
        breakdown.add_segments(prop_segments, GROUP_OPTICAL)

        # --- response: compute brick ingress ------------------------------------
        breakdown.add("mac_phy", cblocks.mac_phy.receive_latency_s(),
                      GROUP_COMPUTE)
        breakdown.add("switch", cblocks.switch.traversal_latency_s,
                      GROUP_COMPUTE)
        cblocks.switch.packets_forwarded += 1
        breakdown.add("tgl", self.compute.glue.response_path_latency_s,
                      GROUP_COMPUTE)

        return TransactionResult(
            transaction=txn,
            breakdown=breakdown,
            remote_brick_id=self.memory.brick_id,
            remote_offset=local_offset,
        )

    @staticmethod
    def _memory_service(module, size_bytes: int, now: Optional[float],
                        elapsed_s: float) -> float:
        if now is None:
            return module.controller.service_time(size_bytes)
        arrival = now + elapsed_s
        finish = module.controller.occupy(arrival, size_bytes)
        return finish - arrival
