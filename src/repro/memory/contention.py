"""Timed contention simulation of the remote-memory data path.

Section II: a dMEMBRICK "can support multiple links.  These links can be
used to provide more aggregate bandwidth, or can be partitioned by
orchestrator software and assigned to different dCOMPUBRICKs".  This
module quantifies that: several compute-brick clients issue transactions
against one memory brick over a configurable number of links, over the
DES kernel, with queueing at both the links and the memory controllers.

The simulation is closed-loop: each client keeps a fixed number of
transactions outstanding (its issue window), which is how a CPU's MSHRs
drive a memory system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fabric.interconnect import HopPath, Interconnect
from repro.hardware.bricks import MemoryBrick
from repro.memory.path import link_one_way_s
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.units import gbps, transfer_time

#: Request header bytes on the wire.
REQUEST_BYTES = 16

__all__ = ["ClientStats", "ContentionResult", "MemoryContentionSim",
           "link_one_way_s"]


@dataclass
class ClientStats:
    """Per-client results."""

    client_id: str
    completed: int = 0
    total_latency_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0


@dataclass
class ContentionResult:
    """Aggregate outcome of one contention run."""

    duration_s: float
    link_count: int
    client_count: int
    transaction_bytes: int
    clients: list[ClientStats] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(c.completed for c in self.clients)

    @property
    def throughput_bps(self) -> float:
        """Delivered data bandwidth, bits per second."""
        if self.duration_s == 0:
            return 0.0
        return self.completed * self.transaction_bytes * 8 / self.duration_s

    @property
    def mean_latency_s(self) -> float:
        total = sum(c.total_latency_s for c in self.clients)
        return total / self.completed if self.completed else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile across every completed transaction."""
        samples = [lat for c in self.clients for lat in c.latencies_s]
        if not samples:
            return 0.0
        return float(np.percentile(samples, percentile))


class MemoryContentionSim:
    """Closed-loop clients hammering one dMEMBRICK over shared links."""

    def __init__(self, memory_brick: Optional[MemoryBrick] = None,
                 link_count: int = 1,
                 link_rate_bps: float = gbps(10),
                 transaction_bytes: int = 64,
                 hop_path: Optional[HopPath] = None) -> None:
        """Create the simulation.

        Args:
            memory_brick: The target brick (a default 4-module DDR4 brick
                when omitted).  Its modules' technologies set the service
                times; requests stripe across modules.
            link_count: Optical links into the brick (its partitionable
                bandwidth).
            link_rate_bps: Line rate per link (capped by the hop path's
                bottleneck hop).
            transaction_bytes: Payload per transaction.
            hop_path: The interconnect path the links ride — sets the
                one-way flight time from the fabric hop table.  Defaults
                to a rack-local path (tray -> rack switch -> tray); pass
                :meth:`~repro.fabric.interconnect.Interconnect.inter_rack_path`
                to model contention across the pod switch tier.
        """
        if link_count < 1:
            raise ConfigurationError(f"need >= 1 link, got {link_count}")
        if transaction_bytes < 1:
            raise ConfigurationError("transactions need >= 1 byte")
        self.memory_brick = memory_brick or MemoryBrick("contention.mb")
        self.link_count = link_count
        self.hop_path = hop_path or Interconnect().intra_rack_path()
        self.link_rate_bps = min(link_rate_bps, self.hop_path.bottleneck_bps)
        self.link_one_way_s = link_one_way_s(self.hop_path)
        self.transaction_bytes = transaction_bytes

    def run(self, client_count: int, window: int = 4,
            duration_s: float = 100e-6) -> ContentionResult:
        """Run *client_count* clients for *duration_s* of simulated time.

        Each client keeps *window* transactions outstanding.  Returns
        aggregate throughput/latency statistics.
        """
        if client_count < 1:
            raise ConfigurationError("need >= 1 client")
        if window < 1:
            raise ConfigurationError("issue window must be >= 1")
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")

        sim = Simulator()
        # Each link serializes its frames; model as a unit resource held
        # for the serialization time.  Requests round-robin over links.
        links = [Resource(sim, capacity=1) for _ in range(self.link_count)]
        # One service slot per memory controller (module).
        controllers = [Resource(sim, capacity=1)
                       for _ in self.memory_brick.modules]
        service_times = [
            module.controller.service_time(self.transaction_bytes)
            for module in self.memory_brick.modules
        ]
        wire_time = transfer_time(
            self.transaction_bytes + REQUEST_BYTES, self.link_rate_bps)

        result = ContentionResult(
            duration_s=duration_s,
            link_count=self.link_count,
            client_count=client_count,
            transaction_bytes=self.transaction_bytes,
        )

        def transaction(client_index: int, sequence: int,
                        stats: ClientStats):
            start = sim.now
            link = links[(client_index + sequence) % len(links)]
            grant = link.request()
            yield grant
            yield sim.timeout(wire_time)
            link.release(grant)
            yield sim.timeout(self.link_one_way_s)

            controller_index = sequence % len(controllers)
            controller = controllers[controller_index]
            grant = controller.request()
            yield grant
            yield sim.timeout(service_times[controller_index])
            controller.release(grant)

            # Response: link back (data direction) + flight time.
            link = links[(client_index + sequence) % len(links)]
            grant = link.request()
            yield grant
            yield sim.timeout(wire_time)
            link.release(grant)
            yield sim.timeout(self.link_one_way_s)

            if sim.now <= duration_s:
                stats.completed += 1
                latency = sim.now - start
                stats.total_latency_s += latency
                stats.latencies_s.append(latency)

        def client(client_index: int, stats: ClientStats):
            sequence = 0
            while sim.now < duration_s:
                batch = [
                    sim.process(transaction(client_index, sequence + i, stats))
                    for i in range(window)
                ]
                sequence += window
                yield sim.all_of(batch)

        for index in range(client_count):
            stats = ClientStats(f"client-{index}")
            result.clients.append(stats)
            sim.process(client(index, stats))

        sim.run(until=duration_s * 1.5)  # drain in-flight transactions
        return result

    def link_saturation_bps(self) -> float:
        """Aggregate wire capacity of the configured links."""
        return self.link_count * self.link_rate_bps
