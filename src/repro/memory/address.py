"""Address ranges and per-brick physical address maps.

A dCOMPUBRICK's physical address space starts with its local off-chip DDR
window; every remote segment attached through the RMST appears as a
further window above it.  :class:`PhysicalAddressMap` maintains that
layout, keeping windows aligned (hotplug requires section alignment — see
:mod:`repro.software.hotplug`) and non-overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import AddressError


@dataclass(frozen=True, order=True)
class AddressRange:
    """A half-open ``[base, base + size)`` byte range."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise AddressError(f"base must be non-negative, got {self.base:#x}")
        if self.size <= 0:
            raise AddressError(f"size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """One past the last contained address."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        return self.base <= other.base and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def intersection(self, other: "AddressRange") -> Optional["AddressRange"]:
        """The overlapping sub-range, or ``None`` when disjoint."""
        base = max(self.base, other.base)
        end = min(self.end, other.end)
        if base >= end:
            return None
        return AddressRange(base, end - base)

    def offset_of(self, address: int) -> int:
        """Byte offset of *address* from the range base."""
        if not self.contains(address):
            raise AddressError(
                f"address {address:#x} outside [{self.base:#x}, {self.end:#x})")
        return address - self.base

    def aligned(self, alignment: int) -> bool:
        """True when base and size are multiples of *alignment*."""
        if alignment <= 0:
            raise AddressError(f"alignment must be positive, got {alignment}")
        return self.base % alignment == 0 and self.size % alignment == 0

    def __repr__(self) -> str:
        return f"AddressRange({self.base:#x}, {self.size:#x})"


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment*."""
    if alignment <= 0:
        raise AddressError(f"alignment must be positive, got {alignment}")
    return ((value + alignment - 1) // alignment) * alignment


class PhysicalAddressMap:
    """The physical address layout of one compute brick.

    Window 0 is the local DRAM; remote windows are appended with a given
    alignment (hotplug sections must be section-aligned).
    """

    def __init__(self, local_bytes: int, window_alignment: int = 1) -> None:
        if local_bytes <= 0:
            raise AddressError(f"local size must be positive, got {local_bytes}")
        if window_alignment <= 0:
            raise AddressError("window alignment must be positive")
        self.window_alignment = window_alignment
        self._local = AddressRange(0, local_bytes)
        self._windows: dict[str, AddressRange] = {}
        self._reserved: dict[str, AddressRange] = {}
        self._next_base = align_up(local_bytes, window_alignment)

    @property
    def local_window(self) -> AddressRange:
        """The local-DRAM window (always starts at address 0)."""
        return self._local

    @property
    def remote_windows(self) -> dict[str, AddressRange]:
        """Mapping of window name to its range (copy)."""
        return dict(self._windows)

    @property
    def highest_address(self) -> int:
        """One past the highest mapped address."""
        ends = [self._local.end] + [w.end for w in self._windows.values()]
        return max(ends)

    def peek_next_window_base(self) -> int:
        """Where the next :meth:`map_window` call will place its window.

        The SDM controller uses this to generate RMST entries *before*
        the kernel maps the window (configuration push precedes the
        baremetal attach in the §IV flow); the layout is deterministic,
        so the peeked address is exact.
        """
        return self._next_base

    def reserve_window(self, name: str, size: int) -> AddressRange:
        """Pre-claim the address range a future window will occupy.

        The SDM controller reserves window addresses at allocation time so
        it can generate RMST entries *before* the kernel maps the window
        (§IV pushes glue configuration ahead of the baremetal attach).
        Reserving also makes concurrent allocations for the same brick
        race-free: each gets a distinct range.
        """
        if name in self._windows or name in self._reserved:
            raise AddressError(f"window {name!r} is already mapped/reserved")
        if size <= 0:
            raise AddressError(f"window size must be positive, got {size}")
        padded = align_up(size, self.window_alignment)
        window = AddressRange(self._next_base, padded)
        self._reserved[name] = window
        self._next_base = window.end
        return window

    def map_window(self, name: str, size: int) -> AddressRange:
        """Map a remote window of *size* bytes; returns its range.

        A previously reserved window is honoured (and its size checked);
        otherwise the window lands at the next aligned address above
        everything already mapped, padded to the alignment.
        """
        if name in self._windows:
            raise AddressError(f"window {name!r} is already mapped")
        if size <= 0:
            raise AddressError(f"window size must be positive, got {size}")
        padded = align_up(size, self.window_alignment)
        if name in self._reserved:
            window = self._reserved.pop(name)
            if window.size != padded:
                raise AddressError(
                    f"window {name!r} was reserved with {window.size} bytes "
                    f"but mapped with {padded}")
        else:
            window = AddressRange(self._next_base, padded)
            self._next_base = window.end
        self._windows[name] = window
        return window

    def cancel_reservation(self, name: str) -> AddressRange:
        """Drop an unused window reservation (failed allocation path)."""
        try:
            return self._reserved.pop(name)
        except KeyError:
            raise AddressError(f"window {name!r} is not reserved") from None

    def unmap_window(self, name: str) -> AddressRange:
        """Remove a remote window (the hole is not reused — the kernel
        keeps offlined section numbers retired, which mirrors that)."""
        try:
            return self._windows.pop(name)
        except KeyError:
            raise AddressError(f"window {name!r} is not mapped") from None

    def window_of(self, address: int) -> tuple[Optional[str], AddressRange]:
        """Resolve *address* to ``(window name, range)``.

        The local window resolves to ``(None, local_range)``.
        """
        if self._local.contains(address):
            return None, self._local
        for name, window in self._windows.items():
            if window.contains(address):
                return name, window
        raise AddressError(f"address {address:#x} is unmapped")

    def is_remote(self, address: int) -> bool:
        """True when *address* lives in a remote window."""
        name, _window = self.window_of(address)
        return name is not None

    def total_mapped_bytes(self) -> int:
        """Local + remote bytes currently mapped."""
        return self._local.size + sum(w.size for w in self._windows.values())

    def iter_windows(self) -> Iterator[tuple[Optional[str], AddressRange]]:
        """Iterate ``(name, range)`` including the local window first."""
        yield None, self._local
        yield from self._windows.items()
