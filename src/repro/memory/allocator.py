"""First-fit segment allocation on a dMEMBRICK.

The dMEMBRICK provides "a large and flexible pool of memory resources that
can be partitioned and (re)distributed among all processing nodes" (§II).
The allocator is the partitioning mechanism: a classic first-fit free list
over the brick's byte range with immediate coalescing on free, plus the
occupancy/fragmentation statistics the orchestrator's placement policy
consumes.
"""

from __future__ import annotations

import bisect
import operator

from repro.errors import AllocationError
from repro.memory.address import AddressRange, align_up


class SegmentAllocator:
    """First-fit offset allocator with coalescing over ``[0, capacity)``."""

    def __init__(self, capacity_bytes: int, alignment: int = 1) -> None:
        if capacity_bytes <= 0:
            raise AllocationError(
                f"capacity must be positive, got {capacity_bytes}")
        if alignment <= 0:
            raise AllocationError(f"alignment must be positive, got {alignment}")
        self.capacity_bytes = capacity_bytes
        self.alignment = alignment
        #: Lifecycle gate: a brick in ``cleaning``/``maintenance`` sets
        #: this False and every grant raises, regardless of free space.
        #: Draining bricks stay accepting so rollbacks can restore
        #: evacuated segments to their original offsets.
        self.accepting = True
        #: Sorted, disjoint, coalesced free spans.
        self._free: list[AddressRange] = [AddressRange(0, capacity_bytes)]
        self._allocated: dict[int, AddressRange] = {}
        #: Running total of allocated span sizes, so the occupancy
        #: statistics the placement policies poll per decision are O(1)
        #: instead of rescanning every live allocation.
        self._allocated_bytes = 0
        #: Mutation counter, bumped by every allocate/free.  Consumers
        #: caching derived statistics (e.g. the control plane's
        #: incremental fragmentation gauge) key their cache on it.
        self.version = 0

    # -- allocation --------------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Claim *size* bytes (padded to alignment); returns the offset.

        Raises :class:`AllocationError` when no single free span fits —
        callers distinguishing exhaustion from fragmentation can compare
        :attr:`free_bytes` with the request.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        if not self.accepting:
            raise AllocationError(
                "allocator is not accepting grants (brick lifecycle is "
                "cleaning/maintenance)")
        padded = align_up(size, self.alignment)
        for index, span in enumerate(self._free):
            if span.size >= padded:
                offset = span.base
                remainder = span.size - padded
                if remainder:
                    self._free[index] = AddressRange(span.base + padded, remainder)
                else:
                    del self._free[index]
                self._allocated[offset] = AddressRange(offset, padded)
                self._allocated_bytes += padded
                self.version += 1
                return offset
        if self.free_bytes >= padded:
            raise AllocationError(
                f"{padded} bytes free in total but fragmented; largest span "
                f"is {self.largest_free_span} bytes")
        raise AllocationError(
            f"out of capacity: requested {padded}, free {self.free_bytes}")

    def free(self, offset: int) -> int:
        """Return the span at *offset* to the pool; returns its size."""
        if offset not in self._allocated:
            raise AllocationError(f"offset {offset:#x} is not allocated")
        span = self._allocated.pop(offset)
        self._insert_coalesced(span)
        self._allocated_bytes -= span.size
        self.version += 1
        return span.size

    def _insert_coalesced(self, span: AddressRange) -> None:
        """Insert *span* into the sorted free list, merging neighbours.

        The free list is sorted and coalesced, so only the spans
        immediately before and after the insertion point can touch the
        new one: an O(log n) bisect finds them, then a single slice
        assignment splices the (possibly merged) span in.
        """
        base, end = span.base, span.end
        index = bisect.bisect_right(self._free, base,
                                    key=operator.attrgetter("base"))
        prev_span = self._free[index - 1] if index > 0 else None
        next_span = self._free[index] if index < len(self._free) else None
        if ((prev_span is not None and prev_span.end > base)
                or (next_span is not None and next_span.base < end)):
            bad = prev_span if (prev_span is not None
                                and prev_span.end > base) else next_span
            raise AllocationError(
                f"double free: [{span.base:#x},{span.end:#x}) intersects "
                f"free span [{bad.base:#x},{bad.end:#x})")
        start, stop = index, index
        if prev_span is not None and prev_span.end == base:
            base = prev_span.base
            start -= 1
        if next_span is not None and next_span.base == end:
            end = next_span.end
            stop += 1
        self._free[start:stop] = [AddressRange(base, end - base)]

    # -- statistics -------------------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._allocated_bytes

    @property
    def allocation_count(self) -> int:
        return len(self._allocated)

    @property
    def largest_free_span(self) -> int:
        """Size of the biggest contiguous free span (0 when full)."""
        return max((span.size for span in self._free), default=0)

    @property
    def utilization(self) -> float:
        """Allocated fraction of capacity, in ``[0, 1]``."""
        return self.allocated_bytes / self.capacity_bytes

    @property
    def fragmentation(self) -> float:
        """``1 - largest_free/free`` — 0 when free space is contiguous."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - (self.largest_free_span / free)

    def free_spans(self) -> list[AddressRange]:
        """The free list (copy), sorted by base."""
        return list(self._free)

    def allocated_spans(self) -> list[AddressRange]:
        """All live allocations, sorted by base."""
        return sorted(self._allocated.values())

    def check_invariants(self) -> None:
        """Raise :class:`AllocationError` if internal state is corrupt.

        Verifies that free and allocated spans are disjoint, sorted and
        exactly tile the capacity.  Used by property-based tests.
        """
        spans = sorted(self._free + list(self._allocated.values()))
        cursor = 0
        for span in spans:
            if span.base < cursor:
                raise AllocationError(
                    f"overlapping spans at {span.base:#x} (cursor {cursor:#x})")
            cursor = span.end
        if cursor > self.capacity_bytes:
            raise AllocationError(
                f"spans exceed capacity: {cursor:#x} > {self.capacity_bytes:#x}")
        covered = sum(span.size for span in spans)
        if covered != self.capacity_bytes:
            raise AllocationError(
                f"spans cover {covered} of {self.capacity_bytes} bytes")
        # Free list must be coalesced: no two adjacent free spans.
        for left, right in zip(self._free, self._free[1:]):
            if left.end == right.base:
                raise AllocationError(
                    f"uncoalesced free spans at {left.end:#x}")
