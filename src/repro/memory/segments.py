"""Remote memory segments.

A *segment* is the orchestration-level unit of disaggregated memory: a
contiguous byte range carved out of one dMEMBRICK and assigned to one
dCOMPUBRICK (and transitively to a VM).  Segments move through a small
life cycle driven by the SDM controller:

    RESERVED -> ACTIVE -> RELEASED

``RESERVED`` exists so the controller can *safely reserve* resources
(§IV.C, role c) before any hardware is touched; ``ACTIVE`` means the RMST
entry and circuit exist; ``RELEASED`` segments are history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AllocationError


class SegmentState(enum.Enum):
    """Life-cycle state of a remote segment."""

    RESERVED = "reserved"
    ACTIVE = "active"
    RELEASED = "released"


_LEGAL = {
    SegmentState.RESERVED: {SegmentState.ACTIVE, SegmentState.RELEASED},
    SegmentState.ACTIVE: {SegmentState.RELEASED},
    SegmentState.RELEASED: set(),
}


@dataclass
class RemoteSegment:
    """One allocated span of disaggregated memory.

    Attributes:
        segment_id: Orchestrator-assigned identifier.
        memory_brick_id: The dMEMBRICK hosting the bytes.
        offset: Byte offset of the span on that brick.
        size: Span length in bytes.
        compute_brick_id: The dCOMPUBRICK the segment is assigned to.
        vm_id: The consuming VM, when the request came from one.
    """

    segment_id: str
    memory_brick_id: str
    offset: int
    size: int
    compute_brick_id: str
    vm_id: str = ""
    state: SegmentState = field(default=SegmentState.RESERVED)

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise AllocationError(f"offset must be non-negative: {self.offset}")
        if self.size <= 0:
            raise AllocationError(f"size must be positive: {self.size}")

    @property
    def end(self) -> int:
        return self.offset + self.size

    @property
    def is_active(self) -> bool:
        return self.state is SegmentState.ACTIVE

    def transition(self, new_state: SegmentState) -> None:
        """Move the segment along its life cycle; rejects illegal jumps."""
        if new_state not in _LEGAL[self.state]:
            raise AllocationError(
                f"segment {self.segment_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state

    def activate(self) -> None:
        self.transition(SegmentState.ACTIVE)

    def release(self) -> None:
        self.transition(SegmentState.RELEASED)

    def __repr__(self) -> str:
        return (f"RemoteSegment({self.segment_id!r}, {self.size >> 20} MiB on "
                f"{self.memory_brick_id} @ {self.offset:#x}, "
                f"{self.state.value})")
