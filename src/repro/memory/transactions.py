"""Memory transaction descriptors and results.

Remote accesses travel the data path as read/write transactions ("the
resulting read/write memory requests and data transactions are sent to a
dynamically controlled on-brick switch", §III).  A transaction couples an
operation, a local physical address and a size; the access-path models
return a :class:`TransactionResult` carrying the latency breakdown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AddressError
from repro.network.latency import LatencyBreakdown

#: The natural transaction unit: one CPU cache line.
CACHE_LINE_BYTES = 64


class MemoryOp(enum.Enum):
    """Transaction direction."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryTransaction:
    """One remote memory access request.

    Attributes:
        op: Read or write.
        address: Local physical address on the issuing compute brick.
        size_bytes: Access size (defaults to one cache line).
    """

    op: MemoryOp
    address: int
    size_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.address < 0:
            raise AddressError(
                f"address must be non-negative, got {self.address:#x}")
        if self.size_bytes <= 0:
            raise AddressError(
                f"transaction size must be positive, got {self.size_bytes}")

    @property
    def is_write(self) -> bool:
        return self.op is MemoryOp.WRITE

    @classmethod
    def read(cls, address: int,
             size_bytes: int = CACHE_LINE_BYTES) -> "MemoryTransaction":
        return cls(MemoryOp.READ, address, size_bytes)

    @classmethod
    def write(cls, address: int,
              size_bytes: int = CACHE_LINE_BYTES) -> "MemoryTransaction":
        return cls(MemoryOp.WRITE, address, size_bytes)


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of driving one transaction through an access path.

    Attributes:
        transaction: The request served.
        breakdown: Per-block latency contributions, in path order.
        remote_brick_id: The dMEMBRICK that served the access.
        remote_offset: The brick-level offset accessed.
    """

    transaction: MemoryTransaction
    breakdown: LatencyBreakdown
    remote_brick_id: str
    remote_offset: int

    @property
    def round_trip_s(self) -> float:
        """Total round-trip latency, seconds."""
        return self.breakdown.total_s

    @property
    def round_trip_ns(self) -> float:
        """Total round-trip latency, nanoseconds."""
        return self.breakdown.total_ns
