"""The event-driven cluster control plane.

The SDM controller is the serialization point of the whole rack
(§IV.C): every allocation passes through its inspect/reserve critical
section.  :class:`ControlPlane` puts that bottleneck on the DES kernel
and serves open-loop multi-tenant traffic through it:

* tenants arrive from a :class:`~repro.cluster.trace.TenantTrace` and
  drive full VM lifecycles — boot, runtime scale-up/down (explicitly or
  through a periodically rebalancing
  :class:`~repro.orchestration.elasticity.ElasticMemoryManager`),
  optional migration, departure;
* every operation enters a FIFO **admission queue** and is served by
  dispatcher workers that execute the system's ``*_process`` DES forms,
  so concurrent requests queue on the SDM-C reservation critical
  section with their waiting time accounted;
* dispatchers serve requests in **batches**: the batch holds placement
  work per request but pushes ONE amortized configuration generation
  (``SdmTimings.config_generation_s``) for the whole batch — the
  classic control-plane throughput lever (``max_batch=1`` is the
  per-request baseline);
* with **completion offload** (``offload=True``) a dispatcher worker
  frees its slot as soon as every batch member's SDM-side reservation
  has committed; the brick-side remainder (glue programming, kernel
  attach, hypervisor) runs as a detached DES process with the agent's
  acknowledgement firing ``request.done`` — so worker count stops
  bounding throughput and the controller critical section is the only
  serialization left;
* same-tenant requests are never reordered, even with several workers:
  each request gates on its tenant's previous request completing;
* an optional :class:`~repro.cluster.defrag.DefragmentationTask`
  consolidates the memory pool during idle windows.

Latency, queue depth, utilization and fragmentation are collected in
:class:`~repro.cluster.metrics.ControlPlaneStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.metrics import (
    ControlPlaneStats,
    RequestRecord,
    TimedSample,
)
from repro.cluster.trace import TenantSpec, TenantTrace
from repro.errors import OrchestrationError, ReproError
from repro.orchestration.elasticity import ElasticMemoryManager
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.control import ControlContext
from repro.sim.engine import Event, ProcessGenerator
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.cluster.defrag import DefragmentationTask
    from repro.core.system import DisaggregatedSystem

#: Request kinds whose configuration generation a batch amortizes.
AMORTIZABLE_KINDS = frozenset({"boot", "scale_up"})

#: All request kinds the control plane understands.
REQUEST_KINDS = frozenset(
    {"boot", "scale_up", "scale_down", "migrate", "depart"})


@dataclass
class ClusterRequest:
    """One admitted control-plane request."""

    kind: str
    tenant_id: str
    payload: dict[str, Any] = field(default_factory=dict)
    record: RequestRecord = field(init=False)
    #: Fires (with this request) when the request finishes, served or
    #: rejected; inspect ``record.ok`` to tell which.  In batched mode
    #: this is the *batch* completion (after the shared config push).
    done: Event = field(init=False, repr=False)
    #: Fires as soon as this request's system mutation has executed —
    #: the same-tenant ordering gate.  Unlike ``done`` it never waits
    #: for batch-mates, so two same-tenant requests sharing a batch
    #: cannot deadlock on each other.
    executed: Event = field(init=False, repr=False)
    #: Fires as soon as the request's SDM-side reservation work has
    #: committed (everything after is brick-side).  Pipelines that
    #: cannot commit early (their release comes last) fire it together
    #: with ``executed``.  This is what a completion-offloading worker
    #: waits for before freeing its slot.
    committed: Event = field(init=False, repr=False)
    #: The predecessor request of the same tenant, if still in flight.
    _after: Optional[Event] = field(default=None, repr=False)
    result: Any = None


class ControlPlane:
    """Admission queue + batched dispatch over one
    :class:`~repro.core.system.DisaggregatedSystem`."""

    def __init__(self, system: "DisaggregatedSystem", *,
                 max_batch: int = 1,
                 batch_window_s: float = 0.0,
                 workers: int = 1,
                 offload: bool = False,
                 rebalance_interval_s: Optional[float] = None,
                 defrag: Optional["DefragmentationTask"] = None,
                 ctx: Optional[ControlContext] = None) -> None:
        if max_batch < 1:
            raise OrchestrationError("max_batch must be >= 1")
        if batch_window_s < 0:
            raise OrchestrationError("batch window must be >= 0")
        if workers < 1:
            raise OrchestrationError("need >= 1 dispatcher worker")
        self.system = system
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.workers = workers
        #: Brick-side completion offload: a worker frees its slot once
        #: the batch's reservations committed; the brick-side tail runs
        #: detached (see the module docstring).
        self.offload = offload
        #: Per-request mode keeps the single-threaded SDM-C semantics
        #: (config generated under the critical section, per request);
        #: only a real batch amortizes one push over its members.
        self._amortize = max_batch > 1
        # An external context puts this plane on a shared simulator (a
        # federation runs one clock across every pod's plane); each
        # plane still needs its own context so two pods' SDM-C shard
        # domains never alias onto one critical section.
        self.ctx = ctx if ctx is not None else ControlContext()
        self.sim = self.ctx.sim
        self.admission: Store = Store(self.sim)
        self.stats = ControlPlaneStats(worker_count=workers)
        self._tenant_tail: dict[str, Event] = {}
        self._in_service = 0
        #: Tenants whose backing resources are impacted by an active
        #: fault (memory brick death, pod outage) — populated by the
        #: fault-reaction paths, cleared on re-placement or repair.
        self.degraded: set[str] = set()
        #: Pause gate: ``None`` while the plane serves; an untriggered
        #: event while the plane (its pod) is down.  Workers that have
        #: already claimed work park on it, so a dead pod never reads
        #: as idle to the rebalancer/defragmenter.
        self._gate: Optional[Event] = None
        #: Offloaded batches whose brick-side tail is still in flight.
        self._detached = 0
        #: brick_id -> (allocator version, fragmentation) — the
        #: incremental fragmentation cache (see :meth:`_fragmentation`).
        self._frag_cache: dict[str, tuple[int, float]] = {}

        self.manager: Optional[ElasticMemoryManager] = None
        self._rebalance_interval_s = rebalance_interval_s
        if rebalance_interval_s is not None:
            if rebalance_interval_s <= 0:
                raise OrchestrationError(
                    "rebalance interval must be positive")
            self.manager = ElasticMemoryManager(system)
            self.sim.process(self._rebalancer())

        self.defrag = defrag
        if defrag is not None:
            defrag.install(self.ctx, idle_probe=self.is_idle)

        for index in range(workers):
            self.sim.process(self._worker(index))

    # -- admission ----------------------------------------------------------

    def is_idle(self) -> bool:
        """True when no request is queued, being served, or detached."""
        return (self.admission.size == 0 and self._in_service == 0
                and self._detached == 0)

    @property
    def paused(self) -> bool:
        """True while the plane is down (see :meth:`pause`)."""
        return self._gate is not None

    def pause(self) -> None:
        """Stop dispatching: the pod (or its controller) is down.

        Requests keep queueing in admission; workers park before
        serving until :meth:`resume`.  In-flight batches complete —
        failures here are non-preemptive, like the link scheduler's.
        """
        if self._gate is None:
            self._gate = self.sim.event()

    def resume(self) -> None:
        """Resume dispatching after :meth:`pause` (repair)."""
        if self._gate is not None:
            gate, self._gate = self._gate, None
            gate.succeed()

    def tenant_tail(self, tenant_id: str) -> Optional[Event]:
        """The ``executed`` event of *tenant_id*'s most recently
        submitted request, or ``None`` when the tenant never submitted.

        Inter-pod migration waits on this before copying a tenant out,
        so in-flight same-tenant work always lands before the move.
        """
        return self._tenant_tail.get(tenant_id)

    def submit(self, kind: str, tenant_id: str,
               **payload: Any) -> ClusterRequest:
        """Enqueue a request at the current simulated time.

        Must be called at simulation time (from a process or before the
        run starts).  Returns the request; wait on ``request.done`` for
        completion and check ``request.record.ok`` for the outcome.
        """
        if kind not in REQUEST_KINDS:
            raise OrchestrationError(
                f"unknown request kind {kind!r}; known: "
                f"{', '.join(sorted(REQUEST_KINDS))}")
        request = ClusterRequest(kind=kind, tenant_id=tenant_id,
                                 payload=payload)
        # Control-plane backlog = requests still in the admission store
        # plus requests already claimed by a worker but queued on a
        # SDM-C reservation critical section (the default domain and,
        # with a sharded controller, every shard domain).
        depth = (self.admission.size
                 + self.ctx.total_reservation_queue_depth)
        request.record = RequestRecord(
            tenant_id=tenant_id, kind=kind, submitted_s=self.sim.now,
            queue_depth_at_submit=depth)
        request.done = self.sim.event()
        request.executed = self.sim.event()
        request.committed = self.sim.event()
        # Same-tenant FIFO: gate on the tenant's previous request having
        # *executed*, so a second worker (or a later slot of the same
        # batch) can never apply same-tenant operations out of order.
        request._after = self._tenant_tail.get(tenant_id)
        self._tenant_tail[tenant_id] = request.executed
        self.stats.records.append(request.record)
        self.stats.queue_depth_samples.append(
            TimedSample(self.sim.now, depth))
        self.admission.put(request)
        return request

    # -- dispatch -----------------------------------------------------------

    def _worker(self, index: int) -> ProcessGenerator:
        while True:
            first = yield self.admission.get()
            # Claimed work makes the plane non-idle immediately — the
            # batch window must not read as an idle window (background
            # defragmentation would start ahead of a pending batch).
            self._in_service += 1
            while self._gate is not None:  # pod down: park, stay busy
                yield self._gate
            batch = [first]
            if (self.batch_window_s > 0
                    and 1 + self.admission.size < self.max_batch):
                # Hold the door briefly so a burst can share one
                # configuration push — but only when the queue cannot
                # already fill the batch.
                yield self.sim.timeout(self.batch_window_s)
            while len(batch) < self.max_batch and self.admission.size:
                batch.append(self.admission.get().value)
            serve_start = self.sim.now
            self._in_service += len(batch) - 1
            try:
                yield from self._serve_batch(batch)
            finally:
                self._in_service -= len(batch)
                self.stats.busy_s += self.sim.now - serve_start

    def _serve_batch(self, batch: list[ClusterRequest]) -> ProcessGenerator:
        # Batch members run concurrently: their reservations still
        # serialize one by one on the SDM-C critical section(s), but
        # the brick-side phases (agent/kernel/hypervisor) overlap,
        # since each executes on its own brick.
        members = [self.sim.process(self._serve_one(request))
                   for request in batch]
        if self.offload:
            # Brick-side completion offload: hold the slot only until
            # every member's reservation committed (plus the batch's
            # amortized config push — that is controller work); the
            # brick-side tail, ending in the agents' acknowledgement,
            # runs detached.
            yield self.sim.all_of([r.committed for r in batch])
            # Push only when an amortizable member actually got past
            # its reservation: a member still mid-pipeline committed
            # via on_commit (reservation granted); one already executed
            # must have succeeded.  All-rejected batches push nothing,
            # matching the serial path's `record.ok` guard.
            if self._amortize and any(
                    r.kind in AMORTIZABLE_KINDS
                    and (r.record.ok or not r.executed.triggered)
                    for r in batch):
                yield self.sim.timeout(
                    self.system.sdm.timings.config_generation_s)
            self._detached += 1
            self.sim.process(self._finish_batch(batch, members))
            return
        yield self.sim.all_of(members)
        if self._amortize and any(r.record.ok and r.kind in AMORTIZABLE_KINDS
                                  for r in batch):
            # One configuration push covers every placement in the
            # batch (role d is a template instantiation; its cost does
            # not scale with the number of segments in the push).
            yield self.sim.timeout(
                self.system.sdm.timings.config_generation_s)
        self._complete_batch(batch)

    def _finish_batch(self, batch: list[ClusterRequest],
                      members: list[Event]) -> ProcessGenerator:
        """Detached tail of an offloaded batch: wait for the brick-side
        work (the modeled agent acknowledgement), then complete."""
        try:
            yield self.sim.all_of(members)
            self._complete_batch(batch)
        finally:
            self._detached -= 1

    def _complete_batch(self, batch: list[ClusterRequest]) -> None:
        for request in batch:
            request.record.completed_s = self.sim.now
            request.done.succeed(request)
        self.stats.fragmentation_samples.append(
            TimedSample(self.sim.now, self._fragmentation()))

    def _serve_one(self, request: ClusterRequest) -> ProcessGenerator:
        if request._after is not None:
            yield request._after
        request.record.started_s = self.sim.now
        try:
            request.result = yield from self._execute(request)
            request.record.ok = True
        except ReproError as exc:
            request.record.ok = False
            request.record.note = f"{type(exc).__name__}: {exc}"
        request.executed.succeed(request)
        # Pipelines whose controller work ends the pipeline (release-
        # last kinds) — and any rejected request — commit here at the
        # latest, so an offloading worker never waits forever.
        if not request.committed.triggered:
            request.committed.succeed(request)

    def _commit_hook(self, request: ClusterRequest):
        """The ``on_commit`` callback handed to the system pipelines."""
        def fire() -> None:
            if not request.committed.triggered:
                request.committed.succeed(request)
        return fire

    def _execute(self, request: ClusterRequest) -> ProcessGenerator:
        """Run one request through the system's DES pipelines."""
        charge_config = not (self._amortize
                             and request.kind in AMORTIZABLE_KINDS)
        on_commit = self._commit_hook(request)
        if request.kind == "boot":
            info = yield from self.system.boot_vm_process(
                self.ctx, request.payload["request"],
                charge_config=charge_config, on_commit=on_commit)
            return info
        if request.kind == "scale_up":
            result = yield from self.system.scale_up_process(
                self.ctx, request.tenant_id,
                request.payload["size_bytes"],
                charge_config=charge_config, on_commit=on_commit)
            return result
        if request.kind == "scale_down":
            segment_id = request.payload.get("segment_id")
            if segment_id is None:
                segment_id = self._resolve_scale_down_segment(request)
            steps = yield from self.system.scale_down_process(
                self.ctx, request.tenant_id, segment_id)
            return steps
        if request.kind == "migrate":
            target = self._resolve_migration_target(request)
            if target is None:
                raise OrchestrationError(
                    f"no migration target for {request.tenant_id}")
            report = yield from self.system.migrate_vm_process(
                self.ctx, request.tenant_id, target,
                on_commit=on_commit)
            return report
        # depart
        latency = yield from self.system.terminate_vm_process(
            self.ctx, request.tenant_id)
        return latency

    def _resolve_scale_down_segment(self, request: ClusterRequest) -> str:
        """Pick the segment to return at serve time (LIFO).

        A ``scale_down`` submitted without ``segment_id`` returns the
        tenant's most recently attached runtime segment *as of
        execution*.  Submit-time ids go stale when a federation moves
        the tenant to another pod between submission and service (the
        move folds runtime growth into the re-homed boot footprint and
        later scale-ups mint fresh ids), so callers that may be
        re-homed resolve late instead — and a tenant with no runtime
        segment left gets a clean rejection rather than a stale-id
        error against the wrong pod.
        """
        hosted = self.system.hosting(request.tenant_id)
        stack = self.system.stack(hosted.brick_id)
        attached = [s for s in stack.scaleup.attached_segments()
                    if s.vm_id == request.tenant_id]
        if not attached:
            raise OrchestrationError(
                f"{request.tenant_id} has no runtime segment to return")
        return attached[-1].segment_id

    def _resolve_migration_target(self,
                                  request: ClusterRequest) -> Optional[str]:
        """Pick a destination brick at serve time (load has moved since
        submission); an explicit ``target_brick_id`` payload wins."""
        explicit = request.payload.get("target_brick_id")
        if explicit:
            return explicit
        hosted = self.system.hosting(request.tenant_id)
        vm = hosted.vm
        candidates = [
            c for c in self.system.sdm.registry.compute_availability()
            if c.brick_id != hosted.brick_id and c.free_cores >= vm.vcpus]
        if not candidates:
            return None
        candidates.sort(key=lambda c: (not c.powered, -c.free_cores,
                                       c.brick_id))
        return candidates[0].brick_id

    def _fragmentation(self) -> float:
        """Mean free-space fragmentation across healthy memory bricks.

        Computed **incrementally**: each brick's fragmentation is
        cached keyed on its allocator's mutation ``version``, so a
        completion sample only recomputes the free-list statistics of
        bricks that actually changed since the previous sample —
        O(changed bricks) span walks instead of O(all bricks) on every
        request completion.
        """
        entries = [e for e in self.system.sdm.registry.memory_entries
                   if not e.failed]
        if not entries:
            return 0.0
        total = 0.0
        for entry in entries:
            allocator = entry.allocator
            brick_id = entry.brick.brick_id
            cached = self._frag_cache.get(brick_id)
            if cached is None or cached[0] != allocator.version:
                cached = (allocator.version, allocator.fragmentation)
                self._frag_cache[brick_id] = cached
            total += cached[1]
        return total / len(entries)

    # -- failure reactions --------------------------------------------------

    def impacted_by_memory_brick(self, brick_id: str) -> list[str]:
        """Tenants holding at least one segment on *brick_id*, sorted."""
        return sorted({s.vm_id
                       for s in self.system.sdm.impacted_by_memory_brick(
                           brick_id)
                       if s.vm_id})

    def handle_memory_brick_failure(self, brick_id: str) -> list[str]:
        """Synchronous part of a memory-brick death.

        The brick leaves the placement pool and every tenant backed by
        it is marked degraded; returns those tenants.  The self-healing
        tail — re-placing the stranded segments — is
        :meth:`evacuate_memory_brick_process`; without it the tenants
        stay degraded until the brick repairs
        (:meth:`handle_memory_brick_repair`).
        """
        impacted = self.impacted_by_memory_brick(brick_id)
        self.system.sdm.registry.mark_memory_failed(brick_id)
        self.degraded.update(impacted)
        return impacted

    def handle_memory_brick_repair(self, brick_id: str) -> list[str]:
        """Return a repaired brick to service; un-degrades its tenants
        (those not already re-placed elsewhere).  Returns the tenants
        cleared."""
        self.system.sdm.registry.restore_memory(brick_id)
        cleared = [t for t in self.impacted_by_memory_brick(brick_id)
                   if t in self.degraded]
        self.degraded.difference_update(cleared)
        return cleared

    def evacuate_memory_brick_process(self, brick_id: str
                                      ) -> ProcessGenerator:
        """DES process: re-place every segment off a failed brick.

        The self-healing reaction to :meth:`handle_memory_brick_failure`
        — each stranded segment is relocated onto a healthy brick the
        placement policy picks (two-phase across shards on a sharded
        controller), and a tenant leaves ``degraded`` the moment its
        last stranded segment lands.  Returns ``(moved, stranded)``
        segment-id lists; stranded segments (no healthy brick fits)
        leave their tenants degraded.
        """
        sdm = self.system.sdm
        impacted_before = self.impacted_by_memory_brick(brick_id)
        moved: list[str] = []
        stranded: list[str] = []
        for segment in list(sdm.impacted_by_memory_brick(brick_id)):
            size = segment.size
            candidates = [c for c in sdm.registry.memory_availability()
                          if c.brick_id != brick_id]
            target = sdm.policy.select_memory_brick(
                candidates, size,
                origin_rack_id=sdm.registry.rack_of(
                    segment.compute_brick_id) or None)
            if target is None:
                stranded.append(segment.segment_id)
                continue
            try:
                yield from sdm.relocate_segment_process(
                    self.ctx, segment.segment_id, target)
            except ReproError:
                stranded.append(segment.segment_id)
                continue
            moved.append(segment.segment_id)
        # A tenant this brick degraded recovers once none of its
        # segments remain stranded on it; tenants degraded by other
        # active faults are left alone.
        still_impacted = set(self.impacted_by_memory_brick(brick_id))
        self.degraded.difference_update(
            t for t in impacted_before if t not in still_impacted)
        return moved, stranded

    # -- tenant lifecycles --------------------------------------------------

    def serve_trace(self, trace: TenantTrace) -> ControlPlaneStats:
        """Drive every tenant lifecycle in *trace* to completion.

        Runs the simulation until the last tenant departs (background
        tasks keep their future events; the clock simply stops there)
        and returns the collected statistics.
        """
        lifecycles = [self.sim.process(self._tenant(spec))
                      for spec in trace.tenants]
        self.sim.run(until=self.sim.all_of(lifecycles))
        self.stats.duration_s = self.sim.now
        return self.stats

    def drain(self) -> ControlPlaneStats:
        """Run until all submitted work is served (unit-test helper).

        Only valid without periodic background tasks (rebalancer /
        defragmentation), whose timers would keep the heap non-empty
        forever.
        """
        if self.manager is not None or self.defrag is not None:
            raise OrchestrationError(
                "drain() cannot terminate with periodic background "
                "tasks installed; use serve_trace()")
        self.sim.run()
        self.stats.duration_s = self.sim.now
        return self.stats

    def _tenant(self, spec: TenantSpec) -> ProcessGenerator:
        yield self.sim.timeout(spec.arrival_s)
        boot = self.submit("boot", spec.tenant_id,
                           request=VmAllocationRequest(
                               vm_id=spec.tenant_id, vcpus=spec.vcpus,
                               ram_bytes=spec.ram_bytes))
        yield boot.done
        if not boot.record.ok:
            return
        booted_at = self.sim.now
        if self.manager is not None:
            self.manager.manage(spec.tenant_id)
            yield from self._demand_lifecycle(spec, booted_at)
        else:
            yield from self._explicit_lifecycle(spec, booted_at)
        if spec.migrate_at_s is not None:
            yield self.sim.timeout(max(
                0.0, booted_at + spec.migrate_at_s - self.sim.now))
            migrate = self.submit("migrate", spec.tenant_id)
            yield migrate.done  # a rejected migration is not fatal
        yield self.sim.timeout(max(
            0.0, booted_at + spec.lifetime_s - self.sim.now))
        if self.manager is not None:
            self.manager.release(spec.tenant_id)
        depart = self.submit("depart", spec.tenant_id)
        yield depart.done

    def _explicit_lifecycle(self, spec: TenantSpec,
                            booted_at: float) -> ProcessGenerator:
        """Scale events as explicit admission-queue requests."""
        attached: list[str] = []
        for event in spec.scale_events:
            yield self.sim.timeout(max(
                0.0, booted_at + event.at_s - self.sim.now))
            if event.kind == "up":
                request = self.submit("scale_up", spec.tenant_id,
                                      size_bytes=event.size_bytes)
                yield request.done
                if request.record.ok:
                    attached.append(request.result.segment.segment_id)
            elif attached:
                request = self.submit("scale_down", spec.tenant_id,
                                      segment_id=attached.pop())
                yield request.done

    def _demand_lifecycle(self, spec: TenantSpec,
                          booted_at: float) -> ProcessGenerator:
        """Scale events as demand reports; the rebalancer does the work."""
        demand = spec.ram_bytes
        for event in spec.scale_events:
            yield self.sim.timeout(max(
                0.0, booted_at + event.at_s - self.sim.now))
            if event.kind == "up":
                demand += event.size_bytes
            else:
                demand = max(spec.ram_bytes, demand - event.size_bytes)
            if spec.tenant_id in (self.manager.managed_vms
                                  if self.manager else ()):
                self.manager.set_demand(spec.tenant_id, demand)

    def _rebalancer(self) -> ProcessGenerator:
        """Periodic :meth:`ElasticMemoryManager.rebalance` pass, holding
        the SDM-C reservation scope (every shard, on a sharded
        controller — the pass may touch the whole pool) for its
        reservation work."""
        while True:
            yield self.sim.timeout(self._rebalance_interval_s)
            if self.manager is None or not self.manager.managed_vms:
                continue
            token = yield from self.system.sdm.reserve_scope(
                self.ctx, "rebalance")
            try:
                report = self.manager.rebalance()
                yield self.sim.timeout(report.total_latency_s)
            finally:
                self.system.sdm.release_scope(token)
            self.stats.rebalance_passes += 1
