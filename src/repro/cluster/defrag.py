"""Background defragmentation / consolidation of the memory pool.

Long-running multi-tenant traffic leaves the dMEMBRICK pool fragmented:
many bricks half-occupied, each pinning its standby power and spreading
circuits thin.  :class:`DefragmentationTask` is the control plane's
housekeeping process: during idle windows it relocates segments off the
*emptiest* occupied brick onto fuller ones
(:meth:`~repro.orchestration.sdm_controller.SdmController.relocate_segment`),
so free space coalesces, emptied bricks power off (the Fig. 12 TCO
lever), and the placement policy's packing keeps working at
steady state instead of only at first placement.

Consolidation feeds forward into placement: bricks that received
relocated segments are marked hot for
:class:`~repro.orchestration.placement.PowerAwarePackingPolicy`
co-location, and the data-mover heat statistics are refreshed through
:meth:`~repro.core.system.DisaggregatedSystem.note_hot_placement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ReproError
from repro.orchestration.sdm_controller import SEGMENT_COPY_RATE_BPS
from repro.sim.control import ControlContext, run_sync
from repro.sim.engine import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.system import DisaggregatedSystem

#: Consolidation planners (the ``planner`` constructor argument):
#: ``greedy`` relocates the source's smallest segments onto the fullest
#: brick that fits them; ``best-fit-decreasing`` is classic BFD bin
#: packing — largest segment first, into the *tightest* sufficient free
#: span — which avoids burning the one span a big segment needs on a
#: small one, so it empties (and powers off) more bricks on fragmented
#: pools.
PLANNERS = ("greedy", "best-fit-decreasing")


@dataclass
class DefragReport:
    """Running totals of the background task."""

    passes: int = 0
    relocations: int = 0
    bytes_moved: int = 0
    latency_s: float = 0.0
    bricks_emptied: int = 0


class DefragmentationTask:
    """Idle-window consolidation of remote segments onto fewer bricks."""

    def __init__(self, system: "DisaggregatedSystem", *,
                 interval_s: float = 0.25,
                 max_relocations_per_pass: int = 4,
                 copy_rate_bps: float = SEGMENT_COPY_RATE_BPS,
                 power_off_emptied: bool = True,
                 planner: str = "greedy") -> None:
        if interval_s <= 0:
            raise ReproError("defrag interval must be positive")
        if max_relocations_per_pass < 1:
            raise ReproError("need >= 1 relocation per pass")
        if planner not in PLANNERS:
            raise ReproError(
                f"unknown defrag planner {planner!r}; known: "
                f"{', '.join(PLANNERS)}")
        self.system = system
        self.interval_s = interval_s
        self.max_relocations_per_pass = max_relocations_per_pass
        self.copy_rate_bps = copy_rate_bps
        self.power_off_emptied = power_off_emptied
        self.planner = planner
        self.report = DefragReport()

    # -- scheduling ---------------------------------------------------------

    def install(self, ctx: ControlContext,
                idle_probe: Optional[Callable[[], bool]] = None) -> None:
        """Start the periodic background process on *ctx*.

        *idle_probe* gates each pass: when it returns ``False`` (the
        control plane has queued or in-flight work), the pass is skipped
        — defragmentation only spends link time in idle windows.
        """
        ctx.sim.process(self._loop(ctx, idle_probe))

    def _loop(self, ctx: ControlContext,
              idle_probe: Optional[Callable[[], bool]]) -> ProcessGenerator:
        while True:
            yield ctx.sim.timeout(self.interval_s)
            if idle_probe is not None and not idle_probe():
                continue
            yield from self.pass_process(ctx)

    # -- one consolidation pass ---------------------------------------------

    def run_pass(self) -> DefragReport:
        """Zero-contention synchronous wrapper: run one pass now."""
        return run_sync(lambda ctx: self.pass_process(ctx))

    def pass_process(self, ctx: ControlContext) -> ProcessGenerator:
        """One pass: relocate up to the per-pass budget of segments.

        Each move holds only the reservation scope its bricks need
        (:meth:`~repro.orchestration.sdm_controller.SdmController.\
relocate_segment_process`): the single critical section on a plain
        controller, the involved shards on a sharded one — so
        consolidation in one shard no longer stalls foreground
        allocations in every other shard.  A move whose plan went stale
        while queueing (the segment moved or the target filled up) is
        skipped.  Returns the cumulative report.
        """
        sources_touched: set[str] = set()
        targets_touched: set[str] = set()
        for _ in range(self.max_relocations_per_pass):
            move = self._next_move()
            if move is None:
                break
            segment_id, size, source_id, target_id = move
            try:
                _entry, latency = (
                    yield from self.system.sdm.relocate_segment_process(
                        ctx, segment_id, target_id,
                        copy_rate_bps=self.copy_rate_bps))
            except ReproError:
                continue  # plan went stale while queueing; re-plan
            self.report.relocations += 1
            self.report.bytes_moved += size
            self.report.latency_s += latency
            sources_touched.add(source_id)
            targets_touched.add(target_id)
        self.report.passes += 1
        if targets_touched:
            self._feed_placement(targets_touched)
        if self.power_off_emptied:
            self._power_off_emptied(sources_touched)
        return self.report

    def _next_move(self) -> Optional[tuple[str, int, str, str]]:
        """Plan one relocation: ``(segment_id, size, source, target)``.

        Source is always the least-utilized occupied brick (the one
        cheapest to empty); targets are never less utilized than the
        source, so planning cannot ping-pong segments between passes.
        The ``planner`` argument picks the packing discipline:

        * ``greedy`` — smallest segment first, onto the *fullest* brick
          whose largest free span fits it;
        * ``best-fit-decreasing`` — largest segment first, onto the
          brick with the *tightest* sufficient span, so large free
          spans are preserved for the segments that need them.
        """
        registry = self.system.sdm.registry
        occupied = [a for a in registry.memory_availability()
                    if a.powered and a.utilization > 0]
        if len(occupied) < 2:
            return None
        occupied.sort(key=lambda a: (a.utilization, a.brick_id))
        source = occupied[0]
        best_fit = self.planner == "best-fit-decreasing"
        segments = sorted(
            (s for s in self.system.sdm.segments_on(source.brick_id)
             if s.is_active),
            key=lambda s: -s.size if best_fit else s.size)
        for segment in segments:
            targets = [a for a in occupied[1:]
                       if a.largest_span_bytes >= segment.size
                       and a.utilization >= source.utilization]
            if best_fit:
                targets.sort(key=lambda a: (a.largest_span_bytes,
                                            a.brick_id))
            else:
                targets.sort(key=lambda a: (-a.utilization, a.brick_id))
            for target in targets:
                if self.system.sdm.can_reach(segment.compute_brick_id,
                                             target.brick_id):
                    return (segment.segment_id, segment.size,
                            source.brick_id, target.brick_id)
        return None

    # -- feedback into placement and power ----------------------------------

    def _feed_placement(self, target_brick_ids: set[str]) -> None:
        """Teach the policy to keep packing onto consolidation targets."""
        note = getattr(self.system.sdm.policy, "note_hot_brick", None)
        if note is not None:
            for brick_id in sorted(target_brick_ids):
                note(brick_id)
        self.system.note_hot_placement()

    def _power_off_emptied(self, source_brick_ids: set[str]) -> None:
        """Power down source bricks the pass fully drained."""
        registry = self.system.sdm.registry
        for brick_id in sorted(source_brick_ids):
            entry = registry.memory(brick_id)
            if (entry.allocator.allocation_count == 0
                    and entry.brick.is_powered):
                entry.brick.power_off()
                self.report.bricks_emptied += 1
