"""Cluster-scale control plane on the DES kernel.

The layer above orchestration: where :mod:`repro.orchestration` answers
one request at a time, this package serves *traffic* — open-loop
multi-tenant arrival traces driven through an admission queue, a
batched dispatcher, the SDM-C reservation critical section modeled as a
real DES resource, and background pool housekeeping.

* :mod:`repro.cluster.trace` — tenant arrival traces (Poisson, diurnal,
  bursty).
* :mod:`repro.cluster.control_plane` — admission queue, batched
  dispatch, full VM lifecycles.
* :mod:`repro.cluster.defrag` — idle-window memory-pool consolidation.
* :mod:`repro.cluster.metrics` — request records and latency/queue
  statistics.
"""

from repro.cluster.control_plane import (
    AMORTIZABLE_KINDS,
    ClusterRequest,
    ControlPlane,
    REQUEST_KINDS,
)
from repro.cluster.defrag import PLANNERS, DefragmentationTask, DefragReport
from repro.cluster.metrics import (
    ControlPlaneStats,
    RequestRecord,
    TimedSample,
)
from repro.cluster.trace import (
    ReplayTrace,
    ScaleEvent,
    TenantSpec,
    TenantTrace,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
)

__all__ = [
    "AMORTIZABLE_KINDS",
    "ClusterRequest",
    "ControlPlane",
    "ControlPlaneStats",
    "DefragReport",
    "DefragmentationTask",
    "PLANNERS",
    "REQUEST_KINDS",
    "ReplayTrace",
    "RequestRecord",
    "ScaleEvent",
    "TenantSpec",
    "TenantTrace",
    "TimedSample",
    "bursty_trace",
    "diurnal_trace",
    "poisson_trace",
]
