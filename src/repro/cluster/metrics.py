"""Request-level metrics of the event-driven control plane.

DRackSim-style studies judge a disaggregation control plane by its
latency distribution under load, not by a single per-request number:
the interesting quantities are tail (p99) allocation latency, admission
queue depth, dispatcher utilization and pool fragmentation *over time*.
This module holds the records and aggregation the
:class:`~repro.cluster.control_plane.ControlPlane` collects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class RequestRecord:
    """Life of one control-plane request, stamped in simulated time."""

    tenant_id: str
    kind: str
    submitted_s: float
    queue_depth_at_submit: int
    started_s: float = math.nan
    completed_s: float = math.nan
    ok: bool = False
    note: str = ""

    @property
    def wait_s(self) -> float:
        """Admission-queue wait: submission to service start."""
        return self.started_s - self.submitted_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: submission to completion."""
        return self.completed_s - self.submitted_s

    @property
    def done(self) -> bool:
        return not math.isnan(self.completed_s)


@dataclass(frozen=True)
class TimedSample:
    """One ``(time, value)`` observation of a control-plane gauge."""

    time_s: float
    value: float


@dataclass
class ControlPlaneStats:
    """Everything the control plane measured during one run.

    Sampling notes:

    * ``queue_depth_samples`` — one sample per submission (admission
      backlog plus waiters on every SDM-C reservation domain).
    * ``fragmentation_samples`` — one sample per batch completion,
      computed **incrementally**: the control plane caches each
      brick's fragmentation keyed on its allocator's mutation
      ``version`` and only recomputes bricks that changed since the
      previous sample (see ``ControlPlane._fragmentation``), so the
      gauge no longer walks every free list on every completion.
    """

    records: list[RequestRecord] = field(default_factory=list)
    queue_depth_samples: list[TimedSample] = field(default_factory=list)
    fragmentation_samples: list[TimedSample] = field(default_factory=list)
    rebalance_passes: int = 0
    busy_s: float = 0.0
    duration_s: float = 0.0
    worker_count: int = 1

    # -- selections ---------------------------------------------------------

    def completed(self, kind: Optional[str] = None) -> list[RequestRecord]:
        """Successfully served requests, optionally of one kind."""
        return [r for r in self.records
                if r.done and r.ok and (kind is None or r.kind == kind)]

    def rejected(self, kind: Optional[str] = None) -> list[RequestRecord]:
        """Requests the control plane could not satisfy."""
        return [r for r in self.records
                if r.done and not r.ok
                and (kind is None or r.kind == kind)]

    # -- latency ------------------------------------------------------------

    def latency_percentile(self, percentile: float,
                           kind: Optional[str] = None) -> float:
        """Percentile of end-to-end request latency, in seconds."""
        latencies = [r.latency_s for r in self.completed(kind)]
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    def wait_percentile(self, percentile: float,
                        kind: Optional[str] = None) -> float:
        """Percentile of admission-queue waiting time, in seconds."""
        waits = [r.wait_s for r in self.completed(kind)]
        if not waits:
            return 0.0
        return float(np.percentile(waits, percentile))

    def mean_latency_s(self, kind: Optional[str] = None) -> float:
        latencies = [r.latency_s for r in self.completed(kind)]
        return float(np.mean(latencies)) if latencies else 0.0

    # -- queue / utilization / fragmentation --------------------------------

    @property
    def max_queue_depth(self) -> int:
        if not self.queue_depth_samples:
            return 0
        return int(max(s.value for s in self.queue_depth_samples))

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return float(np.mean([s.value for s in self.queue_depth_samples]))

    @property
    def utilization(self) -> float:
        """Fraction of worker time spent serving, in ``[0, 1]``."""
        if self.duration_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.duration_s * self.worker_count))

    @property
    def final_fragmentation(self) -> float:
        if not self.fragmentation_samples:
            return 0.0
        return self.fragmentation_samples[-1].value

    @property
    def peak_fragmentation(self) -> float:
        if not self.fragmentation_samples:
            return 0.0
        return max(s.value for s in self.fragmentation_samples)
