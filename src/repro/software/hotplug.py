"""The memory-hotplug state machine with its latency model.

Mirrors the Linux flow the project upstreamed for arm64 (paper ref [12]):

* ``add_memory()`` — register sections as PRESENT: allocate the memmap
  (struct pages) and expand the page-table pool.
* ``online_pages()`` — hand PRESENT sections to the buddy allocator.
* ``offline_pages()`` / ``remove_memory()`` — the reverse path (offlining
  must migrate any used pages away, which makes it slower).

Latencies are charged per section; defaults are calibrated to published
hotplug measurements (a few ms per 128 MiB section to add, a similar
amount to online, substantially more to offline due to page migration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HotplugError
from repro.software.pages import (
    DEFAULT_SECTION_BYTES,
    MemorySection,
    SectionState,
)
from repro.units import milliseconds


@dataclass(frozen=True)
class HotplugTimings:
    """Per-section latency parameters of the hotplug operations."""

    #: add_memory(): memmap allocation + page-table pool expansion.
    add_per_section_s: float = milliseconds(1.5)
    #: online_pages(): init struct pages, release to buddy.
    online_per_section_s: float = milliseconds(4.0)
    #: offline_pages(): page migration + isolation (used pages hurt).
    offline_per_section_s: float = milliseconds(12.0)
    #: remove_memory(): tear down memmap and page tables.
    remove_per_section_s: float = milliseconds(1.0)
    #: Fixed syscall/ACPI/driver overhead per operation (not per section).
    operation_overhead_s: float = milliseconds(2.0)


DEFAULT_HOTPLUG_TIMINGS = HotplugTimings()


class MemoryHotplug:
    """Section bookkeeping plus operation latencies for one kernel."""

    def __init__(self, section_bytes: int = DEFAULT_SECTION_BYTES,
                 timings: HotplugTimings = DEFAULT_HOTPLUG_TIMINGS) -> None:
        if section_bytes <= 0:
            raise HotplugError("section size must be positive")
        self.section_bytes = section_bytes
        self.timings = timings
        self._sections: dict[int, MemorySection] = {}
        self.operations = 0
        # Running state counters: sections only change state through the
        # four operations below, so ``online_bytes``/``present_bytes``
        # stay O(1) instead of rescanning every section per query (the
        # queries sit on the control plane's availability hot path).
        self._online_sections = 0
        self._present_sections = 0

    # -- geometry ----------------------------------------------------------------

    def section_span(self, base: int, size: int) -> range:
        """Section indices covering ``[base, base+size)``.

        Hotplug requires section alignment; misaligned ranges are the
        classic way to corrupt the memory map, so they are rejected.
        """
        if base % self.section_bytes or size % self.section_bytes:
            raise HotplugError(
                f"range [{base:#x}, +{size:#x}) is not aligned to the "
                f"{self.section_bytes >> 20} MiB section size")
        if size <= 0:
            raise HotplugError(f"size must be positive, got {size}")
        first = base // self.section_bytes
        return range(first, first + size // self.section_bytes)

    def section(self, index: int) -> MemorySection:
        """The section at *index* (ABSENT placeholder if untouched)."""
        if index not in self._sections:
            self._sections[index] = MemorySection(index, self.section_bytes)
        return self._sections[index]

    # -- operations --------------------------------------------------------------------

    def add_memory(self, base: int, size: int) -> float:
        """Register ``[base, base+size)`` as PRESENT; returns latency.

        All-or-nothing: if any covered section is already present the
        operation fails before touching anything.
        """
        span = self.section_span(base, size)
        sections = [self.section(i) for i in span]
        for sec in sections:
            if sec.state is not SectionState.ABSENT:
                raise HotplugError(
                    f"section {sec.index} is already {sec.state.value}")
        for sec in sections:
            sec.transition(SectionState.PRESENT)
        self._present_sections += len(sections)
        self.operations += 1
        return (self.timings.operation_overhead_s
                + len(sections) * self.timings.add_per_section_s)

    def online(self, base: int, size: int) -> float:
        """Online PRESENT sections; returns latency."""
        span = self.section_span(base, size)
        sections = [self.section(i) for i in span]
        for sec in sections:
            if sec.state is not SectionState.PRESENT:
                raise HotplugError(
                    f"cannot online section {sec.index}: {sec.state.value}")
        for sec in sections:
            sec.transition(SectionState.ONLINE)
        self._online_sections += len(sections)
        self.operations += 1
        return (self.timings.operation_overhead_s
                + len(sections) * self.timings.online_per_section_s)

    def offline(self, base: int, size: int) -> float:
        """Offline ONLINE sections (page migration); returns latency."""
        span = self.section_span(base, size)
        sections = [self.section(i) for i in span]
        for sec in sections:
            if sec.state is not SectionState.ONLINE:
                raise HotplugError(
                    f"cannot offline section {sec.index}: {sec.state.value}")
        for sec in sections:
            sec.transition(SectionState.PRESENT)
        self._online_sections -= len(sections)
        self.operations += 1
        return (self.timings.operation_overhead_s
                + len(sections) * self.timings.offline_per_section_s)

    def remove_memory(self, base: int, size: int) -> float:
        """Unregister PRESENT sections back to ABSENT; returns latency."""
        span = self.section_span(base, size)
        sections = [self.section(i) for i in span]
        for sec in sections:
            if sec.state is not SectionState.PRESENT:
                raise HotplugError(
                    f"cannot remove section {sec.index}: {sec.state.value} "
                    f"(offline it first)")
        for sec in sections:
            sec.transition(SectionState.ABSENT)
        self._present_sections -= len(sections)
        self.operations += 1
        return (self.timings.operation_overhead_s
                + len(sections) * self.timings.remove_per_section_s)

    # -- queries -------------------------------------------------------------------------

    def online_bytes(self) -> int:
        """Bytes currently usable by the buddy allocator."""
        return self._online_sections * self.section_bytes

    def present_bytes(self) -> int:
        """Bytes registered (PRESENT or ONLINE)."""
        return self._present_sections * self.section_bytes

    def sections_in_state(self, state: SectionState) -> list[MemorySection]:
        return [s for s in self._sections.values() if s.state is state]
