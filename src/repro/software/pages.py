"""Memory sections: the granule of Linux memory hotplug.

"A feature enabling memory resizing at OS level is called memory hotplug.
As the name implies, the kernel attaches new physical page frames, by
expanding the page table pool at runtime, after the physical attachment
process of remote memory is completed.  We have implemented the memory
hotplug linux kernel support for arm64" (§IV.A, ref [12]).

Linux manages hotpluggable memory in fixed-size *sections* (SPARSEMEM).
A section is either ABSENT (no backing), PRESENT (registered, struct
pages allocated, not yet usable) or ONLINE (given to the buddy
allocator).  The granule is architecture-dependent — 128 MiB is the
common x86-64 figure and the configurable default here; the arm64 port
of the era used larger 1 GiB sections, which the hotplug ablation bench
sweeps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import HotplugError
from repro.units import mib

#: Default hotplug section size (SPARSEMEM section), bytes.
DEFAULT_SECTION_BYTES = mib(128)


class SectionState(enum.Enum):
    """SPARSEMEM section life cycle."""

    ABSENT = "absent"
    PRESENT = "present"
    ONLINE = "online"


_LEGAL = {
    SectionState.ABSENT: {SectionState.PRESENT},
    SectionState.PRESENT: {SectionState.ONLINE, SectionState.ABSENT},
    SectionState.ONLINE: {SectionState.PRESENT},
}


@dataclass
class MemorySection:
    """One hotplug section of the physical memory map.

    Attributes:
        index: Section number (``phys_addr // section_bytes``).
        section_bytes: Size of every section in this map.
        state: Current SPARSEMEM state.
    """

    index: int
    section_bytes: int = DEFAULT_SECTION_BYTES
    state: SectionState = SectionState.ABSENT

    def __post_init__(self) -> None:
        if self.index < 0:
            raise HotplugError(f"section index must be >= 0, got {self.index}")
        if self.section_bytes <= 0:
            raise HotplugError("section size must be positive")

    @property
    def base_address(self) -> int:
        return self.index * self.section_bytes

    @property
    def is_online(self) -> bool:
        return self.state is SectionState.ONLINE

    def transition(self, new_state: SectionState) -> None:
        """Move along the hotplug state machine; rejects illegal jumps
        (e.g. onlining an absent section)."""
        if new_state not in _LEGAL[self.state]:
            raise HotplugError(
                f"section {self.index}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state

    def __repr__(self) -> str:
        return (f"MemorySection({self.index}, "
                f"{self.section_bytes >> 20} MiB, {self.state.value})")
