"""Disaggregation system software (§IV of the paper).

The control plane that lets "virtual machines and orchestration software
dynamically and safely request, attach and use remote memory on any given
dCOMPUBRICK":

* :mod:`repro.software.pages` / :mod:`repro.software.hotplug` — the
  baremetal OS layer: section-granular memory hotplug as implemented for
  arm64 by the project (paper ref [12]).
* :mod:`repro.software.kernel` — the baremetal kernel view of a compute
  brick: physical map, hotplug, RAM accounting.
* :mod:`repro.software.vm` / :mod:`repro.software.hypervisor` — the
  virtualization layer: QEMU-style DIMM hotplug into running guests.
* :mod:`repro.software.balloon` — virtio-balloon-style elastic
  redistribution of guest memory.
* :mod:`repro.software.scaleup` — the Scale-up API and controller.
* :mod:`repro.software.agent` — the per-brick SDM Agent that applies
  configurations pushed by the SDM controller.
"""

from repro.software.agent import AgentTimings, SdmAgent
from repro.software.balloon import BalloonDriver
from repro.software.hotplug import HotplugTimings, MemoryHotplug
from repro.software.hypervisor import Hypervisor, HypervisorTimings, VirtualDimm
from repro.software.kernel import BaremetalKernel
from repro.software.pages import DEFAULT_SECTION_BYTES, MemorySection, SectionState
from repro.software.scaleup import ScaleUpController, ScaleUpRequest, ScaleUpResult
from repro.software.vm import VirtualMachine, VmState

__all__ = [
    "AgentTimings",
    "BalloonDriver",
    "BaremetalKernel",
    "DEFAULT_SECTION_BYTES",
    "HotplugTimings",
    "Hypervisor",
    "HypervisorTimings",
    "MemoryHotplug",
    "MemorySection",
    "ScaleUpController",
    "ScaleUpRequest",
    "ScaleUpResult",
    "SdmAgent",
    "SectionState",
    "VirtualDimm",
    "VirtualMachine",
    "VmState",
]
