"""The SDM Agent running on each dCOMPUBRICK's OS.

Section IV.C: the SDM Controller interacts "with agents (SDM Agents)
running on the OS of dCOMPUBRICKs".  The agent is the controller's hands
on the brick: it programs the RMST/glue with pushed configurations and
drives the kernel's attach/detach operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OrchestrationError
from repro.hardware.rmst import SegmentEntry
from repro.memory.segments import RemoteSegment
from repro.software.kernel import BaremetalKernel
from repro.units import microseconds, milliseconds


@dataclass(frozen=True)
class AgentTimings:
    """Latency parameters of agent operations."""

    #: One controller->agent RPC over the management network.
    rpc_latency_s: float = milliseconds(0.5)
    #: Programming one RMST entry through the glue-logic registers.
    rmst_program_s: float = microseconds(200)


DEFAULT_AGENT_TIMINGS = AgentTimings()


class SdmAgent:
    """Applies SDM-C configuration pushes on one compute brick."""

    def __init__(self, kernel: BaremetalKernel,
                 timings: AgentTimings = DEFAULT_AGENT_TIMINGS) -> None:
        self.kernel = kernel
        self.timings = timings
        self.configs_applied = 0

    @property
    def brick_id(self) -> str:
        return self.kernel.brick.brick_id

    def program_segment(self, entry: SegmentEntry) -> float:
        """Install an RMST entry pushed by the controller; returns latency."""
        self.kernel.brick.rmst.install(entry)
        self.configs_applied += 1
        return self.timings.rpc_latency_s + self.timings.rmst_program_s

    def unprogram_segment(self, segment_id: str) -> float:
        """Evict an RMST entry; returns latency."""
        self.kernel.brick.rmst.evict(segment_id)
        self.configs_applied += 1
        return self.timings.rpc_latency_s + self.timings.rmst_program_s

    def attach_segment(self, segment: RemoteSegment) -> float:
        """Drive the kernel attach (hotplug add+online); returns latency."""
        if segment.compute_brick_id != self.brick_id:
            raise OrchestrationError(
                f"segment {segment.segment_id} targets "
                f"{segment.compute_brick_id}, agent runs on {self.brick_id}")
        _record, latency = self.kernel.attach_segment(segment)
        self.configs_applied += 1
        return self.timings.rpc_latency_s + latency

    def detach_segment(self, segment_id: str) -> float:
        """Drive the kernel detach (offline+remove); returns latency."""
        latency = self.kernel.detach_segment(segment_id)
        self.configs_applied += 1
        return self.timings.rpc_latency_s + latency
