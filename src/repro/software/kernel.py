"""The baremetal kernel of a dCOMPUBRICK.

Owns the brick's physical address map and the hotplug machinery, and
exposes the two operations the disaggregation control plane needs
(§IV.A): attach a remote segment (map window -> add_memory -> online) and
detach it (offline -> remove -> unmap).  Also keeps simple RAM accounting
so the hypervisor can admission-check VM memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import HotplugError, HypervisorError, SoftwareError
from repro.hardware.bricks import ComputeBrick

from repro.memory.address import PhysicalAddressMap
from repro.memory.segments import RemoteSegment
from repro.software.hotplug import (
    DEFAULT_HOTPLUG_TIMINGS,
    HotplugTimings,
    MemoryHotplug,
)
from repro.software.pages import DEFAULT_SECTION_BYTES

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.datamover.mover import DataMover


@dataclass(frozen=True)
class AttachedSegment:
    """Kernel-side record of one attached remote segment."""

    segment: RemoteSegment
    window_base: int
    window_size: int


class BaremetalKernel:
    """Kernel state of one compute brick."""

    def __init__(self, brick: ComputeBrick,
                 section_bytes: int = DEFAULT_SECTION_BYTES,
                 hotplug_timings: HotplugTimings = DEFAULT_HOTPLUG_TIMINGS,
                 ) -> None:
        self.brick = brick
        self.address_map = PhysicalAddressMap(
            brick.local_memory_bytes, window_alignment=section_bytes)
        self.hotplug = MemoryHotplug(section_bytes, hotplug_timings)
        self._attached: dict[str, AttachedSegment] = {}
        #: RAM reserved by the hypervisor for running VMs.
        self._reserved_bytes = 0
        #: The brick's data mover, once one is bound.  Remote reads and
        #: writes route through it; attach/detach keep it coherent.
        self.data_mover: Optional["DataMover"] = None

    # -- RAM accounting ----------------------------------------------------------

    @property
    def total_ram_bytes(self) -> int:
        """Local DRAM plus all online remote memory."""
        return self.brick.local_memory_bytes + self.hotplug.online_bytes()

    @property
    def reserved_bytes(self) -> int:
        return self._reserved_bytes

    @property
    def available_bytes(self) -> int:
        return self.total_ram_bytes - self._reserved_bytes

    def reserve_ram(self, size: int) -> None:
        """Claim RAM for a VM; the hypervisor calls this on spawn/expand."""
        if size <= 0:
            raise HypervisorError(f"reservation must be positive, got {size}")
        if size > self.available_bytes:
            raise HypervisorError(
                f"cannot reserve {size} bytes; only {self.available_bytes} "
                f"available on {self.brick.brick_id}")
        self._reserved_bytes += size

    def release_ram(self, size: int) -> None:
        """Return RAM previously reserved."""
        if size <= 0:
            raise HypervisorError(f"release must be positive, got {size}")
        if size > self._reserved_bytes:
            raise HypervisorError(
                f"release of {size} bytes exceeds reservation "
                f"{self._reserved_bytes}")
        self._reserved_bytes -= size

    # -- segment attach/detach -----------------------------------------------------

    @property
    def attached_segments(self) -> list[AttachedSegment]:
        return list(self._attached.values())

    def attach_segment(self, segment: RemoteSegment) -> tuple[AttachedSegment, float]:
        """Attach *segment*: map a window, add and online its memory.

        Returns the kernel record and the total kernel-side latency.
        The paper's flow (§IV): "the baremetal OS attaches remote memory
        and makes it available".
        """
        if segment.segment_id in self._attached:
            raise HotplugError(
                f"segment {segment.segment_id} is already attached")
        window = self.address_map.map_window(segment.segment_id, segment.size)
        latency = self.hotplug.add_memory(window.base, window.size)
        latency += self.hotplug.online(window.base, window.size)
        record = AttachedSegment(segment, window.base, window.size)
        self._attached[segment.segment_id] = record
        if self.data_mover is not None:
            self.data_mover.register_segment(segment.segment_id,
                                             window.base, window.size)
        return record, latency

    def detach_segment(self, segment_id: str) -> float:
        """Detach a segment: offline, remove, unmap.  Returns latency.

        The guard compares *live* reservations against the post-detach
        headroom.  Reservations track guest-configured RAM (hypervisor
        DIMM accounting) — balloon-reclaimed pages stay configured and
        therefore still need backing, so they rightly count; a
        reservation that never touched this window only blocks the
        detach when the remaining memory genuinely cannot hold it.
        """
        record = self._attached.get(segment_id)
        if record is None:
            raise HotplugError(f"segment {segment_id} is not attached")
        in_use = self._reserved_bytes
        headroom = self.total_ram_bytes - record.window_size
        if in_use > headroom:
            raise HotplugError(
                f"cannot detach {segment_id} ({record.window_size} bytes): "
                f"{in_use} bytes of guest RAM reserved but only {headroom} "
                f"would remain on {self.brick.brick_id}")
        latency = 0.0
        if self.data_mover is not None:
            # Flush the mover's dirty blocks while the RMST entry and
            # circuit still exist — offlining first would strand them.
            latency += self.data_mover.flush_segment(segment_id)
        latency += self.hotplug.offline(record.window_base,
                                        record.window_size)
        latency += self.hotplug.remove_memory(record.window_base,
                                              record.window_size)
        self.address_map.unmap_window(segment_id)
        del self._attached[segment_id]
        return latency

    def window_of_segment(self, segment_id: str) -> Optional[AttachedSegment]:
        return self._attached.get(segment_id)

    # -- the remote data path ------------------------------------------------

    def bind_data_mover(self, mover: "DataMover") -> None:
        """Route this kernel's remote accesses through *mover*.

        Every already-attached segment is registered with the mover so
        detaches flush it correctly.
        """
        self.data_mover = mover
        for record in self._attached.values():
            mover.register_segment(record.segment.segment_id,
                                   record.window_base, record.window_size)

    def _require_mover(self) -> "DataMover":
        if self.data_mover is None:
            raise SoftwareError(
                f"no data mover bound on {self.brick.brick_id}; call "
                f"bind_data_mover (or DisaggregatedSystem."
                f"attach_data_mover) first")
        return self.data_mover

    def remote_read(self, address: int,
                    size_bytes: int = 64) -> "MoverAccessResult":
        """Read remote memory through the data mover."""
        return self._require_mover().read(address, size_bytes)

    def remote_write(self, address: int,
                     size_bytes: int = 64) -> "MoverAccessResult":
        """Write remote memory through the data mover (write-allocate)."""
        return self._require_mover().write(address, size_bytes)

    def __repr__(self) -> str:
        return (f"BaremetalKernel({self.brick.brick_id!r}, "
                f"ram={self.total_ram_bytes >> 30} GiB, "
                f"{len(self._attached)} remote segments)")
