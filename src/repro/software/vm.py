"""Virtual machine model.

A commodity VM as the paper's hypervisor hosts them: vCPUs, an amount of
guest-visible RAM (growable at runtime through DIMM hotplug), and a guest
kernel with its own memory-hotplug machinery — "the guest kernel is
leveraging the hotplug support that has been previously described for the
baremetal kernel" (§IV.B).
"""

from __future__ import annotations

import enum

from repro.errors import HypervisorError
from repro.software.hotplug import MemoryHotplug
from repro.software.pages import DEFAULT_SECTION_BYTES


class VmState(enum.Enum):
    """VM life cycle."""

    PROVISIONING = "provisioning"
    RUNNING = "running"
    PAUSED = "paused"
    TERMINATED = "terminated"


_LEGAL = {
    VmState.PROVISIONING: {VmState.RUNNING, VmState.TERMINATED},
    VmState.RUNNING: {VmState.PAUSED, VmState.TERMINATED},
    VmState.PAUSED: {VmState.RUNNING, VmState.TERMINATED},
    VmState.TERMINATED: set(),
}


class VirtualMachine:
    """One guest, possibly consuming disaggregated memory."""

    def __init__(self, vm_id: str, vcpus: int, ram_bytes: int,
                 guest_section_bytes: int = DEFAULT_SECTION_BYTES) -> None:
        if vcpus < 1:
            raise HypervisorError(f"VM needs >= 1 vCPU, got {vcpus}")
        if ram_bytes <= 0:
            raise HypervisorError(f"VM needs positive RAM, got {ram_bytes}")
        self.vm_id = vm_id
        self.vcpus = vcpus
        self.initial_ram_bytes = ram_bytes
        self._ram_bytes = ram_bytes
        self._state = VmState.PROVISIONING
        #: The guest kernel's own hotplug machinery (for DIMM onlining).
        self.guest_hotplug = MemoryHotplug(guest_section_bytes)
        #: Guest-physical cursor where the next DIMM lands.
        self._guest_phys_cursor = self._align_up(ram_bytes, guest_section_bytes)
        #: Balloon-reclaimed bytes (not visible to the guest right now).
        self.ballooned_bytes = 0

    @staticmethod
    def _align_up(value: int, alignment: int) -> int:
        return ((value + alignment - 1) // alignment) * alignment

    # -- state ------------------------------------------------------------------

    @property
    def state(self) -> VmState:
        return self._state

    def transition(self, new_state: VmState) -> None:
        if new_state not in _LEGAL[self._state]:
            raise HypervisorError(
                f"VM {self.vm_id}: illegal transition "
                f"{self._state.value} -> {new_state.value}")
        self._state = new_state

    def start(self) -> None:
        self.transition(VmState.RUNNING)

    def terminate(self) -> None:
        self.transition(VmState.TERMINATED)

    @property
    def is_running(self) -> bool:
        return self._state is VmState.RUNNING

    # -- memory ----------------------------------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """Guest-visible RAM right now (hotplugged DIMMs included,
        ballooned-out memory excluded)."""
        return self._ram_bytes - self.ballooned_bytes

    @property
    def configured_ram_bytes(self) -> int:
        """RAM configured into the guest (ignores the balloon)."""
        return self._ram_bytes

    def accept_dimm(self, size: int) -> float:
        """Guest side of DIMM hotplug: online the new range.

        Returns the guest-kernel latency (add + online of the covered
        sections).  The hypervisor calls this after its own attach step.
        """
        if size <= 0:
            raise HypervisorError(f"DIMM size must be positive, got {size}")
        if self._state is not VmState.RUNNING:
            raise HypervisorError(
                f"VM {self.vm_id} is {self._state.value}; cannot hotplug")
        base = self._guest_phys_cursor
        padded = self._align_up(size, self.guest_hotplug.section_bytes)
        latency = self.guest_hotplug.add_memory(base, padded)
        latency += self.guest_hotplug.online(base, padded)
        self._guest_phys_cursor = base + padded
        self._ram_bytes += size
        return latency

    def surrender_ram(self, size: int) -> None:
        """Scale-down accounting after a DIMM removal or balloon inflate."""
        if size <= 0:
            raise HypervisorError(f"size must be positive, got {size}")
        if size > self._ram_bytes - self.initial_ram_bytes + self.ballooned_bytes:
            raise HypervisorError(
                f"VM {self.vm_id} cannot surrender {size} bytes below its "
                f"initial allocation")
        self._ram_bytes -= size

    def __repr__(self) -> str:
        return (f"VirtualMachine({self.vm_id!r}, {self.vcpus} vCPU, "
                f"{self.ram_bytes >> 30} GiB, {self._state.value})")
