"""Memory ballooning for elastic redistribution.

One of the project objectives is "an appropriately revisited design of
virtual memory ballooning subsystem for elastic distribution of
disaggregated memory" (§I).  The balloon reclaims guest pages without the
latency of DIMM unplug: inflating the balloon takes memory *from* the
guest (making it available to others), deflating gives it back.

In the dReDBox design the balloon complements hotplug: hotplug changes
the guest's configured memory (slow, section-granular), the balloon moves
pages within it (fast, page-granular).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BalloonError
from repro.software.vm import VirtualMachine
from repro.units import milliseconds


@dataclass(frozen=True)
class BalloonTimings:
    """Latency parameters of balloon operations."""

    #: Per-GiB cost of inflating (guest must find and release pages).
    inflate_per_gib_s: float = milliseconds(35)
    #: Per-GiB cost of deflating (returning pages is nearly free).
    deflate_per_gib_s: float = milliseconds(5)


DEFAULT_BALLOON_TIMINGS = BalloonTimings()

_GIB = 1 << 30


class BalloonDriver:
    """The virtio-balloon instance of one VM."""

    def __init__(self, vm: VirtualMachine,
                 timings: BalloonTimings = DEFAULT_BALLOON_TIMINGS,
                 guaranteed_bytes: int = 0) -> None:
        """Create the driver.

        Args:
            vm: The guest this balloon lives in.
            timings: Latency parameters.
            guaranteed_bytes: Floor below which inflation may not push the
                guest's visible memory (defaults to half the initial RAM).
        """
        self.vm = vm
        self.timings = timings
        self.guaranteed_bytes = (guaranteed_bytes
                                 or vm.initial_ram_bytes // 2)

    @property
    def inflated_bytes(self) -> int:
        """Bytes currently reclaimed from the guest."""
        return self.vm.ballooned_bytes

    def inflate(self, size: int) -> float:
        """Reclaim *size* bytes from the guest; returns the latency.

        Refuses to push the guest below its guaranteed floor — the
        "protect the guest from running out-of-memory" concern of §IV.B.
        """
        if size <= 0:
            raise BalloonError(f"inflate size must be positive, got {size}")
        remaining = self.vm.ram_bytes - size
        if remaining < self.guaranteed_bytes:
            raise BalloonError(
                f"inflating {size} bytes would leave {remaining} bytes, "
                f"below the guaranteed {self.guaranteed_bytes}")
        self.vm.ballooned_bytes += size
        return (size / _GIB) * self.timings.inflate_per_gib_s

    def deflate(self, size: int) -> float:
        """Give *size* bytes back to the guest; returns the latency."""
        if size <= 0:
            raise BalloonError(f"deflate size must be positive, got {size}")
        if size > self.vm.ballooned_bytes:
            raise BalloonError(
                f"cannot deflate {size} bytes; balloon holds "
                f"{self.vm.ballooned_bytes}")
        self.vm.ballooned_bytes -= size
        return (size / _GIB) * self.timings.deflate_per_gib_s

    def available_for_inflation(self) -> int:
        """Bytes that could be reclaimed without breaching the floor."""
        return max(0, self.vm.ram_bytes - self.guaranteed_bytes)
