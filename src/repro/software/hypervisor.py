"""Type-1 hypervisor with memory hotplug (the QEMU layer of §IV.B).

"At the virtualization layer, we have developed appropriate memory
hotplug support scheme for the QEMU hypervisor.  The implementation adds
new RAM DIMMs, at runtime, and makes them available to the guest OS."

The model hosts VMs on one compute brick, admission-checks their memory
against the baremetal kernel's accounting, and implements runtime DIMM
attach: hypervisor-side device add (fixed cost) followed by guest-side
onlining (the guest's hotplug machinery).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import HypervisorError
from repro.software.kernel import BaremetalKernel
from repro.software.vm import VirtualMachine, VmState
from repro.units import milliseconds


@dataclass(frozen=True)
class HypervisorTimings:
    """Latency parameters of hypervisor operations."""

    #: QEMU device_add of a pc-dimm + ACPI notify to the guest.
    dimm_attach_s: float = milliseconds(50)
    #: device_del + guest eject handshake.
    dimm_detach_s: float = milliseconds(80)
    #: Fixed VM spawn overhead *on an already-running hypervisor* (the
    #: conventional-cloud spawn path is far slower and modelled in the
    #: Fig. 10 baseline, not here).
    vm_spawn_s: float = milliseconds(900)


DEFAULT_HYPERVISOR_TIMINGS = HypervisorTimings()

#: QEMU limits the number of hotpluggable memory slots per machine.
DEFAULT_DIMM_SLOTS = 32


@dataclass
class VirtualDimm:
    """One hotplugged memory device backing part of a guest."""

    dimm_id: str
    vm_id: str
    size_bytes: int
    #: The remote segment backing this DIMM ("" = local DRAM).
    segment_id: str = ""


class Hypervisor:
    """The Type-1 hypervisor instance on one compute brick."""

    def __init__(self, kernel: BaremetalKernel,
                 timings: HypervisorTimings = DEFAULT_HYPERVISOR_TIMINGS,
                 dimm_slots: int = DEFAULT_DIMM_SLOTS) -> None:
        if dimm_slots < 1:
            raise HypervisorError("need at least one DIMM slot")
        self.kernel = kernel
        self.timings = timings
        self.dimm_slots = dimm_slots
        self._vms: dict[str, VirtualMachine] = {}
        self._dimms: dict[str, list[VirtualDimm]] = {}
        self._dimm_ids = itertools.count()
        # Hosted-core count, maintained at the four membership changes
        # (spawn/terminate/evict/adopt) — vCPU counts never change after
        # spawn, so the admission checks and availability snapshots stay
        # O(1) per query.
        self._cores_in_use = 0

    @property
    def brick_id(self) -> str:
        return self.kernel.brick.brick_id

    # -- VM lifecycle -------------------------------------------------------------

    @property
    def vms(self) -> list[VirtualMachine]:
        return list(self._vms.values())

    def vm(self, vm_id: str) -> VirtualMachine:
        try:
            return self._vms[vm_id]
        except KeyError:
            raise HypervisorError(
                f"hypervisor on {self.brick_id} hosts no VM {vm_id!r}") from None

    def spawn_vm(self, vm_id: str, vcpus: int,
                 ram_bytes: int) -> tuple[VirtualMachine, float]:
        """Create and start a VM; returns it and the spawn latency.

        Admission control: vCPUs against the brick's cores (shared with
        already-running VMs) and RAM against the kernel's availability.
        """
        if vm_id in self._vms:
            raise HypervisorError(f"VM id {vm_id!r} already in use")
        cores_in_use = self._cores_in_use
        if cores_in_use + vcpus > self.kernel.brick.core_count:
            raise HypervisorError(
                f"brick {self.brick_id} has {self.kernel.brick.core_count} "
                f"cores; {cores_in_use} in use, cannot add {vcpus}")
        self.kernel.reserve_ram(ram_bytes)
        vm = VirtualMachine(vm_id, vcpus, ram_bytes)
        self._vms[vm_id] = vm
        self._dimms[vm_id] = []
        self._cores_in_use += vcpus
        vm.start()
        return vm, self.timings.vm_spawn_s

    def terminate_vm(self, vm_id: str) -> None:
        """Tear a VM down and release all its memory reservations."""
        vm = self.vm(vm_id)
        if vm.state is not VmState.TERMINATED:
            vm.terminate()
        self.kernel.release_ram(vm.configured_ram_bytes)
        del self._vms[vm_id]
        del self._dimms[vm_id]
        self._cores_in_use -= vm.vcpus

    # -- DIMM hotplug --------------------------------------------------------------

    def dimms_of(self, vm_id: str) -> list[VirtualDimm]:
        self.vm(vm_id)
        return list(self._dimms[vm_id])

    def hotplug_dimm(self, vm_id: str, size_bytes: int,
                     segment_id: str = "") -> tuple[VirtualDimm, float]:
        """Attach a DIMM to a running VM; returns it and the latency.

        The latency is the hypervisor device-add cost plus the guest
        kernel's add+online of the new range — the §IV.B flow.
        """
        vm = self.vm(vm_id)
        if len(self._dimms[vm_id]) >= self.dimm_slots:
            raise HypervisorError(
                f"VM {vm_id} has exhausted its {self.dimm_slots} DIMM slots")
        self.kernel.reserve_ram(size_bytes)
        latency = self.timings.dimm_attach_s
        try:
            latency += vm.accept_dimm(size_bytes)
        except Exception:
            self.kernel.release_ram(size_bytes)
            raise
        # The id counter is per-hypervisor, but a migrated VM arrives
        # with DIMMs minted by *another* hypervisor's counter; skip any
        # colliding ids so unplug_dimm can never match the wrong device.
        taken = {d.dimm_id for d in self._dimms[vm_id]}
        dimm_id = f"{vm_id}.dimm{next(self._dimm_ids)}"
        while dimm_id in taken:
            dimm_id = f"{vm_id}.dimm{next(self._dimm_ids)}"
        dimm = VirtualDimm(
            dimm_id=dimm_id,
            vm_id=vm_id,
            size_bytes=size_bytes,
            segment_id=segment_id,
        )
        self._dimms[vm_id].append(dimm)
        return dimm, latency

    def unplug_dimm(self, vm_id: str, dimm_id: str) -> float:
        """Detach a DIMM from a running VM; returns the latency."""
        vm = self.vm(vm_id)
        dimms = self._dimms[vm_id]
        match = next((d for d in dimms if d.dimm_id == dimm_id), None)
        if match is None:
            raise HypervisorError(f"VM {vm_id} has no DIMM {dimm_id!r}")
        vm.surrender_ram(match.size_bytes)
        self.kernel.release_ram(match.size_bytes)
        dimms.remove(match)
        return self.timings.dimm_detach_s

    # -- the guest data path ---------------------------------------------------------

    def guest_read(self, vm_id: str, address: int, size_bytes: int = 64):
        """A guest load hitting remote memory, routed via the data mover.

        The VM must be running; *address* is a brick physical address
        inside one of the kernel's attached segment windows (the RMST
        rejects anything else).  Returns the mover's access result.
        """
        vm = self.vm(vm_id)
        if vm.state is not VmState.RUNNING:
            raise HypervisorError(
                f"VM {vm_id} is not running (state: {vm.state.value})")
        return self.kernel.remote_read(address, size_bytes)

    def guest_write(self, vm_id: str, address: int, size_bytes: int = 64):
        """A guest store hitting remote memory, routed via the data mover."""
        vm = self.vm(vm_id)
        if vm.state is not VmState.RUNNING:
            raise HypervisorError(
                f"VM {vm_id} is not running (state: {vm.state.value})")
        return self.kernel.remote_write(address, size_bytes)

    # -- migration support ----------------------------------------------------------

    def evict_vm(self, vm_id: str) -> tuple[VirtualMachine, list[VirtualDimm]]:
        """Hand a (paused) VM off for migration.

        Releases this hypervisor's core and RAM accounting but does NOT
        terminate the guest — the receiving hypervisor re-adopts the
        same :class:`VirtualMachine` object, preserving its configured
        memory and DIMM topology.
        """
        vm = self.vm(vm_id)
        if vm.state is not VmState.PAUSED:
            raise HypervisorError(
                f"VM {vm_id} must be paused before migration "
                f"(state: {vm.state.value})")
        dimms = self._dimms[vm_id]
        self.kernel.release_ram(vm.configured_ram_bytes)
        del self._vms[vm_id]
        del self._dimms[vm_id]
        self._cores_in_use -= vm.vcpus
        return vm, dimms

    def adopt_vm(self, vm: VirtualMachine,
                 dimms: Optional[list[VirtualDimm]] = None) -> None:
        """Receive a migrated VM (still paused; caller resumes it).

        Admission-checks cores and RAM exactly like :meth:`spawn_vm`.
        """
        if vm.vm_id in self._vms:
            raise HypervisorError(f"VM id {vm.vm_id!r} already in use")
        if vm.state is not VmState.PAUSED:
            raise HypervisorError(
                f"only paused VMs can be adopted (state: {vm.state.value})")
        cores_in_use = self._cores_in_use
        if cores_in_use + vm.vcpus > self.kernel.brick.core_count:
            raise HypervisorError(
                f"brick {self.brick_id} lacks {vm.vcpus} free cores for "
                f"incoming VM {vm.vm_id}")
        self.kernel.reserve_ram(vm.configured_ram_bytes)
        self._vms[vm.vm_id] = vm
        self._dimms[vm.vm_id] = list(dimms or [])
        self._cores_in_use += vm.vcpus

    # -- accounting ---------------------------------------------------------------------

    def cores_in_use(self) -> int:
        return self._cores_in_use

    def guest_ram_bytes(self) -> int:
        """Total RAM configured into live guests."""
        return sum(v.configured_ram_bytes for v in self._vms.values()
                   if v.state is not VmState.TERMINATED)

    def __repr__(self) -> str:
        return (f"Hypervisor({self.brick_id!r}, {len(self._vms)} VMs, "
                f"{self.cores_in_use()}/{self.kernel.brick.core_count} cores)")
