"""The Scale-up API and controller (§IV).

The paper's control flow for dynamic memory expansion:

    "An appropriately designed Scale-up API triggers the memory
    attachment process.  The application notifies the Scaleup controller
    which in turn relays the request to the Software Defined Memory (SDM)
    Controller that manages the remote memory resources.  Subsequently,
    the destination dCOMPUBRICK h/w glue logic is configured and the
    baremetal OS attaches remote memory and makes it available.  Then
    control is handed back to the Scale-up controller which configures
    the hypervisor to dynamically expand the physical memory that it
    provides to the hosted VM."

:class:`ScaleUpController` implements exactly that pipeline.  The SDM
controller itself lives a layer up (:mod:`repro.orchestration`); it is
injected here through the :class:`MemoryAllocator` protocol so the
software layer stays below the orchestration layer.

Like the SDM controller, every pipeline exists in two forms: a
``*_process`` DES generator that charges each step on a shared
:class:`~repro.sim.control.ControlContext` clock (queueing on the SDM-C
critical section where the allocator supports it), and the historical
synchronous method, now a zero-contention wrapper that runs the process
alone on a private one-shot simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import OrchestrationError, ReproError
from repro.hardware.rmst import SegmentEntry
from repro.memory.segments import RemoteSegment
from repro.sim.control import ControlContext, run_sync
from repro.sim.engine import ProcessGenerator
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.units import milliseconds

#: Scale-up controller processing time per request (API handling,
#: bookkeeping) before/after the heavy steps.
CONTROLLER_OVERHEAD_S = milliseconds(1.0)


@dataclass(frozen=True)
class AttachTicket:
    """What the SDM controller returns for a granted allocation.

    Attributes:
        segment: The reserved remote segment (state ``RESERVED``).
        rmst_entry: The RMST row the agent must program.
        control_latency_s: Orchestration-side latency: reservation,
            placement, circuit setup, configuration generation.
    """

    segment: RemoteSegment
    rmst_entry: SegmentEntry
    control_latency_s: float


class MemoryAllocator(Protocol):
    """The slice of the SDM controller the scale-up path consumes."""

    def allocate(self, compute_brick_id: str, vm_id: str,
                 size_bytes: int) -> AttachTicket:
        """Reserve remote memory + circuit for a compute brick."""
        ...

    def release(self, segment_id: str) -> float:
        """Release a segment; returns orchestration latency."""
        ...


@dataclass(frozen=True)
class ScaleUpRequest:
    """One application request for more memory."""

    vm_id: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise OrchestrationError(
                f"scale-up size must be positive, got {self.size_bytes}")


@dataclass
class ScaleUpResult:
    """Outcome of a scale-up: the segment and the per-step latencies."""

    request: ScaleUpRequest
    segment: RemoteSegment
    steps: dict[str, float] = field(default_factory=dict)

    @property
    def total_latency_s(self) -> float:
        return sum(self.steps.values())


class ScaleUpController:
    """Coordinates the end-to-end scale-up pipeline on one brick."""

    def __init__(self, hypervisor: Hypervisor, agent: SdmAgent,
                 allocator: MemoryAllocator) -> None:
        self.hypervisor = hypervisor
        self.agent = agent
        self.allocator = allocator
        self.requests_served = 0
        #: segment_id -> (segment, dimm_id) for scale-down.
        self._attached: dict[str, tuple[RemoteSegment, str]] = {}

    @property
    def brick_id(self) -> str:
        return self.hypervisor.brick_id

    def scale_up(self, request: ScaleUpRequest) -> ScaleUpResult:
        """Run the full §IV pipeline; returns the per-step latency ledger.

        Zero-contention synchronous wrapper around
        :meth:`scale_up_process`.  Steps (keys of ``result.steps``):

        * ``controller`` — scale-up API processing.
        * ``sdm`` — SDM-C reservation, placement and circuit setup.
        * ``glue_config`` — agent programming the RMST/glue.
        * ``kernel_attach`` — baremetal hotplug add+online.
        * ``hypervisor`` — QEMU DIMM attach + guest onlining.
        """
        return run_sync(lambda ctx: self.scale_up_process(ctx, request))

    def scale_up_process(self, ctx: ControlContext, request: ScaleUpRequest,
                         *, charge_config: bool = True,
                         on_commit=None) -> ProcessGenerator:
        """DES process form of :meth:`scale_up`.

        Each pipeline step is charged on the shared clock; the SDM
        reservation queues on ``ctx.reservation`` when the allocator
        exposes ``allocate_process``.  ``charge_config`` is forwarded to
        the allocator so a batching control plane can amortize
        configuration generation across a batch.  ``on_commit`` (when
        given) is invoked the moment the SDM-side reservation has
        committed — everything after it is brick-side work (glue,
        kernel, hypervisor), which a completion-offloading control
        plane runs without holding a dispatcher slot.
        """
        vm = self.hypervisor.vm(request.vm_id)
        yield ctx.sim.timeout(CONTROLLER_OVERHEAD_S)
        ticket = yield from self._allocate_on(
            ctx, request.vm_id, request.size_bytes,
            charge_config=charge_config)
        if on_commit is not None:
            on_commit()
        segment = ticket.segment

        steps: dict[str, float] = {"controller": CONTROLLER_OVERHEAD_S}
        steps["sdm"] = ticket.control_latency_s
        programmed = attached = False
        try:
            steps["glue_config"] = self.agent.program_segment(
                ticket.rmst_entry)
            programmed = True
            steps["kernel_attach"] = self.agent.attach_segment(segment)
            attached = True
            yield ctx.sim.timeout(steps["glue_config"]
                                  + steps["kernel_attach"])
            segment.activate()
            dimm, hyp_latency = self.hypervisor.hotplug_dimm(
                vm.vm_id, request.size_bytes, segment_id=segment.segment_id)
        except ReproError:
            # Roll the pipeline back (open-loop control planes keep
            # running after a rejection): a DIMM-slot or RAM shortage
            # at the hypervisor step must not strand the segment as
            # reserved-and-attached with no owner to release it.
            rollback_s = 0.0
            if attached:
                rollback_s += self.agent.detach_segment(segment.segment_id)
            if programmed:
                rollback_s += self.agent.unprogram_segment(
                    segment.segment_id)
            yield ctx.sim.timeout(rollback_s)
            yield from self._release_on(ctx, segment.segment_id)
            segment.release()
            raise
        steps["hypervisor"] = hyp_latency
        yield ctx.sim.timeout(hyp_latency)

        self._attached[segment.segment_id] = (segment, dimm.dimm_id)
        self.requests_served += 1
        return ScaleUpResult(request=request, segment=segment, steps=steps)

    def scale_down(self, vm_id: str, segment_id: str) -> dict[str, float]:
        """Reverse pipeline: DIMM unplug, kernel detach, glue unprogram,
        SDM release.  Zero-contention synchronous wrapper around
        :meth:`scale_down_process`; returns the per-step latency ledger."""
        return run_sync(
            lambda ctx: self.scale_down_process(ctx, vm_id, segment_id))

    def scale_down_process(self, ctx: ControlContext, vm_id: str,
                           segment_id: str) -> ProcessGenerator:
        """DES process form of :meth:`scale_down`."""
        if segment_id not in self._attached:
            raise OrchestrationError(
                f"segment {segment_id!r} is not attached via this controller")
        segment, dimm_id = self._attached[segment_id]
        steps = {"controller": CONTROLLER_OVERHEAD_S}
        yield ctx.sim.timeout(CONTROLLER_OVERHEAD_S)
        steps["hypervisor"] = self.hypervisor.unplug_dimm(vm_id, dimm_id)
        steps["kernel_detach"] = self.agent.detach_segment(segment_id)
        steps["glue_config"] = self.agent.unprogram_segment(segment_id)
        yield ctx.sim.timeout(steps["hypervisor"] + steps["kernel_detach"]
                              + steps["glue_config"])
        steps["sdm"] = yield from self._release_on(ctx, segment_id)
        segment.release()
        del self._attached[segment_id]
        self.requests_served += 1
        return steps

    # -- allocator dispatch ------------------------------------------------------

    def _allocate_on(self, ctx: ControlContext, vm_id: str, size_bytes: int,
                     *, charge_config: bool) -> ProcessGenerator:
        """Allocate through the DES path when the allocator has one.

        Allocators implementing only the synchronous protocol (e.g. test
        stubs) are charged as an uncontended timeout instead.
        """
        process = getattr(self.allocator, "allocate_process", None)
        if process is not None:
            ticket = yield from process(ctx, self.brick_id, vm_id,
                                        size_bytes,
                                        charge_config=charge_config)
        else:
            ticket = self.allocator.allocate(self.brick_id, vm_id,
                                             size_bytes)
            yield ctx.sim.timeout(ticket.control_latency_s)
        return ticket

    def _release_on(self, ctx: ControlContext,
                    segment_id: str) -> ProcessGenerator:
        """Release through the DES path when the allocator has one."""
        process = getattr(self.allocator, "release_process", None)
        if process is not None:
            latency = yield from process(ctx, segment_id)
        else:
            latency = self.allocator.release(segment_id)
            yield ctx.sim.timeout(latency)
        return latency

    def attached_segments(self) -> list[RemoteSegment]:
        return [segment for segment, _dimm in self._attached.values()]

    # -- migration hand-off -----------------------------------------------------

    def disown(self, segment_id: str) -> tuple[RemoteSegment, str]:
        """Release bookkeeping of a segment that migrates away.

        Returns ``(segment, dimm_id)`` so the destination brick's
        controller can :meth:`adopt` it.  No hardware is touched — the
        migration flow drives the actual detach/re-attach.
        """
        if segment_id not in self._attached:
            raise OrchestrationError(
                f"segment {segment_id!r} is not attached via this controller")
        return self._attached.pop(segment_id)

    def adopt(self, segment: RemoteSegment, dimm_id: str) -> None:
        """Register a segment that migrated onto this brick."""
        if segment.segment_id in self._attached:
            raise OrchestrationError(
                f"segment {segment.segment_id!r} already tracked here")
        self._attached[segment.segment_id] = (segment, dimm_id)
