"""Correlated failure domains and pluggable hazard functions.

PR 7's injector draws *independent* failures: a memory brick and its
rack's uplink die on unrelated clocks, which is kind to the placement
layer — real outages are not.  A PDU trip takes out every brick in the
rack *and* the uplink *and* the shard controller's host in one event; a
spine incident takes a pod's switch and uplinks together.  This module
models exactly that:

* :class:`FailureDomain` — a named group of ``(FaultClass, target)``
  members that fail **together**.  One domain event injects every
  member with the same repair horizon, so the blast radius is the
  union of the members' blast radii at a single instant.
* :class:`ExponentialHazard` / :class:`WeibullHazard` — pluggable
  inter-arrival distributions.  The Weibull shape parameter gives the
  bathtub's two interesting halves: ``shape < 1`` is infant mortality
  (burn-in), ``shape > 1`` is wear-out; ``shape == 1`` degenerates to
  the exponential.

**Determinism.**  Each domain draws from its own named stream
(``faults.domain.<name>``), so configuring domains never perturbs the
per-class streams — a seed that produced a given independent-failure
schedule in PR 7 still produces it bit-identically with domains layered
on top.

Builders (:func:`rack_power_domains`, :func:`pod_network_domains`)
derive the canonical domain sets from a federation's topology so
experiments don't hand-enumerate member lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.errors import FaultError
from repro.faults.metrics import FaultClass


class Hazard(Protocol):
    """Inter-arrival distribution for failures of one class/domain."""

    def draw(self, stream: np.random.Generator) -> float:
        """Next time-to-failure (s), consuming draws from *stream*."""
        ...


@dataclass(frozen=True)
class ExponentialHazard:
    """Memoryless hazard — constant failure rate ``1/mean_s``."""

    mean_s: float

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise FaultError(
                f"hazard mean must be positive, got {self.mean_s}")

    def draw(self, stream: np.random.Generator) -> float:
        return float(stream.exponential(self.mean_s))


@dataclass(frozen=True)
class WeibullHazard:
    """Weibull hazard: bathtub halves via the shape parameter.

    ``shape < 1`` — decreasing hazard (infant mortality): failures
    cluster early, survivors become more reliable.  ``shape > 1`` —
    increasing hazard (wear-out): the longer a component runs, the
    likelier its next failure.  ``scale_s`` is the characteristic life
    (the 63.2% quantile).
    """

    scale_s: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale_s <= 0:
            raise FaultError(
                f"Weibull scale must be positive, got {self.scale_s}")
        if self.shape <= 0:
            raise FaultError(
                f"Weibull shape must be positive, got {self.shape}")

    def draw(self, stream: np.random.Generator) -> float:
        return float(self.scale_s * stream.weibull(self.shape))


def coerce_hazard(spec: str) -> Hazard:
    """Parse a CLI-shaped hazard spec.

    ``"exponential"`` (rate comes from the class MTBF) is expressed by
    returning ``None`` upstream; here the accepted forms are
    ``"weibull:<scale_s>:<shape>"`` and ``"exponential:<mean_s>"``.
    """
    kind, _, rest = spec.partition(":")
    try:
        if kind == "weibull":
            scale_s, _, shape = rest.partition(":")
            return WeibullHazard(scale_s=float(scale_s), shape=float(shape))
        if kind == "exponential":
            return ExponentialHazard(mean_s=float(rest))
    except (TypeError, ValueError):
        raise FaultError(f"malformed hazard spec {spec!r}") from None
    raise FaultError(
        f"unknown hazard kind {kind!r}; known: exponential, weibull")


@dataclass(frozen=True)
class FailureDomain:
    """A named set of components that fail together.

    ``kind`` is descriptive ("power" or "network"); the semantics are
    entirely in the member list.  ``hazard`` defaults to an exponential
    with mean :attr:`mtbf_s`; pass a :class:`WeibullHazard` for bathtub
    behaviour.  All members repair together after the drawn (or
    scripted) outage duration.
    """

    name: str
    kind: str
    members: tuple[tuple[FaultClass, str], ...]
    mtbf_s: float
    mttr_s: float
    hazard: Optional[Hazard] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise FaultError(f"domain {self.name!r} has no members")
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise FaultError(
                f"domain {self.name!r}: MTBF/MTTR must be positive "
                f"(got {self.mtbf_s}/{self.mttr_s})")

    @property
    def effective_hazard(self) -> Hazard:
        return (self.hazard if self.hazard is not None
                else ExponentialHazard(self.mtbf_s))

    @property
    def member_set(self) -> frozenset[tuple[FaultClass, str]]:
        return frozenset(self.members)


@dataclass
class DomainOutage:
    """Runtime record of one active domain failure."""

    domain: FailureDomain
    failed_s: float
    #: Simulated time at which the domain (and all its members) repairs.
    until_s: float
    #: Members the injector actually failed for this outage (a member
    #: already down independently is not re-injected).
    injected: tuple[tuple[FaultClass, str], ...] = field(default=())

    def holds(self, klass: FaultClass, target: str, now: float) -> bool:
        """True while this outage pins ``(klass, target)`` down.

        Strict inequality on ``until_s`` makes repairs at exactly the
        domain's clear instant proceed regardless of same-timestamp
        event ordering.
        """
        return (klass, target) in self.domain.member_set and self.until_s > now


# -- topology-derived builders ------------------------------------------------


def _pod_racks(pod) -> list[str]:
    registry = pod.system.sdm.registry
    return sorted({e.rack_id for e in registry.compute_entries}
                  | {e.rack_id for e in registry.memory_entries})


def rack_power_domains(federation, *, mtbf_s: float = 300.0,
                       mttr_s: float = 15.0,
                       hazard: Optional[Hazard] = None
                       ) -> list[FailureDomain]:
    """One power domain per (pod, rack): the rack's memory bricks, its
    uplink, and the shard controller managing it trip together — the
    PDU-failure model."""
    domains: list[FailureDomain] = []
    for pod_id in sorted(federation.pods):
        pod = federation.pods[pod_id]
        registry = pod.system.sdm.registry
        sdm = pod.system.sdm
        shard_of_rack: dict[str, str] = {}
        if hasattr(sdm, "shard_members"):
            for shard, racks in sdm.shard_members().items():
                for rack in racks:
                    shard_of_rack[rack] = shard
        for rack in _pod_racks(pod):
            members: list[tuple[FaultClass, str]] = [
                (FaultClass.MEMORY_BRICK, f"{pod_id}:{e.brick.brick_id}")
                for e in sorted(registry.memory_entries,
                                key=lambda e: e.brick.brick_id)
                if e.rack_id == rack]
            members.append((FaultClass.RACK_UPLINK, f"{pod_id}:{rack}"))
            if rack in shard_of_rack:
                members.append(
                    (FaultClass.SHARD, f"{pod_id}:{shard_of_rack[rack]}"))
            domains.append(FailureDomain(
                name=f"power.{pod_id}.{rack}", kind="power",
                members=tuple(members), mtbf_s=mtbf_s, mttr_s=mttr_s,
                hazard=hazard))
    return domains


def pod_network_domains(federation, *, mtbf_s: float = 600.0,
                        mttr_s: float = 10.0,
                        hazard: Optional[Hazard] = None
                        ) -> list[FailureDomain]:
    """One network domain per pod: the inter-rack switch plus every
    rack uplink — the spine-incident model."""
    domains: list[FailureDomain] = []
    for pod_id in sorted(federation.pods):
        pod = federation.pods[pod_id]
        members: list[tuple[FaultClass, str]] = [
            (FaultClass.SWITCH, pod_id)]
        members.extend((FaultClass.RACK_UPLINK, f"{pod_id}:{rack}")
                       for rack in _pod_racks(pod))
        domains.append(FailureDomain(
            name=f"net.{pod_id}", kind="network",
            members=tuple(members), mtbf_s=mtbf_s, mttr_s=mttr_s,
            hazard=hazard))
    return domains
