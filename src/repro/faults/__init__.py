"""MTBF-driven fault injection and self-healing (the failure tier).

Nothing in the reproduction died until this package: every tier —
fabric, data-mover, control plane, sharded controller, federation —
assumed a world without failures, while the ROADMAP names failures as
a first-class input.  :mod:`repro.faults` closes that gap:

* :class:`~repro.faults.injector.FaultInjector` schedules MTBF-driven
  failure/repair events (exponential inter-arrival, per-class
  MTBF/MTTR) on the shared DES clock for five fault classes — memory
  brick, rack uplink, inter-rack switch, shard controller, whole pod —
  drawing every sample from seeded named RNG streams so a given seed
  always produces the identical fault schedule;
* :class:`~repro.faults.injector.FaultPlan` scripts reproducible
  outages declaratively (fail *this* pod at t=3s for 2s);
* :class:`~repro.faults.domains.FailureDomain` groups components into
  correlated power/network domains that fail *together* (one PDU trip
  takes a rack's bricks, uplink and shard controller down in one
  event), with pluggable exponential or Weibull/bathtub hazards
  (:class:`~repro.faults.domains.WeibullHazard`) on dedicated RNG
  streams so per-class schedules from earlier seeds still replay;
* :class:`~repro.faults.metrics.AvailabilityMetrics` accounts
  tenant-seconds of unavailability, per-class MTTR, and re-admission
  success — the headline axes of ``experiments/availability.py``.

Every tier reacts through its own primitives (shard takeover over a
consistent hash ring, link park/re-queue, brick evacuation, pod
re-admission from the placer's committed-claim ledger); the injector
only decides *what* dies *when*.
"""

from repro.faults.domains import (
    DomainOutage,
    ExponentialHazard,
    FailureDomain,
    WeibullHazard,
    pod_network_domains,
    rack_power_domains,
)
from repro.faults.injector import (
    DEFAULT_SPECS,
    FaultClass,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ScriptedFault,
)
from repro.faults.metrics import AvailabilityMetrics, FaultEvent

__all__ = [
    "AvailabilityMetrics",
    "DEFAULT_SPECS",
    "DomainOutage",
    "ExponentialHazard",
    "FailureDomain",
    "FaultClass",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ScriptedFault",
    "WeibullHazard",
    "pod_network_domains",
    "rack_power_domains",
]
