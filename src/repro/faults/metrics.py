"""Availability accounting for fault injection.

:class:`AvailabilityMetrics` measures what the ROADMAP names as the
headline of the failure arc: **tenant-seconds of unavailability** vs
injected failure rate, with and without self-healing.  A tenant is
*unavailable* while any active fault cuts it off from its resources —
its pod down, its memory brick dead, its rack's uplink severed — and
recovers either when self-healing re-places it (re-admission,
evacuation, takeover) or when the component repairs, whichever comes
first.  Overlapping faults on one tenant are reference-counted so two
simultaneous outages never double-close one downtime interval.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Simulator


class FaultClass(enum.Enum):
    """The five injectable fault classes, smallest blast radius first."""

    MEMORY_BRICK = "memory_brick"
    RACK_UPLINK = "rack_uplink"
    SWITCH = "switch"
    SHARD = "shard"
    POD = "pod"


@dataclass
class FaultEvent:
    """One injected failure, from injection to repair."""

    klass: FaultClass
    #: ``pod:component`` for pod-internal targets (brick, rack, shard),
    #: the bare pod id for pod and switch faults.
    target: str
    failed_s: float
    repaired_s: Optional[float] = None
    #: Tenants this fault cut off, at injection time.
    impacted_tenants: tuple[str, ...] = ()
    #: Tenants a self-healing reaction recovered before repair.
    healed_tenants: tuple[str, ...] = ()
    #: True when the event came from a :class:`FaultPlan`, not MTBF.
    scripted: bool = False

    @property
    def repair_duration_s(self) -> Optional[float]:
        if self.repaired_s is None:
            return None
        return self.repaired_s - self.failed_s


class AvailabilityMetrics:
    """Tenant downtime, per-class MTTR and re-admission accounting."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: Every injected fault, in injection order.
        self.events: list[FaultEvent] = []
        #: Total tenant-seconds of unavailability (closed intervals).
        self.tenant_seconds_unavailable = 0.0
        #: Tenants successfully re-admitted on another pod.
        self.readmissions = 0
        #: Re-admission attempts no surviving pod could take.
        self.readmission_failures = 0
        #: tenant id -> number of active faults currently cutting it off.
        self._down_count: dict[str, int] = {}
        #: tenant id -> when its current downtime interval opened.
        self._down_since: dict[str, float] = {}

    # -- fault lifecycle ----------------------------------------------------

    def record_fault(self, event: FaultEvent) -> FaultEvent:
        self.events.append(event)
        return event

    def record_repair(self, event: FaultEvent) -> None:
        event.repaired_s = self.sim.now

    # -- tenant downtime ----------------------------------------------------

    @property
    def tenants_down(self) -> list[str]:
        """Tenants currently inside a downtime interval, sorted."""
        return sorted(self._down_since)

    def mark_unavailable(self, tenant_id: str) -> None:
        """A fault cut *tenant_id* off (reference-counted: overlapping
        faults extend the same interval)."""
        self._down_count[tenant_id] = (
            self._down_count.get(tenant_id, 0) + 1)
        self._down_since.setdefault(tenant_id, self.sim.now)

    def mark_available(self, tenant_id: str) -> None:
        """One fault holding *tenant_id* down cleared; the downtime
        interval closes when the last one does."""
        count = self._down_count.get(tenant_id, 0)
        if count <= 0:
            return  # never marked down (or already recovered)
        if count > 1:
            self._down_count[tenant_id] = count - 1
            return
        del self._down_count[tenant_id]
        started = self._down_since.pop(tenant_id)
        self.tenant_seconds_unavailable += self.sim.now - started

    def mark_departed(self, tenant_id: str, pod_id: str = "") -> None:
        """The tenant left the federation: close its interval outright
        (a departed tenant accrues no downtime).  Signature matches the
        federation's depart hook."""
        if tenant_id in self._down_since:
            started = self._down_since.pop(tenant_id)
            self.tenant_seconds_unavailable += self.sim.now - started
        self._down_count.pop(tenant_id, None)

    def finalize(self) -> float:
        """Close every open downtime interval at the current clock;
        returns the total tenant-seconds of unavailability."""
        for tenant_id in list(self._down_since):
            self._down_count[tenant_id] = 1
            self.mark_available(tenant_id)
        return self.tenant_seconds_unavailable

    # -- derived reports ----------------------------------------------------

    def fault_count(self, klass: Optional[FaultClass] = None) -> int:
        if klass is None:
            return len(self.events)
        return sum(1 for e in self.events if e.klass is klass)

    def mttr_s(self, klass: Optional[FaultClass] = None) -> float:
        """Mean observed repair time of (one class of) repaired faults."""
        durations = [e.repair_duration_s for e in self.events
                     if e.repair_duration_s is not None
                     and (klass is None or e.klass is klass)]
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    @property
    def readmission_success_rate(self) -> float:
        """Fraction of re-admission attempts that landed (1.0 when the
        run never needed one)."""
        total = self.readmissions + self.readmission_failures
        return self.readmissions / total if total else 1.0
