"""MTBF-driven fault injection over a federation.

:class:`FaultInjector` is the only component that decides *what dies
when*; every reaction runs through the failed tier's own primitives:

* **memory brick** — the pod's control plane marks the brick's tenants
  degraded and excludes it from placement
  (:meth:`~repro.cluster.control_plane.ControlPlane.
  handle_memory_brick_failure`); self-healing re-places the stranded
  segments on healthy bricks (:meth:`~repro.cluster.control_plane.
  ControlPlane.evacuate_memory_brick_process`);
* **rack uplink** — the rack's bricks leave the placement pool and its
  registered :class:`~repro.datamover.scheduler.LinkScheduler` (if
  any) parks pending transfers; self-healing relocates segments that
  out-of-rack tenants hold on the cut-off rack onto reachable bricks;
* **inter-rack switch** — tenants whose memory sits in a different
  rack than their VM lose their data path; self-healing confines each
  such segment into its compute brick's own rack;
* **shard controller** — the sharded SDM-C rolls back the dead shard's
  in-flight two-phase holds and (with self-healing) the survivors take
  its racks over across a consistent hash ring, Ironic-conductor
  style (:meth:`~repro.orchestration.sharding.ShardedSdmController.
  fail_shard`); without takeover the racks go unmanaged and their
  tenants degrade until repair;
* **whole pod** — the pod's plane pauses and the placer stops routing
  to it (:meth:`~repro.federation.controller.FederationController.
  fail_pod`); self-healing re-admits its tenants elsewhere from the
  placer's committed-claim ledger.

Re-placement copies out of a cut-off component model rack-local
re-materialization (restore from a reachable replica), not a read
through the dead link — the simulation charges the same copy time
either way.

**Determinism.**  Every stochastic draw comes from a named
:class:`~repro.sim.rng.RngRegistry` stream (one per fault class, never
global ``random``), and each cycle draws its inter-arrival delay,
repair duration and target index *before* sleeping — so a given seed
produces the identical fault schedule regardless of how the system
reacts, and adding a fault class never perturbs the others' streams.
Components are the only valid targets; with the injector disabled (or
no fault ever firing) every hook in the reaction paths is an inert
no-op and runs are bit-identical to a fault-free build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Iterable, Mapping, Optional, Sequence,
                    Union)

from repro.errors import FaultError, ReproError
from repro.faults.domains import DomainOutage, FailureDomain, Hazard
from repro.faults.metrics import AvailabilityMetrics, FaultClass, FaultEvent
from repro.sim.engine import ProcessGenerator
from repro.sim.rng import RngRegistry

#: RNG stream name prefix; each class draws from ``faults.<class>``.
STREAM_PREFIX = "faults"

#: Poll cadence (s) of the pod-heal supervisor: how quickly it picks
#: up ledger claims committed by boots that were in flight when the
#: pod died.
POD_HEAL_POLL_S = 0.05


@dataclass(frozen=True)
class FaultSpec:
    """MTBF/MTTR of one fault class (exponential inter-arrival unless a
    :class:`~repro.faults.domains.Hazard` overrides it)."""

    klass: FaultClass
    #: Mean time between failures across the whole target population.
    mtbf_s: float
    #: Mean time to repair one failure.
    mttr_s: float
    #: Optional inter-arrival distribution (e.g. Weibull/bathtub); the
    #: default ``None`` keeps the exact exponential draw sequence of
    #: PR 7, so existing seeds replay bit-identically.
    hazard: Optional[Hazard] = None

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise FaultError(
                f"{self.klass.value}: MTBF must be positive, "
                f"got {self.mtbf_s}")
        if self.mttr_s <= 0:
            raise FaultError(
                f"{self.klass.value}: MTTR must be positive, "
                f"got {self.mttr_s}")


#: Default per-class schedules, scaled to the experiments' second-scale
#: traces.  Blast radius and MTBF rise together (brick failures are the
#: common case, whole-pod outages the rare catastrophic one), and every
#: MTTR sits far above the ~1 s tenant boot: repairing hardware takes
#: orders of magnitude longer than re-placing a tenant, which is the
#: entire economic case for self-healing.
DEFAULT_SPECS: dict[FaultClass, FaultSpec] = {
    FaultClass.MEMORY_BRICK: FaultSpec(FaultClass.MEMORY_BRICK,
                                       mtbf_s=40.0, mttr_s=20.0),
    FaultClass.RACK_UPLINK: FaultSpec(FaultClass.RACK_UPLINK,
                                      mtbf_s=60.0, mttr_s=12.0),
    FaultClass.SWITCH: FaultSpec(FaultClass.SWITCH,
                                 mtbf_s=120.0, mttr_s=8.0),
    FaultClass.SHARD: FaultSpec(FaultClass.SHARD,
                                mtbf_s=80.0, mttr_s=10.0),
    FaultClass.POD: FaultSpec(FaultClass.POD,
                              mtbf_s=200.0, mttr_s=30.0),
}


@dataclass(frozen=True)
class ScriptedFault:
    """One declaratively scheduled outage."""

    at_s: float
    klass: FaultClass
    #: ``pod:component`` for pod-internal targets, pod id otherwise.
    target: str
    duration_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultError(f"fault time must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise FaultError(
                f"outage duration must be positive, got {self.duration_s}")


class FaultPlan:
    """A declarative, reproducible schedule of scripted outages."""

    def __init__(self,
                 faults: Sequence[ScriptedFault] = ()) -> None:
        self._faults: list[ScriptedFault] = list(faults)

    def add(self, at_s: float, klass: Union[FaultClass, str], target: str,
            duration_s: float) -> ScriptedFault:
        """Schedule *target* to fail at *at_s* for *duration_s*."""
        fault = ScriptedFault(at_s=at_s, klass=_coerce_class(klass),
                              target=target, duration_s=duration_s)
        self._faults.append(fault)
        return fault

    def ordered(self) -> list[ScriptedFault]:
        """The schedule in replay order (time, then class, then target
        — total, so replay is deterministic)."""
        return sorted(self._faults,
                      key=lambda f: (f.at_s, f.klass.value, f.target))

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self):
        return iter(self.ordered())


def _coerce_class(klass: Union[FaultClass, str]) -> FaultClass:
    if isinstance(klass, FaultClass):
        return klass
    try:
        return FaultClass(klass)
    except ValueError:
        known = ", ".join(c.value for c in FaultClass)
        raise FaultError(
            f"unknown fault class {klass!r}; known: {known}") from None


class FaultInjector:
    """Schedules failures/repairs on the federation's DES clock."""

    def __init__(self, federation, *,
                 specs: Optional[Mapping[FaultClass, FaultSpec]] = None,
                 classes: Optional[Iterable[Union[FaultClass,
                                                  str]]] = None,
                 seed: int = 2018,
                 rng: Optional[RngRegistry] = None,
                 self_heal: bool = True,
                 plan: Optional[FaultPlan] = None,
                 metrics: Optional[AvailabilityMetrics] = None,
                 domains: Sequence[FailureDomain] = ()) -> None:
        self.federation = federation
        self.sim = federation.sim
        self.specs = dict(DEFAULT_SPECS)
        if specs:
            self.specs.update(specs)
        if classes is None:
            enabled = list(FaultClass)
        else:
            enabled = [_coerce_class(klass) for klass in classes]
        #: Enabled classes, in canonical (value) order.
        self.classes = tuple(sorted(set(enabled),
                                    key=lambda c: c.value))
        self.rng = rng if rng is not None else RngRegistry(seed)
        self.self_heal = self_heal
        self.plan = plan
        self.metrics = (metrics if metrics is not None
                        else AvailabilityMetrics(self.sim))
        #: (class, target) -> the active fault holding it down.
        self._active: dict[tuple[FaultClass, str], FaultEvent] = {}
        #: uplink/switch target -> LinkScheduler to park on failure.
        self._links: dict[str, object] = {}
        #: Correlated failure domains, keyed by name (sorted order is
        #: the install order, keeping schedules deterministic).
        self.domains: dict[str, FailureDomain] = {}
        for domain in domains:
            if domain.name in self.domains:
                raise FaultError(f"duplicate domain {domain.name!r}")
            self.domains[domain.name] = domain
        #: name -> the active outage holding the whole domain down.
        self._active_domains: dict[str, DomainOutage] = {}
        #: Lifetime count of correlated outages actually fired.
        self.domain_outages_fired = 0
        #: Observers called with every recorded FaultEvent — the
        #: maintenance supervisor registers here to fence drains
        #: against faults landing inside the drain scope.
        self.fault_hooks: list[Callable[[FaultEvent], None]] = []
        self._installed = False
        self._stopped = False

    # -- wiring -------------------------------------------------------------

    def register_link(self, target: str, scheduler) -> None:
        """Attach a :class:`~repro.datamover.scheduler.LinkScheduler`
        to an uplink (``pod:rack``) or switch (``pod``) target; faults
        on that target park/re-queue its transfers."""
        self._links[target] = scheduler

    def install(self) -> "FaultInjector":
        """Start the per-class MTBF processes (and the plan replay) on
        the federation's simulator; idempotence is an error."""
        if self._installed:
            raise FaultError("injector is already installed")
        self._installed = True
        self.federation.depart_hooks.append(self.metrics.mark_departed)
        for klass in self.classes:
            self.sim.process(self._mtbf_process(klass))
        for name in sorted(self.domains):
            self.sim.process(self._domain_process(self.domains[name]))
        if self.plan is not None and len(self.plan):
            self.sim.process(self._plan_process())
        return self

    def stop(self) -> None:
        """Stop scheduling new faults after the next wake-up; repairs
        of already-active faults still complete."""
        self._stopped = True

    @property
    def active_faults(self) -> list[FaultEvent]:
        """Currently unrepaired faults, in injection order."""
        return sorted(self._active.values(), key=lambda e: e.failed_s)

    @property
    def quiescent(self) -> bool:
        """True when no injected fault is currently active."""
        return not self._active

    # -- schedules ----------------------------------------------------------

    def _mtbf_process(self, klass: FaultClass) -> ProcessGenerator:
        spec = self.specs[klass]
        stream = self.rng.stream(f"{STREAM_PREFIX}.{klass.value}")
        while True:
            # All three draws happen before the sleep, in fixed order:
            # the schedule depends only on the seed, never on how the
            # system reacted to earlier faults.
            if spec.hazard is not None:
                delay = float(spec.hazard.draw(stream))
            else:
                delay = float(stream.exponential(spec.mtbf_s))
            repair_after = float(stream.exponential(spec.mttr_s))
            pick = float(stream.random())
            yield self.sim.timeout(delay)
            if self._stopped:
                return
            targets = self._targets(klass)
            if not targets:
                continue
            index = min(int(pick * len(targets)), len(targets) - 1)
            self.inject(klass, targets[index],
                        repair_after_s=repair_after)

    def _plan_process(self) -> ProcessGenerator:
        for fault in self.plan.ordered():
            if fault.at_s > self.sim.now:
                yield self.sim.timeout(fault.at_s - self.sim.now)
            if self._stopped:
                return
            self.inject(fault.klass, fault.target,
                        repair_after_s=fault.duration_s, scripted=True)

    def _domain_process(self, domain: FailureDomain) -> ProcessGenerator:
        """MTBF loop for one correlated domain.

        Draws come from the domain's own ``faults.domain.<name>``
        stream, so layering domains onto a run never perturbs the
        per-class schedules — old seeds still replay.
        """
        stream = self.rng.stream(
            f"{STREAM_PREFIX}.domain.{domain.name}")
        hazard = domain.effective_hazard
        while True:
            delay = float(hazard.draw(stream))
            repair_after = float(stream.exponential(domain.mttr_s))
            yield self.sim.timeout(delay)
            if self._stopped:
                return
            self.fire_domain(domain, repair_after_s=repair_after)

    # -- target enumeration --------------------------------------------------

    def _live_pods(self) -> list:
        return [self.federation.pods[pod_id]
                for pod_id in sorted(self.federation.pods)
                if self.federation.pods[pod_id].alive]

    def _pod_racks(self, pod) -> list[str]:
        registry = pod.system.sdm.registry
        return sorted({e.rack_id for e in registry.compute_entries}
                      | {e.rack_id for e in registry.memory_entries})

    def _targets(self, klass: FaultClass) -> list[str]:
        """Valid targets of *klass* right now, sorted (deterministic)."""
        pods = self._live_pods()
        if klass is FaultClass.POD:
            # Never take the last live pod: re-admission (and the
            # placer) need at least one survivor.
            return ([p.pod_id for p in pods] if len(pods) >= 2 else [])
        if klass is FaultClass.SWITCH:
            return [p.pod_id for p in pods
                    if (klass, p.pod_id) not in self._active]
        targets: list[str] = []
        for pod in pods:
            registry = pod.system.sdm.registry
            if klass is FaultClass.MEMORY_BRICK:
                # Bricks in cleaning/maintenance are powered-down and
                # serviced — not valid MTBF targets.  Draining bricks
                # still hold live segments, so they stay in scope.
                targets.extend(
                    f"{pod.pod_id}:{e.brick.brick_id}"
                    for e in registry.memory_entries
                    if not e.failed and e.lifecycle.accepting)
            elif klass is FaultClass.RACK_UPLINK:
                targets.extend(
                    f"{pod.pod_id}:{rack}"
                    for rack in self._pod_racks(pod)
                    if (klass, f"{pod.pod_id}:{rack}") not in self._active)
            elif klass is FaultClass.SHARD:
                sdm = pod.system.sdm
                if not hasattr(sdm, "fail_shard"):
                    continue
                live = sdm.live_shards()
                if self.self_heal and len(live) < 2:
                    continue  # takeover needs a survivor
                targets.extend(f"{pod.pod_id}:{shard}" for shard in live)
        return sorted(targets)

    # -- injection ----------------------------------------------------------

    def inject(self, klass: Union[FaultClass, str], target: str, *,
               repair_after_s: float,
               scripted: bool = False) -> Optional[FaultEvent]:
        """Fail *target* now; schedule its repair *repair_after_s*
        later.

        Returns the recorded :class:`~repro.faults.metrics.FaultEvent`,
        or ``None`` when the target is already failed or a guard
        declines the injection (e.g. the last live pod).  Unknown
        targets raise :class:`~repro.errors.FaultError`.
        """
        klass = _coerce_class(klass)
        if repair_after_s <= 0:
            raise FaultError(
                f"repair delay must be positive, got {repair_after_s}")
        key = (klass, target)
        if key in self._active:
            return None
        impacted = self._FAIL[klass](self, target)
        if impacted is None:
            return None
        event = self.metrics.record_fault(FaultEvent(
            klass=klass, target=target, failed_s=self.sim.now,
            impacted_tenants=tuple(impacted), scripted=scripted))
        self._active[key] = event
        for tenant_id in impacted:
            self.metrics.mark_unavailable(tenant_id)
        for hook in list(self.fault_hooks):
            hook(event)
        heal = self._HEAL.get(klass)
        if self.self_heal and heal is not None:
            self.sim.process(heal(self, event))
        self.sim.process(self._repair_later(event, repair_after_s))
        return event

    # -- correlated domains ---------------------------------------------------

    @property
    def active_domains(self) -> list[DomainOutage]:
        """Currently unrepaired domain outages, in injection order."""
        return sorted(self._active_domains.values(),
                      key=lambda o: (o.failed_s, o.domain.name))

    def fire_domain(self, domain: Union[FailureDomain, str], *,
                    repair_after_s: float,
                    scripted: bool = False) -> Optional[DomainOutage]:
        """Fail every member of *domain* now; all repair together.

        Members already down independently are left to their own
        repair schedule — but their repair stays *invisible* until the
        domain clears (see :meth:`_repair_later`): a brick inside a
        dead power domain cannot come back before its power does.
        Returns ``None`` when the domain is already down.
        """
        if isinstance(domain, str):
            try:
                domain = self.domains[domain]
            except KeyError:
                raise FaultError(
                    f"unknown domain {domain!r}; known: "
                    f"{sorted(self.domains)}") from None
        if repair_after_s <= 0:
            raise FaultError(
                f"repair delay must be positive, got {repair_after_s}")
        if domain.name in self._active_domains:
            return None
        outage = DomainOutage(
            domain=domain, failed_s=self.sim.now,
            until_s=self.sim.now + repair_after_s)
        # Record the outage *before* injecting members so fault hooks
        # observing a member event already see the domain as active.
        self._active_domains[domain.name] = outage
        self.domain_outages_fired += 1
        injected = []
        for klass, target in domain.members:
            if self.inject(klass, target, repair_after_s=repair_after_s,
                           scripted=scripted) is not None:
                injected.append((klass, target))
        outage.injected = tuple(injected)
        self.sim.process(self._clear_domain_later(outage, repair_after_s))
        return outage

    def _clear_domain_later(self, outage: DomainOutage,
                            after_s: float) -> ProcessGenerator:
        yield self.sim.timeout(after_s)
        if self._active_domains.get(outage.domain.name) is outage:
            del self._active_domains[outage.domain.name]

    def _holding_domains(self, klass: FaultClass,
                         target: str) -> list[DomainOutage]:
        """Active domain outages still pinning ``(klass, target)``."""
        return [outage for outage in self._active_domains.values()
                if outage.holds(klass, target, self.sim.now)]

    def _repair_later(self, event: FaultEvent,
                      after_s: float) -> ProcessGenerator:
        yield self.sim.timeout(after_s)
        # A repaired component inside a still-failed domain stays down:
        # the brick may be healthy, but its power/network domain is
        # not.  Wait for every enclosing outage to clear (re-checking,
        # because a domain can re-fire while we wait).
        while True:
            holding = self._holding_domains(event.klass, event.target)
            if not holding:
                break
            yield self.sim.timeout(
                max(o.until_s for o in holding) - self.sim.now)
        self._REPAIR[event.klass](self, event)
        # Whatever self-healing did not recover comes back with the
        # component; mark_available is a no-op for tenants already up.
        for tenant_id in event.impacted_tenants:
            self.metrics.mark_available(tenant_id)
        self.metrics.record_repair(event)
        del self._active[(event.klass, event.target)]

    def _heal_recovered(self, event: FaultEvent,
                        recovered: Iterable[str]) -> None:
        """Book tenants a self-healing reaction brought back."""
        healed = sorted(recovered)
        for tenant_id in healed:
            self.metrics.mark_available(tenant_id)
        event.healed_tenants = tuple(healed)

    def _pod(self, pod_id: str):
        pod = self.federation.pods.get(pod_id)
        if pod is None:
            raise FaultError(f"unknown pod {pod_id!r}")
        return pod

    def _split(self, target: str) -> tuple:
        pod_id, sep, component = target.partition(":")
        if not sep or not component:
            raise FaultError(
                f"target {target!r} must be 'pod:component'")
        return self._pod(pod_id), component

    # -- whole pod -----------------------------------------------------------

    def _fail_pod(self, pod_id: str) -> Optional[list[str]]:
        pod = self._pod(pod_id)
        if not pod.alive:
            return None
        if sum(p.alive for p in self.federation.pods.values()) < 2:
            return None  # never sever the last live pod
        return self.federation.fail_pod(pod_id)

    def _heal_pod_process(self, event: FaultEvent) -> ProcessGenerator:
        """Re-admit the dead pod's tenants from the committed ledger.

        A supervisor polls the ledger until the pod repairs, spawning
        one re-admission process per tenant as its claim appears — in
        parallel, so each tenant's downtime is its own boot latency,
        not its position in a serial queue.  The polling matters: a
        boot that was mid-service when the pod paused still completes
        and commits its claim *after* the failure, and a one-shot
        snapshot would strand exactly those tenants until repair.  A
        tenant whose claim is gone (it departed through the paused
        plane's in-flight service) or whose pod already repaired needs
        no re-admission and counts as neither success nor failure.
        """
        fed = self.federation
        pod = self._pod(event.target)
        recovered: list[str] = []
        seen: set[str] = set()
        ever_failed: set[str] = set()

        def readmit_one(tenant_id: str) -> ProcessGenerator:
            claim = fed.placer.ledger_claim(tenant_id)
            if (claim is None or claim.pod_id != event.target
                    or pod.alive):
                return
            new_pod = yield from fed.readmit_tenant_process(tenant_id)
            if new_pod is None:
                # Surviving capacity is momentarily exhausted; a later
                # poll retries (departures free capacity continuously).
                ever_failed.add(tenant_id)
                seen.discard(tenant_id)
            else:
                self.metrics.readmissions += 1
                recovered.append(tenant_id)
                self.metrics.mark_available(tenant_id)

        waits = []
        while not pod.alive:
            for claim in fed.placer.ledger_for_pod(event.target):
                if claim.tenant_id in seen:
                    continue
                seen.add(claim.tenant_id)
                waits.append(self.sim.process(
                    readmit_one(claim.tenant_id)))
            yield self.sim.timeout(POD_HEAL_POLL_S)
        if waits:
            yield self.sim.all_of(waits)
        # Terminal accounting: a tenant that failed at least once and
        # never came back rode out the outage parked on the dead pod.
        self.metrics.readmission_failures += sum(
            1 for tenant_id in ever_failed
            if tenant_id not in recovered)
        event.healed_tenants = tuple(sorted(recovered))

    def _repair_pod(self, event: FaultEvent) -> None:
        self.federation.restore_pod(event.target)

    # -- memory brick --------------------------------------------------------

    def _fail_memory_brick(self, target: str) -> Optional[list[str]]:
        pod, brick_id = self._split(target)
        if not pod.alive:
            return None
        try:
            entry = pod.system.sdm.registry.memory(brick_id)
        except ReproError:
            raise FaultError(
                f"unknown memory brick {brick_id!r} in "
                f"{pod.pod_id}") from None
        if entry.failed:
            return None
        return pod.plane.handle_memory_brick_failure(brick_id)

    def _heal_memory_brick_process(self,
                                   event: FaultEvent) -> ProcessGenerator:
        pod, brick_id = self._split(event.target)
        yield from pod.plane.evacuate_memory_brick_process(brick_id)
        self._heal_recovered(event, (
            t for t in event.impacted_tenants
            if t not in pod.plane.degraded))

    def _repair_memory_brick(self, event: FaultEvent) -> None:
        pod, brick_id = self._split(event.target)
        pod.plane.handle_memory_brick_repair(brick_id)

    # -- rack uplink ---------------------------------------------------------

    def _rack_tenants(self, pod, rack: str) -> set[str]:
        """Tenants whose VM is hosted on one of *rack*'s compute
        bricks."""
        registry = pod.system.sdm.registry
        hosted = set()
        for tenant_id in self.federation.tenants_on(pod.pod_id):
            try:
                brick_id = pod.system.hosting(tenant_id).brick_id
            except ReproError:
                continue  # mid-move
            if registry.rack_of(brick_id) == rack:
                hosted.add(tenant_id)
        return hosted

    def _rack_memory_tenants(self, pod, rack: str) -> set[str]:
        """Tenants holding a segment on one of *rack*'s memory bricks."""
        sdm = pod.system.sdm
        tenants = set()
        for entry in sdm.registry.memory_entries:
            if entry.rack_id != rack:
                continue
            tenants.update(
                s.vm_id
                for s in sdm.impacted_by_memory_brick(entry.brick.brick_id)
                if s.vm_id)
        return tenants

    def _fail_rack_uplink(self, target: str) -> Optional[list[str]]:
        pod, rack = self._split(target)
        if not pod.alive:
            return None
        registry = pod.system.sdm.registry
        if rack not in self._pod_racks(pod):
            raise FaultError(
                f"unknown rack {rack!r} in {pod.pod_id}")
        for entry in registry.compute_entries:
            if entry.rack_id == rack:
                registry.mark_compute_failed(entry.brick.brick_id)
        for entry in registry.memory_entries:
            if entry.rack_id == rack:
                # Direct flag, not mark_memory_failed: the brick is
                # healthy and keeps its content — only unreachable.
                entry.failed = True
        impacted = (self._rack_tenants(pod, rack)
                    | self._rack_memory_tenants(pod, rack))
        pod.plane.degraded.update(impacted)
        link = self._links.get(target)
        if link is not None and link.link_up:
            link.fail_link()
        return sorted(impacted)

    def _heal_rack_uplink_process(self,
                                  event: FaultEvent) -> ProcessGenerator:
        """Relocate reachable tenants' segments off the cut-off rack.

        Only tenants hosted *outside* the rack can be helped — their
        VMs still run, so re-materializing their rack-stranded
        segments on reachable bricks restores their data path.
        Tenants hosted inside the rack wait for the uplink repair.
        """
        pod, rack = self._split(event.target)
        sdm = pod.system.sdm
        registry = sdm.registry
        hosted_inside = self._rack_tenants(pod, rack)
        for entry in sorted(registry.memory_entries,
                            key=lambda e: e.brick.brick_id):
            if entry.rack_id != rack:
                continue
            for segment in list(
                    sdm.impacted_by_memory_brick(entry.brick.brick_id)):
                if registry.rack_of(segment.compute_brick_id) == rack:
                    continue  # its VM is cut off anyway
                candidates = [c for c in registry.memory_availability()
                              if c.rack_id != rack]
                target_brick = sdm.policy.select_memory_brick(
                    candidates, segment.size,
                    origin_rack_id=registry.rack_of(
                        segment.compute_brick_id) or None)
                if target_brick is None:
                    continue  # stays stranded until repair
                try:
                    yield from sdm.relocate_segment_process(
                        pod.plane.ctx, segment.segment_id, target_brick)
                except ReproError:
                    continue
        still_stranded = self._rack_memory_tenants(pod, rack)
        recovered = [t for t in event.impacted_tenants
                     if t not in hosted_inside
                     and t not in still_stranded]
        pod.plane.degraded.difference_update(recovered)
        self._heal_recovered(event, recovered)

    def _repair_rack_uplink(self, event: FaultEvent) -> None:
        pod, rack = self._split(event.target)
        registry = pod.system.sdm.registry
        for entry in registry.compute_entries:
            if entry.rack_id == rack:
                registry.restore_compute(entry.brick.brick_id)
        for entry in registry.memory_entries:
            if entry.rack_id == rack:
                entry.failed = False
        pod.plane.degraded.difference_update(event.impacted_tenants)
        link = self._links.get(event.target)
        if link is not None and not link.link_up:
            link.repair_link()

    # -- inter-rack switch ---------------------------------------------------

    def _cross_rack_segments(self, pod) -> list:
        """Segments whose memory sits in a different rack than their
        compute brick — the blast radius of the pod switch."""
        sdm = pod.system.sdm
        registry = sdm.registry
        segments = []
        for entry in sorted(registry.memory_entries,
                            key=lambda e: e.brick.brick_id):
            for segment in sdm.impacted_by_memory_brick(
                    entry.brick.brick_id):
                if (registry.rack_of(segment.memory_brick_id)
                        != registry.rack_of(segment.compute_brick_id)):
                    segments.append(segment)
        return segments

    def _fail_switch(self, pod_id: str) -> Optional[list[str]]:
        pod = self._pod(pod_id)
        if not pod.alive:
            return None
        impacted = sorted({s.vm_id
                           for s in self._cross_rack_segments(pod)
                           if s.vm_id})
        pod.plane.degraded.update(impacted)
        link = self._links.get(pod_id)
        if link is not None and link.link_up:
            link.fail_link()
        return impacted

    def _heal_switch_process(self, event: FaultEvent) -> ProcessGenerator:
        """Confine cross-rack segments into their compute brick's rack."""
        pod = self._pod(event.target)
        sdm = pod.system.sdm
        registry = sdm.registry
        for segment in self._cross_rack_segments(pod):
            home_rack = registry.rack_of(segment.compute_brick_id)
            candidates = [c for c in registry.memory_availability()
                          if c.rack_id == home_rack
                          and c.brick_id != segment.memory_brick_id]
            target_brick = sdm.policy.select_memory_brick(
                candidates, segment.size,
                origin_rack_id=home_rack or None)
            if target_brick is None:
                continue
            try:
                yield from sdm.relocate_segment_process(
                    pod.plane.ctx, segment.segment_id, target_brick)
            except ReproError:
                continue
        still_cut = {s.vm_id for s in self._cross_rack_segments(pod)
                     if s.vm_id}
        recovered = [t for t in event.impacted_tenants
                     if t not in still_cut]
        pod.plane.degraded.difference_update(recovered)
        self._heal_recovered(event, recovered)

    def _repair_switch(self, event: FaultEvent) -> None:
        pod = self._pod(event.target)
        pod.plane.degraded.difference_update(event.impacted_tenants)
        link = self._links.get(event.target)
        if link is not None and not link.link_up:
            link.repair_link()

    # -- shard controller ----------------------------------------------------

    def _fail_shard(self, target: str) -> Optional[list[str]]:
        pod, shard = self._split(target)
        if not pod.alive:
            return None
        sdm = pod.system.sdm
        if not hasattr(sdm, "fail_shard"):
            raise FaultError(
                f"{pod.pod_id}'s controller is not sharded; "
                f"no shard {shard!r} to fail")
        if shard not in sdm.shard_names():
            raise FaultError(
                f"unknown shard {shard!r} in {pod.pod_id}")
        if shard not in sdm.live_shards():
            return None
        takeover = self.self_heal
        if takeover and len(sdm.live_shards()) < 2:
            return None
        racks = sdm.shard_members().get(shard, [])
        sdm.fail_shard(shard, takeover=takeover)
        if takeover:
            # The hash-ring takeover is immediate: the survivors serve
            # the dead shard's racks from the same event, so nobody is
            # ever cut off — the self-healing contrast in its purest
            # form.
            return []
        impacted = set()
        for rack in racks:
            impacted |= self._rack_tenants(pod, rack)
        pod.plane.degraded.update(impacted)
        return sorted(impacted)

    def _repair_shard(self, event: FaultEvent) -> None:
        pod, shard = self._split(event.target)
        pod.system.sdm.restore_shard(shard)
        pod.plane.degraded.difference_update(event.impacted_tenants)

    # -- dispatch tables -----------------------------------------------------

    _FAIL = {
        FaultClass.POD: _fail_pod,
        FaultClass.MEMORY_BRICK: _fail_memory_brick,
        FaultClass.RACK_UPLINK: _fail_rack_uplink,
        FaultClass.SWITCH: _fail_switch,
        FaultClass.SHARD: _fail_shard,
    }
    _HEAL = {
        FaultClass.POD: _heal_pod_process,
        FaultClass.MEMORY_BRICK: _heal_memory_brick_process,
        FaultClass.RACK_UPLINK: _heal_rack_uplink_process,
        FaultClass.SWITCH: _heal_switch_process,
        # SHARD heals synchronously inside _fail_shard (ring takeover).
    }
    _REPAIR = {
        FaultClass.POD: _repair_pod,
        FaultClass.MEMORY_BRICK: _repair_memory_brick,
        FaultClass.RACK_UPLINK: _repair_rack_uplink,
        FaultClass.SWITCH: _repair_switch,
        FaultClass.SHARD: _repair_shard,
    }
