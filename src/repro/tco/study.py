"""The end-to-end TCO study driver.

For each Table I configuration the study:

1. sizes a workload to a target fraction of the binding aggregate
   resource (the paper schedules "a given workload" against both
   datacenter types; the fraction keeps both systems comparably loaded),
2. generates the VM demands,
3. FCFS-schedules the *same* demand list on a conventional and on a
   dReDBox datacenter of equal aggregate resources (Fig. 11),
4. evaluates the power-off percentages (Fig. 12) and the power draw
   normalized to the conventional datacenter (Fig. 13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.tco.datacenter import (
    ConventionalDatacenter,
    DisaggregatedDatacenter,
)
from repro.tco.energy import PowerModel
from repro.tco.scheduler import FcfsScheduler
from repro.tco.workloads import TABLE_I, WorkloadConfig, generate_vms


@dataclass(frozen=True)
class TcoResult:
    """Study outcome for one workload configuration."""

    config_name: str
    vm_count: int
    conventional_admitted: int
    conventional_rejected: int
    disaggregated_admitted: int
    disaggregated_rejected: int
    #: Fig. 12 quantities (fractions in [0, 1]).
    conventional_poweroff: float
    compute_brick_poweroff: float
    memory_brick_poweroff: float
    disaggregated_poweroff: float
    #: Fig. 13 quantities.
    conventional_power_w: float
    disaggregated_power_w: float
    normalized_power: float

    @property
    def energy_savings(self) -> float:
        """Fractional energy saving of dReDBox vs conventional."""
        return 1.0 - self.normalized_power

    @property
    def best_brick_poweroff(self) -> float:
        """The paper's headline: 'up to 88% of dMEMBRICKs or
        dCOMPUBRICKs can be powered off'."""
        return max(self.compute_brick_poweroff, self.memory_brick_poweroff)


class TcoStudy:
    """Configurable runner for the §VI simulation."""

    def __init__(self, node_count: int = 64, cores_per_node: int = 32,
                 ram_per_node_gib: int = 32,
                 demand_fraction: float = 0.85,
                 power_model: Optional[PowerModel] = None,
                 seed: int = 2018) -> None:
        """Create a study.

        Args:
            node_count: Conventional nodes; the dReDBox datacenter gets
                the same number of compute bricks and of memory bricks,
                for equal aggregates (Fig. 11).
            cores_per_node: Cores per node and per compute brick.
            ram_per_node_gib: RAM per node and per memory brick.
            demand_fraction: Fraction of the binding aggregate resource
                the generated workload requests in expectation.
            power_model: Unit power figures (defaults applied when None).
            seed: Base seed; each configuration derives its own stream.
        """
        if not 0 < demand_fraction <= 1.2:
            raise ConfigurationError(
                f"demand fraction should be in (0, 1.2], got {demand_fraction}")
        self.node_count = node_count
        self.cores_per_node = cores_per_node
        self.ram_per_node_gib = ram_per_node_gib
        self.demand_fraction = demand_fraction
        self.power_model = power_model or PowerModel()
        self.seed = seed
        self.scheduler = FcfsScheduler()

    # -- sizing ---------------------------------------------------------------

    def workload_size(self, config: WorkloadConfig) -> int:
        """VMs such that expected demand hits the target fraction of the
        binding (scarcer) aggregate resource."""
        total_cores = self.node_count * self.cores_per_node
        total_ram = self.node_count * self.ram_per_node_gib
        by_cores = total_cores / config.mean_vcpus
        by_ram = total_ram / config.mean_ram_gib
        return max(1, math.floor(self.demand_fraction * min(by_cores, by_ram)))

    # -- running -----------------------------------------------------------------

    def run_config(self, config: WorkloadConfig,
                   vm_count: Optional[int] = None) -> TcoResult:
        """Run the study for one workload configuration."""
        if vm_count is None:
            vm_count = self.workload_size(config)
        rng = np.random.default_rng(
            (self.seed, sum(ord(c) for c in config.name)))
        workload = generate_vms(config, vm_count, rng)

        conventional = ConventionalDatacenter(
            self.node_count, self.cores_per_node, self.ram_per_node_gib)
        disaggregated = DisaggregatedDatacenter(
            self.node_count, self.cores_per_node,
            self.node_count, self.ram_per_node_gib)

        conv_outcome = self.scheduler.schedule(conventional, workload)
        disagg_outcome = self.scheduler.schedule(disaggregated, workload)

        model = self.power_model
        return TcoResult(
            config_name=config.name,
            vm_count=vm_count,
            conventional_admitted=conv_outcome.admitted_count,
            conventional_rejected=conv_outcome.rejected_count,
            disaggregated_admitted=disagg_outcome.admitted_count,
            disaggregated_rejected=disagg_outcome.rejected_count,
            conventional_poweroff=conventional.poweroff_fraction(),
            compute_brick_poweroff=disaggregated.compute_poweroff_fraction(),
            memory_brick_poweroff=disaggregated.memory_poweroff_fraction(),
            disaggregated_poweroff=disaggregated.poweroff_fraction(),
            conventional_power_w=model.conventional_power_w(conventional),
            disaggregated_power_w=model.disaggregated_power_w(disaggregated),
            normalized_power=model.normalized_power(
                disaggregated, conventional),
        )

    def run_all(self, configs: Optional[Sequence[WorkloadConfig]] = None
                ) -> list[TcoResult]:
        """Run every (or the given) Table I configuration."""
        if configs is None:
            configs = list(TABLE_I.values())
        return [self.run_config(config) for config in configs]
