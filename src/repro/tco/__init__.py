"""The TCO value-proposition study (§VI).

"The TCO of the two types of datacenters is evaluated through
simulation.  The simulation uses a First Come First Served (FCFS) policy
to schedule a given workload of virtual machines (VMs) with different
requirements to each of the two datacenter types.  Then it evaluates the
number of unutilized individually powered units that can be powered off."

* :mod:`repro.tco.workloads` — the Table I workload mixes.
* :mod:`repro.tco.datacenter` — conventional vs dReDBox datacenter
  models with equal aggregate resources (Fig. 11).
* :mod:`repro.tco.scheduler` — the FCFS scheduler.
* :mod:`repro.tco.energy` — unit power models and energy accounting.
* :mod:`repro.tco.study` — the end-to-end study producing the Fig. 12
  (power-off percentages) and Fig. 13 (normalized power) numbers.
"""

from repro.tco.datacenter import (
    ConventionalDatacenter,
    DisaggregatedDatacenter,
    VmPlacement,
)
from repro.tco.energy import PowerModel
from repro.tco.meter import EnergyMeter
from repro.tco.refresh import RefreshCostModel, RefreshOutcome, RefreshStudy
from repro.tco.scheduler import FcfsScheduler, ScheduleOutcome
from repro.tco.study import TcoResult, TcoStudy
from repro.tco.workloads import (
    TABLE_I,
    VmDemand,
    WorkloadConfig,
    generate_vms,
)

__all__ = [
    "ConventionalDatacenter",
    "EnergyMeter",
    "RefreshCostModel",
    "RefreshOutcome",
    "RefreshStudy",
    "DisaggregatedDatacenter",
    "FcfsScheduler",
    "PowerModel",
    "ScheduleOutcome",
    "TABLE_I",
    "TcoResult",
    "TcoStudy",
    "VmDemand",
    "VmPlacement",
    "WorkloadConfig",
    "generate_vms",
]
