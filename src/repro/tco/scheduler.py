"""The FCFS scheduler of the TCO study.

"The simulation uses a First Come First Served (FCFS) policy to schedule
a given workload of virtual machines" (§VI): VMs are offered to the
datacenter strictly in arrival order; a VM that no unit can host is
rejected (there are no departures in the study, so nothing ever frees
up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.tco.datacenter import VmPlacement
from repro.tco.workloads import VmDemand


class PlacesVms(Protocol):
    """Any datacenter model the scheduler can drive."""

    def place(self, vm: VmDemand) -> "VmPlacement | None": ...


@dataclass
class ScheduleOutcome:
    """Result of offering a workload to one datacenter."""

    placed: list[VmPlacement] = field(default_factory=list)
    rejected: list[VmDemand] = field(default_factory=list)

    @property
    def admitted_count(self) -> int:
        return len(self.placed)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)

    @property
    def admission_rate(self) -> float:
        total = self.admitted_count + self.rejected_count
        return self.admitted_count / total if total else 0.0


class FcfsScheduler:
    """Strict arrival-order admission."""

    def schedule(self, datacenter: PlacesVms,
                 workload: Sequence[VmDemand]) -> ScheduleOutcome:
        """Offer every VM in *workload* order; collect placements and
        rejections."""
        outcome = ScheduleOutcome()
        for vm in workload:
            placement = datacenter.place(vm)
            if placement is None:
                outcome.rejected.append(vm)
            else:
                outcome.placed.append(placement)
        return outcome
