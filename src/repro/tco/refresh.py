"""Technology-refresh TCO extension (the paper's stated future work).

Section VI closes: "the modularity and interchangeability of the
dBRICKs plays a significant role in lowering the price of the
procurement, as well in delivering technology refreshes at the component
level instead of the server level.  This study does not consider how
these aspects ... affect the TCO; the latter is targeted by our on-going
work."

This module builds that follow-on study: over a planning horizon,
compute and memory technologies refresh on *different* cadences (CPUs
faster than DRAM).  A conventional datacenter must replace whole servers
at the faster cadence — discarding perfectly good DRAM — while a
disaggregated one replaces only the brick type that aged out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RefreshCostModel:
    """Unit procurement costs and refresh cadences.

    Defaults reflect typical enterprise figures: the compute complex of
    a node is ~70% of its cost and refreshes every 3 years; DRAM is ~30%
    and stays useful for 6.
    """

    #: Full server node price (compute + memory on one board).
    node_cost: float = 10_000.0
    #: Fraction of the node cost attributable to the compute complex.
    compute_cost_fraction: float = 0.7
    #: Compute refresh cadence, years.
    compute_refresh_years: float = 3.0
    #: Memory refresh cadence, years.
    memory_refresh_years: float = 6.0
    #: Modularity premium on brick hardware (enclosures, connectors,
    #: optical interfaces) relative to the equivalent server share.
    brick_cost_premium: float = 1.10

    def __post_init__(self) -> None:
        if self.node_cost <= 0:
            raise ConfigurationError("node cost must be positive")
        if not 0 < self.compute_cost_fraction < 1:
            raise ConfigurationError("compute fraction must be in (0, 1)")
        if (self.compute_refresh_years <= 0
                or self.memory_refresh_years <= 0):
            raise ConfigurationError("refresh cadences must be positive")
        if self.brick_cost_premium < 1.0:
            raise ConfigurationError("brick premium must be >= 1.0")

    # -- unit prices ------------------------------------------------------------

    @property
    def compute_brick_cost(self) -> float:
        """One dCOMPUBRICK, carrying the modularity premium."""
        return (self.node_cost * self.compute_cost_fraction
                * self.brick_cost_premium)

    @property
    def memory_brick_cost(self) -> float:
        """One dMEMBRICK, carrying the modularity premium."""
        return (self.node_cost * (1.0 - self.compute_cost_fraction)
                * self.brick_cost_premium)


@dataclass(frozen=True)
class RefreshOutcome:
    """Procurement totals over the studied horizon."""

    horizon_years: float
    conventional_total: float
    disaggregated_total: float
    conventional_refreshes: int
    compute_brick_refreshes: int
    memory_brick_refreshes: int

    @property
    def savings_fraction(self) -> float:
        """Fraction of conventional procurement the bricks save."""
        if self.conventional_total == 0:
            return 0.0
        return 1.0 - self.disaggregated_total / self.conventional_total


def _refresh_count(horizon_years: float, cadence_years: float) -> int:
    """Purchases within the horizon: initial buy + refreshes.

    A refresh lands at each whole multiple of the cadence strictly
    inside the horizon (the fleet bought at year 0 counts as the first
    purchase).
    """
    return 1 + math.ceil(horizon_years / cadence_years) - 1


class RefreshStudy:
    """Procurement comparison over a refresh horizon."""

    def __init__(self, unit_count: int = 64,
                 model: RefreshCostModel | None = None) -> None:
        """Create the study.

        Args:
            unit_count: Nodes in the conventional DC; the disaggregated
                DC gets the same number of compute and of memory bricks
                (equal aggregate resources, Fig. 11).
            model: Cost/cadence parameters.
        """
        if unit_count < 1:
            raise ConfigurationError("unit count must be >= 1")
        self.unit_count = unit_count
        self.model = model or RefreshCostModel()

    def run(self, horizon_years: float = 12.0) -> RefreshOutcome:
        """Total procurement spend over *horizon_years*."""
        if horizon_years <= 0:
            raise ConfigurationError("horizon must be positive")
        model = self.model

        # Conventional: whole servers turn over at the *fastest* cadence
        # of any component on the board.
        driving_cadence = min(model.compute_refresh_years,
                              model.memory_refresh_years)
        conventional_buys = _refresh_count(horizon_years, driving_cadence)
        conventional_total = (conventional_buys * self.unit_count
                              * model.node_cost)

        # Disaggregated: each brick class refreshes on its own clock.
        compute_buys = _refresh_count(horizon_years,
                                      model.compute_refresh_years)
        memory_buys = _refresh_count(horizon_years,
                                     model.memory_refresh_years)
        disaggregated_total = self.unit_count * (
            compute_buys * model.compute_brick_cost
            + memory_buys * model.memory_brick_cost)

        return RefreshOutcome(
            horizon_years=horizon_years,
            conventional_total=conventional_total,
            disaggregated_total=disaggregated_total,
            conventional_refreshes=conventional_buys,
            compute_brick_refreshes=compute_buys,
            memory_brick_refreshes=memory_buys,
        )

    def breakeven_premium(self, horizon_years: float = 12.0) -> float:
        """The brick cost premium at which the two strategies cost the
        same — how much modularity overhead disaggregation can absorb."""
        base = RefreshStudy(
            self.unit_count,
            RefreshCostModel(
                node_cost=self.model.node_cost,
                compute_cost_fraction=self.model.compute_cost_fraction,
                compute_refresh_years=self.model.compute_refresh_years,
                memory_refresh_years=self.model.memory_refresh_years,
                brick_cost_premium=1.0,
            ))
        outcome = base.run(horizon_years)
        if outcome.disaggregated_total == 0:
            return float("inf")
        return outcome.conventional_total / outcome.disaggregated_total
