"""The two datacenter models of the TCO study (Fig. 11).

Both have the *same aggregate* compute and memory resources:

* **Conventional** — server nodes with cores and RAM coupled on one
  mainboard.  A VM must fit entirely inside one node: "when all CPUs are
  utilized, it will not be possible to allocate more memory and vice
  versa" (§VI).
* **dReDBox** — separate compute-brick and memory-brick pools.  A VM
  draws cores from a single dCOMPUBRICK (vCPUs cannot span coherence
  domains) but RAM from *any* memory bricks, split freely.

Both place with packing (use the fullest unit that fits first), which is
what lets unused units be powered off — the paper's stated scheduling
behaviour ("scheduling the VMs on dBRICKs which are already running a
VM").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, SchedulingError
from repro.tco.workloads import VmDemand


@dataclass
class VmPlacement:
    """Where one VM landed.

    ``compute_unit`` is a node index (conventional) or a compute-brick
    index (dReDBox); ``memory_shares`` maps memory-unit index to the GiB
    taken there (conventional placements always have a single share on
    the same node).
    """

    vm: VmDemand
    compute_unit: int
    memory_shares: dict[int, int] = field(default_factory=dict)


class _Unit:
    """One individually powered unit with a single scalar resource."""

    __slots__ = ("capacity", "used")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.used = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def is_idle(self) -> bool:
        return self.used == 0

    def take(self, amount: int) -> None:
        if amount > self.free:
            raise SchedulingError(
                f"cannot take {amount} from unit with {self.free} free")
        self.used += amount


class ConventionalDatacenter:
    """Coupled nodes: a VM needs cores *and* RAM on the same node."""

    def __init__(self, node_count: int = 64, cores_per_node: int = 32,
                 ram_per_node_gib: int = 32) -> None:
        if node_count < 1 or cores_per_node < 1 or ram_per_node_gib < 1:
            raise ConfigurationError("datacenter dimensions must be >= 1")
        self.node_count = node_count
        self.cores_per_node = cores_per_node
        self.ram_per_node_gib = ram_per_node_gib
        self._cores = [_Unit(cores_per_node) for _ in range(node_count)]
        self._ram = [_Unit(ram_per_node_gib) for _ in range(node_count)]
        self.placements: list[VmPlacement] = []

    # -- aggregate view -----------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.node_count * self.cores_per_node

    @property
    def total_ram_gib(self) -> int:
        return self.node_count * self.ram_per_node_gib

    # -- placement -----------------------------------------------------------------

    def place(self, vm: VmDemand) -> Optional[VmPlacement]:
        """Place *vm* on the fullest node that fits both demands.

        Returns the placement, or ``None`` when no node fits (the FCFS
        scheduler counts that as a rejection).
        """
        candidates = [
            index for index in range(self.node_count)
            if (self._cores[index].free >= vm.vcpus
                and self._ram[index].free >= vm.ram_gib)
        ]
        if not candidates:
            return None
        # Packing: fullest (fewest free cores, then least free RAM) first.
        candidates.sort(key=lambda i: (self._cores[i].free, self._ram[i].free, i))
        chosen = candidates[0]
        self._cores[chosen].take(vm.vcpus)
        self._ram[chosen].take(vm.ram_gib)
        placement = VmPlacement(vm, chosen, {chosen: vm.ram_gib})
        self.placements.append(placement)
        return placement

    # -- power-off accounting ----------------------------------------------------------

    def idle_nodes(self) -> list[int]:
        """Nodes hosting nothing (candidates for power-off)."""
        return [index for index in range(self.node_count)
                if self._cores[index].is_idle and self._ram[index].is_idle]

    def poweroff_fraction(self) -> float:
        """Fraction of nodes that can be powered off."""
        return len(self.idle_nodes()) / self.node_count

    def used_cores(self) -> int:
        return sum(unit.used for unit in self._cores)

    def used_ram_gib(self) -> int:
        return sum(unit.used for unit in self._ram)


class DisaggregatedDatacenter:
    """Separate pools: cores from one brick, RAM from anywhere."""

    def __init__(self, compute_bricks: int = 64, cores_per_brick: int = 32,
                 memory_bricks: int = 64, ram_per_brick_gib: int = 32) -> None:
        if min(compute_bricks, cores_per_brick,
               memory_bricks, ram_per_brick_gib) < 1:
            raise ConfigurationError("datacenter dimensions must be >= 1")
        self.compute_brick_count = compute_bricks
        self.cores_per_brick = cores_per_brick
        self.memory_brick_count = memory_bricks
        self.ram_per_brick_gib = ram_per_brick_gib
        self._cores = [_Unit(cores_per_brick) for _ in range(compute_bricks)]
        self._ram = [_Unit(ram_per_brick_gib) for _ in range(memory_bricks)]
        self.placements: list[VmPlacement] = []

    # -- aggregate view -----------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.compute_brick_count * self.cores_per_brick

    @property
    def total_ram_gib(self) -> int:
        return self.memory_brick_count * self.ram_per_brick_gib

    # -- placement -----------------------------------------------------------------

    def place(self, vm: VmDemand) -> Optional[VmPlacement]:
        """Place *vm*: cores packed onto one brick, RAM split freely.

        Memory is carved from the fullest non-idle bricks first, waking
        idle bricks only when the powered pool is exhausted — the
        power-conscious selection of §IV.C applied to the TCO study.
        """
        compute_candidates = [
            index for index in range(self.compute_brick_count)
            if self._cores[index].free >= vm.vcpus
        ]
        if not compute_candidates:
            return None
        free_ram_total = sum(unit.free for unit in self._ram)
        if free_ram_total < vm.ram_gib:
            return None

        compute_candidates.sort(key=lambda i: (self._cores[i].free, i))
        compute_chosen = compute_candidates[0]

        # RAM: fullest-but-not-full bricks first, idle bricks last.
        ram_order = sorted(
            (index for index in range(self.memory_brick_count)
             if self._ram[index].free > 0),
            key=lambda i: (self._ram[i].is_idle, self._ram[i].free, i),
        )
        shares: dict[int, int] = {}
        remaining = vm.ram_gib
        for index in ram_order:
            if remaining == 0:
                break
            take = min(remaining, self._ram[index].free)
            shares[index] = take
            remaining -= take
        if remaining:
            raise SchedulingError(
                "internal error: free RAM accounting is inconsistent")

        self._cores[compute_chosen].take(vm.vcpus)
        for index, share in shares.items():
            self._ram[index].take(share)
        placement = VmPlacement(vm, compute_chosen, shares)
        self.placements.append(placement)
        return placement

    # -- power-off accounting ----------------------------------------------------------

    def idle_compute_bricks(self) -> list[int]:
        return [i for i in range(self.compute_brick_count)
                if self._cores[i].is_idle]

    def idle_memory_bricks(self) -> list[int]:
        return [i for i in range(self.memory_brick_count)
                if self._ram[i].is_idle]

    def compute_poweroff_fraction(self) -> float:
        """Fraction of dCOMPUBRICKs that can be powered off."""
        return len(self.idle_compute_bricks()) / self.compute_brick_count

    def memory_poweroff_fraction(self) -> float:
        """Fraction of dMEMBRICKs that can be powered off."""
        return len(self.idle_memory_bricks()) / self.memory_brick_count

    def poweroff_fraction(self) -> float:
        """Fraction of all bricks that can be powered off."""
        idle = len(self.idle_compute_bricks()) + len(self.idle_memory_bricks())
        return idle / (self.compute_brick_count + self.memory_brick_count)

    def used_cores(self) -> int:
        return sum(unit.used for unit in self._cores)

    def used_ram_gib(self) -> int:
        return sum(unit.used for unit in self._ram)
