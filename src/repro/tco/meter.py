"""Time-series energy accounting.

The §VI study compares instantaneous draw; scenarios that change state
over time (the pilot applications, the elastic manager) need energy —
the integral of draw.  :class:`EnergyMeter` does piecewise-constant
integration: sample the power whenever it changes, read the integral at
the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerSample:
    """One recorded operating point."""

    time_s: float
    power_w: float


class EnergyMeter:
    """Piecewise-constant energy integrator."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        """Create the meter.

        Args:
            clock: Time source (e.g. a simulator's ``now``); when omitted,
                sample times must be passed explicitly.
        """
        self._clock = clock
        self._samples: list[PowerSample] = []

    def sample(self, power_w: float,
               time_s: Optional[float] = None) -> None:
        """Record that the draw is *power_w* from now on.

        Samples must arrive in non-decreasing time order.
        """
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        if time_s is None:
            if self._clock is None:
                raise ConfigurationError(
                    "no clock configured; pass time_s explicitly")
            time_s = self._clock()
        if self._samples and time_s < self._samples[-1].time_s:
            raise ConfigurationError(
                f"samples must be time-ordered; got {time_s} after "
                f"{self._samples[-1].time_s}")
        self._samples.append(PowerSample(time_s, power_w))

    @property
    def samples(self) -> list[PowerSample]:
        return list(self._samples)

    def energy_j(self, until_s: Optional[float] = None) -> float:
        """Energy integrated from the first sample to *until_s*.

        Defaults to the clock's current time (or the last sample's time
        without a clock).
        """
        if not self._samples:
            return 0.0
        if until_s is None:
            if self._clock is not None:
                until_s = self._clock()
            else:
                until_s = self._samples[-1].time_s
        if until_s < self._samples[-1].time_s:
            raise ConfigurationError(
                "cannot integrate backwards from the last sample")
        total = 0.0
        for current, following in zip(self._samples, self._samples[1:]):
            total += current.power_w * (following.time_s - current.time_s)
        total += self._samples[-1].power_w * (until_s - self._samples[-1].time_s)
        return total

    def energy_kwh(self, until_s: Optional[float] = None) -> float:
        """Energy in kilowatt-hours."""
        return self.energy_j(until_s) / 3.6e6

    def mean_power_w(self, until_s: Optional[float] = None) -> float:
        """Average draw over the metered interval."""
        if not self._samples:
            return 0.0
        if until_s is None:
            if self._clock is not None:
                until_s = self._clock()
            else:
                until_s = self._samples[-1].time_s
        duration = until_s - self._samples[0].time_s
        if duration <= 0:
            return self._samples[0].power_w
        return self.energy_j(until_s) / duration

    def reset(self) -> None:
        """Drop all samples."""
        self._samples.clear()
