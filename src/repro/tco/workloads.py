"""Table I: the VM workload mixes of the TCO study.

    Configuration   vCPUs          RAM
    Random          1-32 cores     1-32 GB
    High RAM        1-8 cores      24-32 GB
    High CPU        24-32 cores    1-8 GB
    Half Half       16 cores       16 GB
    More RAM        1-6 cores      17-32 GB
    More CPU        17-32 cores    1-16 GB

Each configuration draws vCPU and RAM demands independently and
uniformly from its integer ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VmDemand:
    """One VM's resource requirement in the TCO study."""

    vm_id: str
    vcpus: int
    ram_gib: int

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigurationError(f"{self.vm_id}: vcpus must be >= 1")
        if self.ram_gib < 1:
            raise ConfigurationError(f"{self.vm_id}: ram must be >= 1 GiB")


@dataclass(frozen=True)
class WorkloadConfig:
    """One Table I row: uniform integer ranges for vCPUs and RAM."""

    name: str
    vcpu_min: int
    vcpu_max: int
    ram_min_gib: int
    ram_max_gib: int

    def __post_init__(self) -> None:
        if not 1 <= self.vcpu_min <= self.vcpu_max:
            raise ConfigurationError(f"{self.name}: bad vCPU range")
        if not 1 <= self.ram_min_gib <= self.ram_max_gib:
            raise ConfigurationError(f"{self.name}: bad RAM range")

    @property
    def mean_vcpus(self) -> float:
        """Expected vCPU demand of one VM."""
        return (self.vcpu_min + self.vcpu_max) / 2.0

    @property
    def mean_ram_gib(self) -> float:
        """Expected RAM demand of one VM, GiB."""
        return (self.ram_min_gib + self.ram_max_gib) / 2.0

    @property
    def vcpu_label(self) -> str:
        if self.vcpu_min == self.vcpu_max:
            return f"{self.vcpu_min} cores"
        return f"{self.vcpu_min}-{self.vcpu_max} cores"

    @property
    def ram_label(self) -> str:
        if self.ram_min_gib == self.ram_max_gib:
            return f"{self.ram_min_gib} GB"
        return f"{self.ram_min_gib}-{self.ram_max_gib} GB"

    def sample(self, rng: np.random.Generator, vm_id: str) -> VmDemand:
        """Draw one VM demand."""
        return VmDemand(
            vm_id=vm_id,
            vcpus=int(rng.integers(self.vcpu_min, self.vcpu_max + 1)),
            ram_gib=int(rng.integers(self.ram_min_gib, self.ram_max_gib + 1)),
        )


#: The six Table I configurations, in paper order.
TABLE_I: dict[str, WorkloadConfig] = {
    "Random": WorkloadConfig("Random", 1, 32, 1, 32),
    "High RAM": WorkloadConfig("High RAM", 1, 8, 24, 32),
    "High CPU": WorkloadConfig("High CPU", 24, 32, 1, 8),
    "Half Half": WorkloadConfig("Half Half", 16, 16, 16, 16),
    "More RAM": WorkloadConfig("More RAM", 1, 6, 17, 32),
    "More CPU": WorkloadConfig("More CPU", 17, 32, 1, 16),
}


def config_by_name(name: str) -> WorkloadConfig:
    """Look up a Table I configuration by its paper name."""
    try:
        return TABLE_I[name]
    except KeyError:
        known = ", ".join(TABLE_I)
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {known}") from None


def generate_vms(config: WorkloadConfig, count: int,
                 rng: np.random.Generator) -> list[VmDemand]:
    """Draw *count* VM demands from *config*."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    return [config.sample(rng, f"{config.name.lower().replace(' ', '-')}-{i}")
            for i in range(count)]


def table_rows() -> list[tuple[str, str, str]]:
    """Table I rendered as ``(Configuration, vCPUs, RAM)`` rows."""
    return [(cfg.name, cfg.vcpu_label, cfg.ram_label)
            for cfg in TABLE_I.values()]
