"""Unit power models and energy accounting for the TCO study.

Figure 13 estimates power consumption "normalized to a conventional
datacenter".  The model keeps the two datacenters energy-comparable when
everything is on (Fig. 11: same aggregate resources) and lets savings
come exclusively from powering off unutilized units — the effect §VI
isolates:

* a conventional node's draw is split into a compute part and a memory
  part; a dReDBox compute brick draws the compute part, a memory brick
  the memory part (per equal amount of resource);
* the optical circuit switch adds its per-port draw (~100 mW/port) to
  the disaggregated side only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tco.datacenter import (
    ConventionalDatacenter,
    DisaggregatedDatacenter,
)


@dataclass(frozen=True)
class PowerModel:
    """Per-unit electrical draw, watts.

    Defaults model a dense 2-socket node around 300 W, split 220 W for
    the compute complex and 80 W for its DRAM.  Powered-off units draw
    zero; powered-on units are charged full draw (the study powers off
    whole idle units and does not model DVFS within used ones).
    """

    node_active_w: float = 300.0
    compute_brick_active_w: float = 220.0
    memory_brick_active_w: float = 80.0
    optical_port_w: float = 0.1
    #: Optical ports lit per powered brick (each brick keeps its fibre
    #: into the rack switch live).
    ports_per_brick: int = 2

    def __post_init__(self) -> None:
        if min(self.node_active_w, self.compute_brick_active_w,
               self.memory_brick_active_w) <= 0:
            raise ConfigurationError("unit powers must be positive")
        if self.optical_port_w < 0 or self.ports_per_brick < 0:
            raise ConfigurationError("optical parameters must be >= 0")

    # -- conventional ---------------------------------------------------------

    def conventional_power_w(self, dc: ConventionalDatacenter) -> float:
        """Draw with idle nodes powered off."""
        powered_nodes = dc.node_count - len(dc.idle_nodes())
        return powered_nodes * self.node_active_w

    def conventional_power_all_on_w(self, dc: ConventionalDatacenter) -> float:
        """Draw if nothing were powered off (the Fig. 13 denominator)."""
        return dc.node_count * self.node_active_w

    # -- disaggregated ----------------------------------------------------------

    def disaggregated_power_w(self, dc: DisaggregatedDatacenter) -> float:
        """Draw with idle bricks powered off, switch ports included."""
        compute_on = dc.compute_brick_count - len(dc.idle_compute_bricks())
        memory_on = dc.memory_brick_count - len(dc.idle_memory_bricks())
        bricks_on = compute_on + memory_on
        return (compute_on * self.compute_brick_active_w
                + memory_on * self.memory_brick_active_w
                + bricks_on * self.ports_per_brick * self.optical_port_w)

    def disaggregated_power_all_on_w(self,
                                     dc: DisaggregatedDatacenter) -> float:
        """Draw if every brick stayed on."""
        bricks = dc.compute_brick_count + dc.memory_brick_count
        return (dc.compute_brick_count * self.compute_brick_active_w
                + dc.memory_brick_count * self.memory_brick_active_w
                + bricks * self.ports_per_brick * self.optical_port_w)

    # -- the Fig. 13 quantity ------------------------------------------------------

    def normalized_power(self, disaggregated: DisaggregatedDatacenter,
                         conventional: ConventionalDatacenter) -> float:
        """dReDBox draw as a fraction of the conventional datacenter's
        draw (both with their idle units powered off)."""
        conv = self.conventional_power_w(conventional)
        if conv == 0:
            raise ConfigurationError(
                "conventional datacenter draws nothing; nothing to "
                "normalize against")
        return self.disaggregated_power_w(disaggregated) / conv

    def energy_kwh(self, power_w: float, hours: float) -> float:
        """Energy in kWh at constant *power_w* for *hours*."""
        if hours < 0:
            raise ConfigurationError(f"hours must be >= 0, got {hours}")
        return power_w * hours / 1000.0
