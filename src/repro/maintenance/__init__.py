"""Planned downtime as a first-class operation.

:mod:`repro.faults` made *unplanned* failures an input; this package
covers the dominant real-world availability consumer — **planned**
maintenance — without ever taking admission down:

* every brick carries an Ironic-style lifecycle
  (:class:`~repro.orchestration.lifecycle.BrickLifecycle`:
  ``enrolled → available → active → draining → cleaning →
  maintenance``), legal-checked and enforced by both the registry's
  availability snapshots and the
  :class:`~repro.memory.allocator.SegmentAllocator`'s accepting gate;
* :class:`~repro.maintenance.supervisor.MaintenanceSupervisor` drains
  racks and whole pods by delta-planned, *verified* live migration
  (hotweights' verified-swap discipline), commit-or-rollback, fenced
  against concurrent fault injection.
"""

from repro.maintenance.supervisor import (
    CLEANING_S,
    DrainReport,
    MaintenanceSupervisor,
)
from repro.orchestration.lifecycle import (
    BrickLifecycle,
    BrickState,
    LEGAL_TRANSITIONS,
)

__all__ = [
    "BrickLifecycle",
    "BrickState",
    "CLEANING_S",
    "DrainReport",
    "LEGAL_TRANSITIONS",
    "MaintenanceSupervisor",
]
