"""Rolling-maintenance supervisor: zero-downtime rack and pod drains.

The operational counterpart of :mod:`repro.faults`: instead of
reacting to unplanned failures, the supervisor takes capacity out of
service *on purpose* — one rack at a time — while the cluster keeps
admitting and serving tenants.  The discipline is hotweights'
verified swap (SNIPPETS.md §2), applied to memory segments:

1. **Delta plan** — only the segments that actually live on the
   draining rack's memory bricks move; everything else stays put.
2. **Copy** — each segment relocates through the controller's own
   two-phase :meth:`~repro.orchestration.sdm_controller.SdmController.
   relocate_segment_process` (atomic: a mid-copy failure leaves the
   segment intact on its source).
3. **Verify** — after every copy the supervisor re-reads the
   controller's record and the target allocator's span table and
   charges a read-back pass before counting the move committed.
4. **Commit or roll back** — only when every segment of the rack has
   verified (and every hosted VM has migrated off) do the rack's
   bricks transition ``draining → cleaning → maintenance``; any abort
   relocates the already-moved segments back and returns the bricks
   to ``active``.

Drains are **fenced** against the fault injector: the supervisor
registers a fault hook, and any fault landing inside the drain scope
(the draining rack, its pod's switch, or the whole pod) flips the
drain's abort flag — the in-flight move completes or rolls back
atomically, then the drain unwinds instead of stranding capacity on a
half-evacuated rack.

A **pod drain** (:meth:`MaintenanceSupervisor.drain_pod_process`)
rolls rack-by-rack: the pod leaves the admission pool (``pod.draining``
— the placer spills new tenants to its peers, so admission
availability never dips), each rack's hosted tenants live-migrate to
other pods, stray segments owned by later racks' tenants relocate
within the pod, and the rack retires.  Racks already retired when an
abort hits stay retired (they are clean — nothing is stranded); the
current rack rolls back and the pod re-enters the admission pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MaintenanceError, ReproError
from repro.faults.metrics import FaultClass, FaultEvent
from repro.orchestration.lifecycle import BrickState
from repro.orchestration.sdm_controller import SEGMENT_COPY_RATE_BPS
from repro.sim.engine import ProcessGenerator
from repro.units import transfer_time

#: Simulated duration of the cleaning step (secure-erase + firmware
#: checks) a brick pays between draining and maintenance.
CLEANING_S = 0.5


@dataclass
class DrainReport:
    """What one drain did, committed or not."""

    scope: str
    pod_id: str
    committed: bool = False
    aborted: bool = False
    abort_reason: str = ""
    segments_moved: int = 0
    bytes_moved: int = 0
    tenants_migrated: int = 0
    #: Segments relocated *back* during an abort unwind.
    rollback_moves: int = 0
    verify_failures: int = 0
    racks_retired: list[str] = field(default_factory=list)
    started_s: float = 0.0
    finished_s: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.finished_s - self.started_s


@dataclass
class _ActiveDrain:
    """Fencing record of one in-flight drain."""

    pod_id: str
    #: Racks currently being evacuated ("" entries never match).
    racks: set[str]
    abort: bool = False
    abort_reason: str = ""

    def fence(self, reason: str) -> None:
        if not self.abort:
            self.abort = True
            self.abort_reason = reason


class MaintenanceSupervisor:
    """Runs rolling drains over a federation's pods and racks."""

    def __init__(self, federation, *,
                 injector=None,
                 copy_rate_bps: float = SEGMENT_COPY_RATE_BPS,
                 verify_rate_bps: Optional[float] = None) -> None:
        self.federation = federation
        self.sim = federation.sim
        self.copy_rate_bps = copy_rate_bps
        #: Read-back verification bandwidth; defaults to the copy rate
        #: (every byte is read once more before commit).
        self.verify_rate_bps = (verify_rate_bps if verify_rate_bps
                                else copy_rate_bps)
        self._drains: list[_ActiveDrain] = []
        self.reports: list[DrainReport] = []
        if injector is not None:
            self.install_fence(injector)

    # -- fencing -------------------------------------------------------------

    def install_fence(self, injector) -> None:
        """Register the drain fence on *injector*'s fault hooks."""
        injector.fault_hooks.append(self._on_fault)

    def _on_fault(self, event: FaultEvent) -> None:
        """Abort any drain whose scope the fault lands in."""
        for drain in self._drains:
            if self._covers(drain, event):
                drain.fence(
                    f"fault {event.klass.value}:{event.target} at "
                    f"t={event.failed_s:.3f}")

    def _covers(self, drain: _ActiveDrain, event: FaultEvent) -> bool:
        if event.klass in (FaultClass.POD, FaultClass.SWITCH):
            return event.target == drain.pod_id
        pod_id, _, component = event.target.partition(":")
        if pod_id != drain.pod_id:
            return False
        registry = self.federation.pods[pod_id].system.sdm.registry
        if event.klass is FaultClass.MEMORY_BRICK:
            try:
                return registry.rack_of(component) in drain.racks
            except ReproError:
                return False
        if event.klass is FaultClass.RACK_UPLINK:
            return component in drain.racks
        if event.klass is FaultClass.SHARD:
            sdm = self.federation.pods[pod_id].system.sdm
            if not hasattr(sdm, "shard_members"):
                return False
            members = sdm.shard_members().get(component, [])
            return bool(drain.racks.intersection(members))
        return False

    @property
    def draining(self) -> bool:
        return bool(self._drains)

    # -- shared machinery ----------------------------------------------------

    def _pod(self, pod_id: str):
        pod = self.federation.pods.get(pod_id)
        if pod is None:
            raise MaintenanceError(f"unknown pod {pod_id!r}")
        if not pod.alive:
            raise MaintenanceError(
                f"cannot drain failed pod {pod_id!r}")
        if any(d.pod_id == pod_id for d in self._drains):
            raise MaintenanceError(
                f"a drain is already running on {pod_id!r}")
        return pod

    @staticmethod
    def _rack_bricks(registry, rack: str) -> tuple[list, list]:
        """(memory entries, compute entries) of *rack*, sorted."""
        memory = sorted((e for e in registry.memory_entries
                         if e.rack_id == rack),
                        key=lambda e: e.brick.brick_id)
        compute = sorted((e for e in registry.compute_entries
                          if e.rack_id == rack),
                         key=lambda e: e.brick.brick_id)
        return memory, compute

    def _enter_draining(self, registry, rack: str) -> None:
        memory, compute = self._rack_bricks(registry, rack)
        for entry in memory + compute:
            if entry.failed:
                raise MaintenanceError(
                    f"cannot drain {rack}: brick "
                    f"{entry.brick.brick_id} is failed")
        for entry in memory:
            registry.transition_memory(entry.brick.brick_id,
                                       BrickState.DRAINING)
        for entry in compute:
            registry.transition_compute(entry.brick.brick_id,
                                        BrickState.DRAINING)

    def _revert_draining(self, registry, rack: str) -> None:
        """Abort path: return the rack's bricks to active."""
        memory, compute = self._rack_bricks(registry, rack)
        for entry in memory:
            if entry.lifecycle.state is BrickState.DRAINING:
                registry.transition_memory(entry.brick.brick_id,
                                           BrickState.ACTIVE)
        for entry in compute:
            if entry.lifecycle.state is BrickState.DRAINING:
                registry.transition_compute(entry.brick.brick_id,
                                            BrickState.ACTIVE)

    def _retire_rack(self, registry, rack: str) -> ProcessGenerator:
        """Commit path: draining -> cleaning -> maintenance."""
        memory, compute = self._rack_bricks(registry, rack)
        for entry in memory:
            registry.transition_memory(entry.brick.brick_id,
                                       BrickState.CLEANING)
        for entry in compute:
            registry.transition_compute(entry.brick.brick_id,
                                        BrickState.CLEANING)
        yield self.sim.timeout(CLEANING_S)
        for entry in memory:
            registry.transition_memory(entry.brick.brick_id,
                                       BrickState.MAINTENANCE)
        for entry in compute:
            registry.transition_compute(entry.brick.brick_id,
                                        BrickState.MAINTENANCE)

    def _relocation_target(self, sdm, registry, segment,
                           rack: str) -> Optional[str]:
        """Pick a healthy, active brick outside *rack* for *segment*.

        ``memory_availability`` already filters to lifecycle-placeable
        bricks, so draining/retired bricks never re-attract moves.
        """
        candidates = [c for c in registry.memory_availability()
                      if c.rack_id != rack]
        return sdm.policy.select_memory_brick(
            candidates, segment.size,
            origin_rack_id=registry.rack_of(
                segment.compute_brick_id) or None)

    def _verified_move(self, pod, segment_id: str, target_brick: str,
                       report: DrainReport) -> ProcessGenerator:
        """Relocate one segment and verify the copy (read-back).

        Returns ``(ok, source_brick)`` — the source brick id is what an
        abort unwind needs to send the segment home.
        """
        sdm = pod.system.sdm
        record = sdm.segment_record(segment_id)
        source_brick = record.segment.memory_brick_id
        size = record.segment.size
        yield from sdm.relocate_segment_process(
            pod.plane.ctx, segment_id, target_brick,
            copy_rate_bps=self.copy_rate_bps)
        # Verify: the controller record must point at the target and
        # the target allocator must carry a live span of exactly the
        # segment's size at its offset.  The read-back pass is charged
        # at verify_rate_bps — a swap only counts after verification.
        yield self.sim.timeout(transfer_time(size, self.verify_rate_bps))
        moved = sdm.segment_record(segment_id)
        target_entry = pod.system.sdm.registry.memory(target_brick)
        span_ok = any(
            span.base == moved.segment.offset and span.size == size
            for span in target_entry.allocator.allocated_spans())
        if moved.segment.memory_brick_id != target_brick or not span_ok:
            report.verify_failures += 1
            return False, source_brick
        report.segments_moved += 1
        report.bytes_moved += size
        return True, source_brick

    def _unwind_moves(self, pod, moves: list[tuple[str, str]],
                      report: DrainReport) -> ProcessGenerator:
        """Send already-moved segments back to their source bricks.

        Best-effort: a segment whose move-back fails simply stays on
        its (healthy, active) target — capacity is conserved either
        way; nothing is stranded on the draining rack.
        """
        sdm = pod.system.sdm
        for segment_id, source_brick in reversed(moves):
            try:
                record = sdm.segment_record(segment_id)
            except ReproError:
                continue  # departed mid-abort; nothing to unwind
            if record.segment.memory_brick_id == source_brick:
                continue
            try:
                yield from sdm.relocate_segment_process(
                    pod.plane.ctx, segment_id, source_brick,
                    copy_rate_bps=self.copy_rate_bps)
                report.rollback_moves += 1
            except ReproError:
                continue

    def _hosted_on_rack(self, pod, rack: str) -> list[str]:
        """Tenants whose VM runs on one of *rack*'s compute bricks."""
        registry = pod.system.sdm.registry
        hosted = []
        for tenant_id in self.federation.tenants_on(pod.pod_id):
            try:
                brick_id = pod.system.hosting(tenant_id).brick_id
            except ReproError:
                continue  # mid-move
            if registry.rack_of(brick_id) == rack:
                hosted.append(tenant_id)
        return hosted

    # -- rack drain ----------------------------------------------------------

    def drain_rack_process(self, pod_id: str,
                           rack: str) -> ProcessGenerator:
        """DES process: evacuate one rack inside its pod.

        Segments on the rack's memory bricks relocate (verified) to
        active bricks elsewhere in the pod; VMs on its compute bricks
        live-migrate to other racks through the pod's own control
        plane.  Commit retires the rack to ``maintenance``; any abort
        (fault in scope, no capacity, verify failure) relocates moved
        segments back and returns the rack to ``active``.  Returns the
        :class:`DrainReport`.
        """
        pod = self._pod(pod_id)
        registry = pod.system.sdm.registry
        if rack not in {e.rack_id for e in registry.memory_entries}:
            raise MaintenanceError(
                f"unknown rack {rack!r} in {pod_id}")
        report = DrainReport(scope=f"{pod_id}/{rack}", pod_id=pod_id,
                             started_s=self.sim.now)
        drain = _ActiveDrain(pod_id=pod_id, racks={rack})
        self._drains.append(drain)
        self._enter_draining(registry, rack)
        moves: list[tuple[str, str]] = []
        try:
            ok = yield from self._evacuate_rack_segments(
                pod, rack, drain, report, moves)
            if ok:
                ok = yield from self._migrate_rack_tenants_intra(
                    pod, rack, drain, report)
            if ok and not drain.abort:
                yield from self._retire_rack(registry, rack)
                report.racks_retired.append(rack)
                report.committed = True
            else:
                yield from self._unwind_moves(pod, moves, report)
                self._revert_draining(registry, rack)
                report.aborted = True
                report.abort_reason = (drain.abort_reason
                                       or report.abort_reason
                                       or "evacuation failed")
        finally:
            self._drains.remove(drain)
            report.finished_s = self.sim.now
            self.reports.append(report)
        return report

    def _evacuate_rack_segments(self, pod, rack: str, drain: _ActiveDrain,
                                report: DrainReport,
                                moves: list) -> ProcessGenerator:
        """Delta plan + verified copy of every segment on *rack*."""
        sdm = pod.system.sdm
        registry = pod.system.sdm.registry
        memory, _ = self._rack_bricks(registry, rack)
        plan = []
        for entry in memory:
            plan.extend(sorted(sdm.segments_on(entry.brick.brick_id),
                               key=lambda s: s.segment_id))
        for segment in plan:
            if drain.abort:
                return False
            try:
                record = sdm.segment_record(segment.segment_id)
            except ReproError:
                continue  # departed since planning
            if registry.rack_of(record.segment.memory_brick_id) != rack:
                continue  # already elsewhere (raced a defrag/heal)
            target = self._relocation_target(sdm, registry,
                                             record.segment, rack)
            if target is None:
                report.abort_reason = (
                    f"no active brick outside {rack} fits "
                    f"{record.segment.segment_id}")
                return False
            try:
                ok, source = yield from self._verified_move(
                    pod, segment.segment_id, target, report)
            except ReproError as exc:
                report.abort_reason = (
                    f"relocation of {segment.segment_id} failed: {exc}")
                return False
            if not ok:
                report.abort_reason = (
                    f"verify failed for {segment.segment_id}")
                return False
            moves.append((segment.segment_id, source))
        return True

    def _migrate_rack_tenants_intra(self, pod, rack: str,
                                    drain: _ActiveDrain,
                                    report: DrainReport
                                    ) -> ProcessGenerator:
        """Live-migrate VMs off *rack* within the pod.

        The plane resolves each destination at serve time from
        ``compute_availability()``, which no longer lists the draining
        rack — so targets are always other racks.
        """
        for tenant_id in self._hosted_on_rack(pod, rack):
            if drain.abort:
                return False
            request = pod.plane.submit("migrate", tenant_id)
            yield request.done
            if not request.record.ok:
                report.abort_reason = (
                    f"intra-pod migration of {tenant_id} failed: "
                    f"{request.record.note}")
                return False
            report.tenants_migrated += 1
        return True

    # -- pod drain -----------------------------------------------------------

    def drain_pod_process(self, pod_id: str) -> ProcessGenerator:
        """DES process: rolling drain of a whole pod, rack by rack.

        The pod leaves the admission pool first (``pod.draining`` —
        the placer spills newcomers to peers, keeping admission
        availability intact), then each rack in canonical order: its
        hosted tenants live-migrate to other pods (two-phase, with the
        migrator's own rollback), stray segments owned by tenants on
        later racks relocate within the pod, and the rack retires.
        On abort the current rack rolls back, already-retired racks
        stay retired (they hold nothing), and the pod re-enters the
        admission pool.  Returns the :class:`DrainReport`.
        """
        pod = self._pod(pod_id)
        fed = self.federation
        if not any(fed.placer.pod_accepting(other)
                   for other in fed.pods if other != pod_id):
            raise MaintenanceError(
                f"cannot drain {pod_id!r}: no other pod is accepting "
                f"tenants")
        registry = pod.system.sdm.registry
        racks = sorted({e.rack_id for e in registry.memory_entries}
                       | {e.rack_id for e in registry.compute_entries})
        report = DrainReport(scope=pod_id, pod_id=pod_id,
                             started_s=self.sim.now)
        drain = _ActiveDrain(pod_id=pod_id, racks=set())
        self._drains.append(drain)
        pod.draining = True
        try:
            for rack in racks:
                drain.racks = {rack}
                try:
                    # A fault may have felled a rack brick since the
                    # drain started; that aborts the drain, it doesn't
                    # crash it.  Nothing to unwind: the failed-brick
                    # check runs before any transition is applied.
                    self._enter_draining(registry, rack)
                except MaintenanceError as exc:
                    report.aborted = True
                    report.abort_reason = drain.abort_reason or str(exc)
                    pod.draining = False
                    return report
                moves: list[tuple[str, str]] = []
                ok = yield from self._migrate_rack_tenants_inter(
                    pod, rack, drain, report)
                if ok:
                    ok = yield from self._evacuate_rack_segments(
                        pod, rack, drain, report, moves)
                if not ok or drain.abort:
                    yield from self._unwind_moves(pod, moves, report)
                    self._revert_draining(registry, rack)
                    report.aborted = True
                    report.abort_reason = (drain.abort_reason
                                           or report.abort_reason
                                           or "evacuation failed")
                    pod.draining = False
                    return report
                yield from self._retire_rack(registry, rack)
                report.racks_retired.append(rack)
            report.committed = True
            # The pod stays out of the admission pool: every brick is
            # in maintenance.  restore_pod_process brings it back.
            return report
        finally:
            self._drains.remove(drain)
            report.finished_s = self.sim.now
            self.reports.append(report)

    def _migrate_rack_tenants_inter(self, pod, rack: str,
                                    drain: _ActiveDrain,
                                    report: DrainReport
                                    ) -> ProcessGenerator:
        """Live-migrate *rack*'s tenants to other pods (two-phase)."""
        fed = self.federation
        for tenant_id in self._hosted_on_rack(pod, rack):
            if drain.abort:
                return False
            if fed._tenant_pod.get(tenant_id) != pod.pod_id:
                continue  # departed while earlier migrations ran
            claim = fed.placer.ledger_claim(tenant_id)
            ram = (claim.ram_bytes if claim is not None
                   else fed.tenant_footprint(tenant_id))
            vcpus = claim.vcpus if claim is not None else 1
            target = fed.placer.place_for_readmission(
                tenant_id, ram, vcpus)
            if target is None or target == pod.pod_id:
                report.abort_reason = (
                    f"no pod can take {tenant_id} "
                    f"({ram} bytes, {vcpus} vcpus)")
                return False
            try:
                outcome = yield from fed.migrate_tenant_process(
                    tenant_id, target)
            except ReproError as exc:
                if fed._tenant_pod.get(tenant_id) is None:
                    continue  # departed mid-move; nothing to drain
                report.abort_reason = (
                    f"migration of {tenant_id} to {target} failed: "
                    f"{exc}")
                return False
            if not outcome.committed:
                if fed._tenant_pod.get(tenant_id) is None:
                    continue
                report.abort_reason = (
                    f"migration of {tenant_id} to {target} failed: "
                    f"{outcome.note}")
                return False
            report.tenants_migrated += 1
            report.bytes_moved += outcome.bytes_copied
        return True

    # -- return to service ---------------------------------------------------

    def restore_pod_process(self, pod_id: str) -> ProcessGenerator:
        """Return a fully-drained pod's bricks to service.

        Walks every ``maintenance`` brick back ``available → active``
        and re-opens the pod to the placer.  Bricks in other states
        are left alone (idempotent after partial drains).
        """
        pod = self.federation.pods.get(pod_id)
        if pod is None:
            raise MaintenanceError(f"unknown pod {pod_id!r}")
        registry = pod.system.sdm.registry
        for entry in sorted(registry.memory_entries,
                            key=lambda e: e.brick.brick_id):
            if entry.lifecycle.state is BrickState.MAINTENANCE:
                registry.transition_memory(entry.brick.brick_id,
                                           BrickState.AVAILABLE)
                registry.transition_memory(entry.brick.brick_id,
                                           BrickState.ACTIVE)
        for entry in sorted(registry.compute_entries,
                            key=lambda e: e.brick.brick_id):
            if entry.lifecycle.state is BrickState.MAINTENANCE:
                registry.transition_compute(entry.brick.brick_id,
                                            BrickState.AVAILABLE)
                registry.transition_compute(entry.brick.brick_id,
                                            BrickState.ACTIVE)
        pod.draining = False
        yield self.sim.timeout(0.0)
        return pod
