"""Pod packaging: racks behind a second, inter-rack switching tier.

The paper's system view (§II) stops at one rack, but its architecture is
explicitly hierarchical: "dBOXes are organized in racks and pods,
interconnected by a hybrid optical/electrical network".  :class:`Pod`
models that next tier — racks with positions, each rack's switch trunked
into an :class:`InterRackSwitch` by a fixed budget of uplink fibres — and
answers the pod-wide topology queries (which rack owns a brick, hop path
between any two bricks) the orchestration layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import FabricError
from repro.fabric.interconnect import HopPath, Interconnect
from repro.hardware.bricks import Brick, BrickType
from repro.hardware.rack import DEFAULT_FIBRE_PLAN, FibrePlan, Rack
from repro.network.optical.switch import (
    DEFAULT_PORT_POWER_W,
    OpticalCircuitSwitch,
)

#: Default uplink fibres trunking one rack switch into the pod switch.
DEFAULT_UPLINKS_PER_RACK = 8

#: Port count of the inter-rack switch: enough for a healthy pod
#: (e.g. 16 racks x 8 uplinks) with slack.
DEFAULT_POD_PORT_COUNT = 192


class InterRackSwitch(OpticalCircuitSwitch):
    """The second switching tier stitching racks into a pod.

    Same all-optical cross-connect semantics as the in-rack module, with
    pod-scale defaults: higher port density (trunk ports for every rack)
    and a slightly slower reconfiguration (larger beam-steering matrix).
    """

    def __init__(self, switch_id: str,
                 port_count: int = DEFAULT_POD_PORT_COUNT,
                 hop_loss_db: float = 1.0,
                 port_power_w: float = DEFAULT_PORT_POWER_W,
                 switching_time_s: float = 0.040) -> None:
        super().__init__(switch_id, port_count=port_count,
                         hop_loss_db=hop_loss_db,
                         port_power_w=port_power_w,
                         switching_time_s=switching_time_s)


@dataclass
class Uplink:
    """One pre-cabled fibre between a rack switch and the pod switch.

    Inter-rack circuits claim a free uplink on each participating rack;
    exhaustion is the pod-tier analogue of "running low in terms of
    physical ports" (§III).
    """

    rack_id: str
    index: int
    rack_switch_port: int
    pod_switch_port: int
    #: Circuit id currently riding this uplink, or ``None`` when free.
    in_use_by: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.rack_id}.uplink{self.index}"

    @property
    def is_free(self) -> bool:
        return self.in_use_by is None


@dataclass
class RackSlot:
    """One rack's membership record in the pod."""

    rack: Rack
    position: int
    switch: OpticalCircuitSwitch
    uplinks: list[Uplink] = field(default_factory=list)


class Pod:
    """A pod of dReDBox racks behind an inter-rack switch."""

    def __init__(self, pod_id: str,
                 switch: Optional[InterRackSwitch] = None,
                 fibre_plan: FibrePlan = DEFAULT_FIBRE_PLAN) -> None:
        self.pod_id = pod_id
        self.switch = switch or InterRackSwitch(f"{pod_id}.switch")
        self.fibre_plan = fibre_plan
        #: Planning-level hop model; its switch losses are the nominal
        #: figures.  Per-circuit link budgets use each traversed
        #: switch's actual loss (see ``PodFabric._connect_inter_rack``).
        self.interconnect = Interconnect(
            fibre_plan,
            rack_switch_loss_db=1.0,
            pod_switch_loss_db=self.switch.hop_loss_db)
        self._slots: dict[str, RackSlot] = {}

    # -- rack management ---------------------------------------------------------

    def add_rack(self, rack: Rack, rack_switch: OpticalCircuitSwitch,
                 uplinks: int = DEFAULT_UPLINKS_PER_RACK) -> RackSlot:
        """Mount *rack* at the next position and trunk its switch.

        ``uplinks`` fibres are pre-cabled between free ports of the rack
        switch and the pod switch; inter-rack circuits later claim them.
        """
        if rack.rack_id in self._slots:
            raise FabricError(
                f"pod {self.pod_id} already has rack {rack.rack_id!r}")
        if uplinks < 0:
            raise FabricError("uplink count must be >= 0")
        slot = RackSlot(rack=rack, position=len(self._slots),
                        switch=rack_switch)
        for index in range(uplinks):
            free_rack = rack_switch.free_attachment_ports()
            free_pod = self.switch.free_attachment_ports()
            if not free_rack:
                raise FabricError(
                    f"rack switch {rack_switch.switch_id} has no free port "
                    f"for uplink {index}")
            if not free_pod:
                raise FabricError(
                    f"pod switch {self.switch.switch_id} has no free port "
                    f"for uplink {index} of {rack.rack_id}")
            uplink = Uplink(rack_id=rack.rack_id, index=index,
                            rack_switch_port=free_rack[0],
                            pod_switch_port=free_pod[0])
            rack_switch.attach(uplink.rack_switch_port, uplink.label)
            self.switch.attach(uplink.pod_switch_port, uplink.label)
            slot.uplinks.append(uplink)
        rack.pod_id = self.pod_id
        rack.pod_position = slot.position
        self._slots[rack.rack_id] = slot
        return slot

    def slot(self, rack_id: str) -> RackSlot:
        try:
            return self._slots[rack_id]
        except KeyError:
            raise FabricError(
                f"pod {self.pod_id} has no rack {rack_id!r}") from None

    def rack(self, rack_id: str) -> Rack:
        return self.slot(rack_id).rack

    @property
    def racks(self) -> list[Rack]:
        return [slot.rack for slot in self._slots.values()]

    @property
    def rack_count(self) -> int:
        return len(self._slots)

    # -- brick location queries ---------------------------------------------------

    def rack_of(self, brick: Brick) -> Rack:
        """The rack physically holding *brick*."""
        for slot in self._slots.values():
            for candidate in slot.rack.bricks():
                if candidate is brick:
                    return slot.rack
        raise FabricError(
            f"brick {brick.brick_id} is not in any rack of pod {self.pod_id}")

    def rack_of_brick_id(self, brick_id: str) -> Rack:
        """The rack holding the brick with *brick_id*."""
        for slot in self._slots.values():
            for candidate in slot.rack.bricks():
                if candidate.brick_id == brick_id:
                    return slot.rack
        raise FabricError(
            f"no brick {brick_id!r} in any rack of pod {self.pod_id}")

    def bricks(self, brick_type: Optional[BrickType] = None) -> Iterator[Brick]:
        """All plugged bricks across every rack."""
        for slot in self._slots.values():
            yield from slot.rack.bricks(brick_type)

    def same_rack(self, brick_a: Brick, brick_b: Brick) -> bool:
        return self.rack_of(brick_a) is self.rack_of(brick_b)

    def same_tray(self, brick_a: Brick, brick_b: Brick) -> bool:
        return (brick_a.tray_id is not None
                and brick_a.tray_id == brick_b.tray_id
                and self.same_rack(brick_a, brick_b))

    # -- interconnect composition ---------------------------------------------------

    def hop_path(self, brick_a: Brick, brick_b: Brick) -> HopPath:
        """The hop list of the shortest data path between the bricks
        (same-tray pairs reach each other electrically)."""
        same_rack = self.same_rack(brick_a, brick_b)
        same_tray = same_rack and self.same_tray(brick_a, brick_b)
        return self.interconnect.path(same_tray=same_tray,
                                      same_rack=same_rack)

    def circuit_hop_path(self, brick_a: Brick, brick_b: Brick) -> HopPath:
        """The hop list an *optical circuit* between the bricks traverses.

        CBN ports are fibred into the rack switch, so a circuit crosses
        it even when both bricks share a tray; only the rack/pod tier
        distinction matters here.
        """
        same_rack = self.same_rack(brick_a, brick_b)
        return self.interconnect.path(same_tray=False, same_rack=same_rack)

    def fibre_length_m(self, brick_a: Brick, brick_b: Brick) -> float:
        """End-to-end fibre between any two bricks of the pod."""
        return self.hop_path(brick_a, brick_b).fibre_length_m

    # -- uplink inventory -----------------------------------------------------------

    def free_uplinks(self, rack_id: str) -> list[Uplink]:
        return [u for u in self.slot(rack_id).uplinks if u.is_free]

    def claim_uplink(self, rack_id: str, circuit_id: str) -> Uplink:
        """Reserve a free uplink of *rack_id* for *circuit_id*."""
        free = self.free_uplinks(rack_id)
        if not free:
            raise FabricError(
                f"rack {rack_id} has no free uplink to the pod switch")
        uplink = free[0]
        uplink.in_use_by = circuit_id
        return uplink

    def release_uplink(self, uplink: Uplink) -> None:
        if uplink.is_free:
            raise FabricError(f"uplink {uplink.label} is not in use")
        uplink.in_use_by = None

    # -- aggregates -------------------------------------------------------------------

    def total_power_draw_w(self) -> float:
        """Brick draw of every rack (switches are accounted by fabrics)."""
        return sum(slot.rack.total_power_draw_w()
                   for slot in self._slots.values())

    def inventory(self) -> dict[str, int]:
        """Pod-wide count of plugged bricks per type."""
        counts = {bt.value: 0 for bt in BrickType}
        for brick in self.bricks():
            counts[brick.brick_type.value] += 1
        return counts

    def __repr__(self) -> str:
        return (f"Pod({self.pod_id!r}, {self.rack_count} racks, "
                f"{sum(len(s.uplinks) for s in self._slots.values())} uplinks)")
