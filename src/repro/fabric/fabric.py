"""The pod-wide software-defined optical interconnect.

:class:`PodFabric` presents the same facade as the single-rack
:class:`~repro.network.optical.topology.OpticalFabric` — attach bricks,
connect/disconnect brick pairs, enumerate circuits — but routes through
the pod topology: rack-local pairs delegate to that rack's fabric, while
cross-rack pairs get an :class:`InterRackCircuit` spanning rack switch A,
the :class:`~repro.fabric.pod.InterRackSwitch`, and rack switch B over
pre-cabled uplink fibres.  Orchestration code is oblivious: the SDM
controller keeps asking for "a light path from brick X to brick Y".
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import CircuitError, FabricError, PortError
from repro.fabric.interconnect import HopPath
from repro.fabric.pod import Pod, Uplink
from repro.hardware.bricks import Brick
from repro.network.optical.ber import ReceiverModel
from repro.network.optical.link import LinkBudget, OpticalLink
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.network.optical.topology import FabricCircuit, OpticalFabric

#: Mated connector pairs on an inter-rack light path: one at each brick
#: endpoint plus one at each uplink patch panel.
INTER_RACK_CONNECTOR_PAIRS = 4


class InterRackCircuit:
    """A light path spanning the second switch tier.

    Duck-type compatible with :class:`~repro.network.optical.circuits.Circuit`
    (the SDM controller and access paths only use the shared surface:
    ``circuit_id``, ``setup_time_s``, ``propagation_delay_s``,
    ``worst_ber``, ``closes``).
    """

    def __init__(self, circuit_id: str, endpoint_a: str, endpoint_b: str,
                 hop_path: HopPath, link_ab: OpticalLink,
                 link_ba: OpticalLink, setup_time_s: float,
                 uplink_a: Uplink, uplink_b: Uplink,
                 cross_connects: list[tuple[OpticalCircuitSwitch, int]],
                 ) -> None:
        self.circuit_id = circuit_id
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.hop_path = hop_path
        self.hops = hop_path.switch_hops
        self.link_ab = link_ab
        self.link_ba = link_ba
        self.setup_time_s = setup_time_s
        self.uplink_a = uplink_a
        self.uplink_b = uplink_b
        #: ``(switch, port)`` pairs to disconnect on teardown.
        self.cross_connects = cross_connects
        self.active = True

    @property
    def worst_ber(self) -> float:
        """The worse of the two directional theoretical BERs."""
        return max(self.link_ab.theoretical_ber, self.link_ba.theoretical_ber)

    @property
    def propagation_delay_s(self) -> float:
        """One-way propagation delay (both directions are symmetric)."""
        return self.hop_path.propagation_delay_s

    def closes(self, target_ber: float = 1e-12) -> bool:
        """True when both directions meet *target_ber*."""
        return (self.link_ab.closes(target_ber)
                and self.link_ba.closes(target_ber))

    def __repr__(self) -> str:
        return (f"InterRackCircuit({self.circuit_id!r}, "
                f"{self.endpoint_a} <-> {self.endpoint_b}, "
                f"{self.hops} switch hops)")


class PodFabric:
    """The pod's unified optical interconnect over per-rack fabrics."""

    def __init__(self, pod: Pod, rack_fabrics: dict[str, OpticalFabric],
                 receiver: Optional[ReceiverModel] = None) -> None:
        unknown = set(rack_fabrics) - {r.rack_id for r in pod.racks}
        if unknown:
            raise FabricError(
                f"fabrics for racks not in pod {pod.pod_id}: {sorted(unknown)}")
        self.pod = pod
        self._rack_fabrics = dict(rack_fabrics)
        self.receiver = receiver or ReceiverModel()
        #: brick_id -> rack_id, filled at attach time.
        self._locations: dict[str, str] = {}
        self._inter_circuits: dict[str, FabricCircuit] = {}
        self._ids = itertools.count()

    # -- wiring --------------------------------------------------------------------

    def rack_fabric(self, rack_id: str) -> OpticalFabric:
        try:
            return self._rack_fabrics[rack_id]
        except KeyError:
            raise FabricError(
                f"pod fabric has no rack fabric for {rack_id!r}") from None

    def attach_brick(self, brick: Brick) -> int:
        """Fibre the brick into its own rack's switch."""
        rack = self.pod.rack_of(brick)
        attached = self.rack_fabric(rack.rack_id).attach_brick(brick)
        self._locations[brick.brick_id] = rack.rack_id
        return attached

    def is_attached(self, brick: Brick) -> bool:
        return brick.brick_id in self._locations

    def rack_id_of(self, brick: Brick) -> str:
        try:
            return self._locations[brick.brick_id]
        except KeyError:
            raise FabricError(
                f"brick {brick.brick_id} is not attached to the pod "
                f"fabric") from None

    # -- circuits -------------------------------------------------------------------

    def connect(self, brick_a: Brick, brick_b: Brick,
                hops: int = 1) -> FabricCircuit:
        """Establish a circuit; spans the pod switch when racks differ."""
        rack_a = self.rack_id_of(brick_a)
        rack_b = self.rack_id_of(brick_b)
        if rack_a == rack_b:
            circuit = self.rack_fabric(rack_a).connect(
                brick_a, brick_b, hops=hops)
            circuit.hop_path = self.pod.circuit_hop_path(brick_a, brick_b)
            return circuit
        return self._connect_inter_rack(brick_a, rack_a, brick_b, rack_b)

    def _connect_inter_rack(self, brick_a: Brick, rack_a: str,
                            brick_b: Brick, rack_b: str) -> FabricCircuit:
        for brick in (brick_a, brick_b):
            if not brick.is_powered:
                raise CircuitError(f"brick {brick.brick_id} is powered off")
        circuit_id = f"podcircuit-{next(self._ids)}"
        try:
            uplink_a = self.pod.claim_uplink(rack_a, circuit_id)
        except FabricError as exc:
            raise CircuitError(str(exc)) from exc
        try:
            uplink_b = self.pod.claim_uplink(rack_b, circuit_id)
        except FabricError as exc:
            self.pod.release_uplink(uplink_a)
            raise CircuitError(str(exc)) from exc
        try:
            port_a = brick_a.circuit_ports.allocate()
            port_b = brick_b.circuit_ports.allocate()
        except PortError as exc:
            self.pod.release_uplink(uplink_a)
            self.pod.release_uplink(uplink_b)
            raise CircuitError(f"no free CBN port: {exc}") from exc
        port_a.connect(port_b)

        switch_a = self.pod.slot(rack_a).switch
        switch_b = self.pod.slot(rack_b).switch
        pod_switch = self.pod.switch
        cross_connects: list[tuple[OpticalCircuitSwitch, int]] = []
        switch_a.connect(switch_a.port_of(port_a.port_id),
                         uplink_a.rack_switch_port)
        cross_connects.append((switch_a, uplink_a.rack_switch_port))
        pod_switch.connect(uplink_a.pod_switch_port, uplink_b.pod_switch_port)
        cross_connects.append((pod_switch, uplink_a.pod_switch_port))
        switch_b.connect(uplink_b.rack_switch_port,
                         switch_b.port_of(port_b.port_id))
        cross_connects.append((switch_b, uplink_b.rack_switch_port))

        hop_path = self.pod.circuit_hop_path(brick_a, brick_b)
        # Budget the actual switches on the path, not the hop model's
        # nominal figures — racks may carry different switch modules.
        switch_loss_db = (switch_a.hop_loss_db + pod_switch.hop_loss_db
                          + switch_b.hop_loss_db)
        link_ab = self._directional_link(
            f"{circuit_id}.ab", rack_a, port_a.port_id, hop_path,
            switch_loss_db)
        link_ba = self._directional_link(
            f"{circuit_id}.ba", rack_b, port_b.port_id, hop_path,
            switch_loss_db)
        # The SDM-C pushes the three switch reconfigurations in parallel;
        # setup completes when the slowest matrix settles.
        setup_time_s = max(switch_a.switching_time_s,
                           pod_switch.switching_time_s,
                           switch_b.switching_time_s)
        circuit = InterRackCircuit(
            circuit_id=circuit_id,
            endpoint_a=port_a.port_id,
            endpoint_b=port_b.port_id,
            hop_path=hop_path,
            link_ab=link_ab,
            link_ba=link_ba,
            setup_time_s=setup_time_s,
            uplink_a=uplink_a,
            uplink_b=uplink_b,
            cross_connects=cross_connects,
        )
        fabric_circuit = FabricCircuit(circuit, brick_a, port_a,
                                       brick_b, port_b, hop_path=hop_path)
        self._inter_circuits[circuit_id] = fabric_circuit
        return fabric_circuit

    def _directional_link(self, name: str, source_rack: str,
                          source_port_id: str, hop_path: HopPath,
                          switch_loss_db: float) -> OpticalLink:
        """Power budget of one direction of an inter-rack light path."""
        manager = self.rack_fabric(source_rack).manager
        switch_hops = hop_path.switch_hops
        budget = LinkBudget(
            launch_dbm=manager.launch_power_dbm(source_port_id),
            switch_hops=switch_hops,
            connector_pairs=INTER_RACK_CONNECTOR_PAIRS,
            fibre_length_m=hop_path.fibre_length_m,
            # LinkBudget charges a uniform per-hop figure; spread the
            # composed per-switch losses evenly so the total is exact.
            hop_loss_db=switch_loss_db / max(1, switch_hops),
        )
        return OpticalLink(name, budget, self.receiver)

    def disconnect(self, fabric_circuit: FabricCircuit) -> None:
        """Tear the circuit down and free ports (and uplinks)."""
        circuit_id = fabric_circuit.circuit_id
        if circuit_id in self._inter_circuits:
            circuit = fabric_circuit.circuit
            for switch, port in circuit.cross_connects:
                switch.disconnect(port)
            self.pod.release_uplink(circuit.uplink_a)
            self.pod.release_uplink(circuit.uplink_b)
            fabric_circuit.port_a.disconnect()
            circuit.active = False
            del self._inter_circuits[circuit_id]
            return
        rack_id = self.rack_id_of(fabric_circuit.brick_a)
        self.rack_fabric(rack_id).disconnect(fabric_circuit)

    # -- queries -------------------------------------------------------------------

    def circuit_between(self, brick_a: Brick,
                        brick_b: Brick) -> Optional[FabricCircuit]:
        rack_a = self.rack_id_of(brick_a)
        rack_b = self.rack_id_of(brick_b)
        if rack_a == rack_b:
            return self.rack_fabric(rack_a).circuit_between(brick_a, brick_b)
        for fc in self._inter_circuits.values():
            ends = {fc.brick_a.brick_id, fc.brick_b.brick_id}
            if ends == {brick_a.brick_id, brick_b.brick_id}:
                return fc
        return None

    def circuits_of(self, brick: Brick) -> list[FabricCircuit]:
        rack_id = self.rack_id_of(brick)
        circuits = self.rack_fabric(rack_id).circuits_of(brick)
        circuits.extend(fc for fc in self._inter_circuits.values()
                        if brick in (fc.brick_a, fc.brick_b))
        return circuits

    def can_connect(self, brick_a: Brick, brick_b: Brick) -> bool:
        """Reachability probe: live circuit, or ports (and uplinks) free."""
        if self.circuit_between(brick_a, brick_b):
            return True
        if not (brick_a.circuit_ports.free_ports
                and brick_b.circuit_ports.free_ports):
            return False
        rack_a = self.rack_id_of(brick_a)
        rack_b = self.rack_id_of(brick_b)
        if rack_a == rack_b:
            return True
        return bool(self.pod.free_uplinks(rack_a)
                    and self.pod.free_uplinks(rack_b))

    @property
    def active_circuits(self) -> list[FabricCircuit]:
        circuits: list[FabricCircuit] = []
        for fabric in self._rack_fabrics.values():
            circuits.extend(fabric.active_circuits)
        circuits.extend(self._inter_circuits.values())
        return circuits

    @property
    def inter_rack_circuits(self) -> list[FabricCircuit]:
        return list(self._inter_circuits.values())

    @property
    def power_draw_w(self) -> float:
        """Every rack switch plus the pod switch."""
        return (sum(f.power_draw_w for f in self._rack_fabrics.values())
                + self.pod.switch.power_draw_w)
