"""The unified interconnect abstraction.

Remote-memory traffic in a disaggregated pod crosses an *ordered list of
hops*: the tray backplane, a fibre run to the rack switch, a traversal of
that switch, possibly a fibre run up to the pod-level switch tier and
back down, and the mirror-image hops on the far side.  "Network in
Disaggregated Datacenters" argues this hierarchy is the dominant term in
remote-memory latency, so it is modelled explicitly instead of being
folded into per-tier constants.

:class:`Interconnect` builds :class:`HopPath` objects from packaging
facts (same tray / same rack / cross rack) and a
:class:`~repro.hardware.rack.FibrePlan` hop table.  Every consumer —
circuit link budgets, latency breakdowns, placement scoring — composes
the same hop list rather than assuming a single rack.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro.errors import FabricError
from repro.hardware.rack import DEFAULT_FIBRE_PLAN, FibrePlan
from repro.units import fibre_propagation_delay


class HopKind(enum.Enum):
    """What one hop of a light path physically is."""

    #: Electrical reach inside one tray (no fibre, no switch).
    ELECTRICAL = "electrical"
    #: A fibre run between two devices.
    FIBRE = "fibre"
    #: One traversal (cross-connect) of an optical switch.
    SWITCH = "switch"


class PathScope(enum.Enum):
    """The highest packaging tier a path crosses."""

    TRAY = "tray"
    RACK = "rack"
    POD = "pod"


@dataclass(frozen=True)
class Hop:
    """One segment of an end-to-end interconnect path.

    Attributes:
        name: Short label used in latency itemization, e.g.
            ``"rack-uplink"``.
        kind: Physical nature of the hop.
        fibre_m: Fibre run of this hop (0 for electrical/switch hops).
        switch_loss_db: Insertion loss when the hop is a switch traversal.
        fixed_latency_s: Device latency charged regardless of length.
        bandwidth_bps: Capacity of this hop (``inf`` when not the
            bottleneck model's concern, e.g. a passive fibre).
    """

    name: str
    kind: HopKind
    fibre_m: float = 0.0
    switch_loss_db: float = 0.0
    fixed_latency_s: float = 0.0
    bandwidth_bps: float = math.inf

    def __post_init__(self) -> None:
        if self.fibre_m < 0:
            raise FabricError(f"hop {self.name!r}: fibre must be >= 0")
        if self.fixed_latency_s < 0 or self.switch_loss_db < 0:
            raise FabricError(
                f"hop {self.name!r}: latency/loss must be >= 0")
        if self.bandwidth_bps <= 0:
            raise FabricError(f"hop {self.name!r}: bandwidth must be > 0")

    @property
    def propagation_delay_s(self) -> float:
        """Flight time through this hop (fibre plus fixed device time)."""
        return fibre_propagation_delay(self.fibre_m) + self.fixed_latency_s


@dataclass(frozen=True)
class HopPath:
    """An ordered, composable list of hops between two bricks."""

    hops: tuple[Hop, ...]
    scope: PathScope

    def __iter__(self) -> Iterator[Hop]:
        return iter(self.hops)

    def __len__(self) -> int:
        return len(self.hops)

    @property
    def fibre_length_m(self) -> float:
        """Total fibre of the path."""
        return sum(hop.fibre_m for hop in self.hops)

    @property
    def switch_hops(self) -> int:
        """Number of switch traversals (cross-connects) on the path."""
        return sum(1 for hop in self.hops if hop.kind is HopKind.SWITCH)

    @property
    def switch_loss_db(self) -> float:
        """Total insertion loss of every switch traversal."""
        return sum(hop.switch_loss_db for hop in self.hops)

    @cached_property
    def propagation_delay_s(self) -> float:
        """One-way flight time: per-hop fibre plus fixed latencies."""
        return sum(hop.propagation_delay_s for hop in self.hops)

    @property
    def bottleneck_bps(self) -> float:
        """Capacity of the slowest hop (``inf`` for all-passive paths)."""
        return min((hop.bandwidth_bps for hop in self.hops),
                   default=math.inf)

    @property
    def crosses_racks(self) -> bool:
        return self.scope is PathScope.POD

    def propagation_segments(self) -> list[tuple[str, float]]:
        """``(hop name, seconds)`` for every hop that costs flight time.

        This is what latency breakdowns itemize instead of one opaque
        "propagation" figure; zero-delay hops (switch traversals of a
        transparent circuit) are omitted.
        """
        return [(hop.name, hop.propagation_delay_s) for hop in self.hops
                if hop.propagation_delay_s > 0]

    def __repr__(self) -> str:
        chain = " -> ".join(hop.name for hop in self.hops)
        return (f"HopPath({self.scope.value}: {chain}, "
                f"{self.fibre_length_m:g} m, {self.switch_hops} switch hops)")


class Interconnect:
    """Builds hop paths from packaging facts and the fibre hop table.

    One instance describes one pod's cabling plan; rack-local paths work
    without any pod at all (the degenerate single-rack deployment).
    """

    def __init__(self, fibre_plan: FibrePlan = DEFAULT_FIBRE_PLAN,
                 rack_switch_loss_db: float = 1.0,
                 pod_switch_loss_db: float = 1.0) -> None:
        if rack_switch_loss_db < 0 or pod_switch_loss_db < 0:
            raise FabricError("switch losses must be non-negative")
        self.fibre_plan = fibre_plan
        self.rack_switch_loss_db = rack_switch_loss_db
        self.pod_switch_loss_db = pod_switch_loss_db

    # -- path construction -------------------------------------------------------

    def intra_tray_path(self) -> HopPath:
        """Electrical reach inside one tray."""
        return HopPath(
            hops=(Hop("intra-tray", HopKind.ELECTRICAL,
                      fibre_m=self.fibre_plan.intra_tray_m),),
            scope=PathScope.TRAY)

    def intra_rack_path(self) -> HopPath:
        """Tray -> rack switch -> tray, one switch traversal."""
        plan = self.fibre_plan
        return HopPath(
            hops=(
                Hop("tray-uplink", HopKind.FIBRE,
                    fibre_m=plan.tray_to_switch_m),
                Hop("rack-switch", HopKind.SWITCH,
                    switch_loss_db=self.rack_switch_loss_db),
                Hop("tray-downlink", HopKind.FIBRE,
                    fibre_m=plan.tray_to_switch_m),
            ),
            scope=PathScope.RACK)

    def inter_rack_path(self) -> HopPath:
        """Tray -> rack switch -> pod switch -> rack switch -> tray."""
        plan = self.fibre_plan
        return HopPath(
            hops=(
                Hop("tray-uplink", HopKind.FIBRE,
                    fibre_m=plan.tray_to_switch_m),
                Hop("rack-switch", HopKind.SWITCH,
                    switch_loss_db=self.rack_switch_loss_db),
                Hop("rack-uplink", HopKind.FIBRE,
                    fibre_m=plan.rack_to_pod_switch_m),
                Hop("pod-switch", HopKind.SWITCH,
                    switch_loss_db=self.pod_switch_loss_db),
                Hop("rack-downlink", HopKind.FIBRE,
                    fibre_m=plan.rack_to_pod_switch_m),
                Hop("remote-rack-switch", HopKind.SWITCH,
                    switch_loss_db=self.rack_switch_loss_db),
                Hop("tray-downlink", HopKind.FIBRE,
                    fibre_m=plan.tray_to_switch_m),
            ),
            scope=PathScope.POD)

    def path(self, *, same_tray: bool, same_rack: bool) -> HopPath:
        """The hop path for a brick pair's packaging relationship."""
        if same_tray and not same_rack:
            raise FabricError("bricks in one tray are in one rack")
        if same_tray:
            return self.intra_tray_path()
        if same_rack:
            return self.intra_rack_path()
        return self.inter_rack_path()
