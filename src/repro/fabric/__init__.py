"""Pod-scale fabric: the unified interconnect layer above single racks.

dReDBox composes hierarchically (§II): bricks in trays, trays behind the
in-rack optical circuit switch, and racks stitched into pods/datacenters
by a second switching tier.  This package models that hierarchy:

* :mod:`repro.fabric.interconnect` — the unified :class:`Interconnect`
  abstraction: per-hop latency/bandwidth composition over a hop table
  (:class:`~repro.hardware.rack.FibrePlan`).
* :mod:`repro.fabric.pod` — :class:`Pod` (racks with positions, uplink
  inventory) and :class:`InterRackSwitch` (the second switching tier).
* :mod:`repro.fabric.fabric` — :class:`PodFabric`, the pod-wide optical
  interconnect facade whose circuits can span the second switch tier.
"""

from repro.fabric.interconnect import (
    Hop,
    HopKind,
    HopPath,
    Interconnect,
    PathScope,
)
from repro.fabric.pod import InterRackSwitch, Pod, Uplink
from repro.fabric.fabric import InterRackCircuit, PodFabric

__all__ = [
    "Hop",
    "HopKind",
    "HopPath",
    "InterRackCircuit",
    "InterRackSwitch",
    "Interconnect",
    "PathScope",
    "Pod",
    "PodFabric",
    "Uplink",
]
