"""SiP mid-board optics (MBO) model.

Section III: "Each of the physical incoming/outgoing ports on the dBRICKs
is attached to a different channel on the multi-channel SiP Mid-board
optics (MBO).  The SiP MBO used has a total of 8 transceivers using
external modulation and a shared laser operating at 1310 nm.  Each channel
on average has an optical output power of -3.7 dBm."

The MBO is the electrical/optical boundary: each brick transceiver port
maps 1:1 onto an MBO channel whose launch power seeds the link power
budget evaluated in the Fig. 7 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import PortError
from repro.hardware.ports import TransceiverPort

#: Number of transceiver channels on the prototype's MBO.
MBO_CHANNEL_COUNT = 8

#: Average per-channel optical launch power (dBm), from the paper.
MBO_MEAN_LAUNCH_POWER_DBM = -3.7

#: Channel-to-channel launch power spread (1 sigma, dB).  SiP transmitter
#: arrays show fractions of a dB of spread between lanes.
MBO_LAUNCH_POWER_SIGMA_DB = 0.35

#: Shared-laser wavelength (nm).
MBO_WAVELENGTH_NM = 1310.0


@dataclass
class OpticalChannel:
    """One MBO lane: launch power plus the electrical port behind it."""

    channel_index: int
    launch_power_dbm: float
    wavelength_nm: float = MBO_WAVELENGTH_NM
    port: Optional[TransceiverPort] = None

    @property
    def is_attached(self) -> bool:
        return self.port is not None


class MidboardOptics:
    """An 8-channel SiP MBO attached to one brick.

    Per-channel launch powers can be drawn from a supplied RNG to model
    lane-to-lane variation (used by the Fig. 7 experiment) or left at the
    nominal figure for deterministic runs.
    """

    def __init__(self, mbo_id: str,
                 channel_count: int = MBO_CHANNEL_COUNT,
                 mean_launch_power_dbm: float = MBO_MEAN_LAUNCH_POWER_DBM,
                 launch_sigma_db: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if channel_count < 1:
            raise PortError(f"MBO needs at least one channel, got {channel_count}")
        if launch_sigma_db < 0:
            raise PortError("launch power spread must be non-negative")
        self.mbo_id = mbo_id
        self.mean_launch_power_dbm = mean_launch_power_dbm
        self._channels: list[OpticalChannel] = []
        for index in range(channel_count):
            if launch_sigma_db > 0:
                if rng is None:
                    raise PortError("an RNG is required for launch power spread")
                power = float(rng.normal(mean_launch_power_dbm, launch_sigma_db))
            else:
                power = mean_launch_power_dbm
            self._channels.append(OpticalChannel(index, power))

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self):
        return iter(self._channels)

    def channel(self, index: int) -> OpticalChannel:
        """Channel by zero-based index."""
        if not 0 <= index < len(self._channels):
            raise PortError(
                f"MBO {self.mbo_id} has no channel {index} "
                f"(0..{len(self._channels) - 1})")
        return self._channels[index]

    def attach_port(self, index: int, port: TransceiverPort) -> OpticalChannel:
        """Bind brick *port* to MBO channel *index* (1:1 mapping)."""
        chan = self.channel(index)
        if chan.is_attached:
            raise PortError(
                f"channel {index} of MBO {self.mbo_id} already has a port")
        for other in self._channels:
            if other.port is port:
                raise PortError(
                    f"port {port.port_id} is already attached to channel "
                    f"{other.channel_index}")
        chan.port = port
        return chan

    def channel_for_port(self, port: TransceiverPort) -> OpticalChannel:
        """The channel a brick port is wired through."""
        for chan in self._channels:
            if chan.port is port:
                return chan
        raise PortError(
            f"port {port.port_id} is not attached to MBO {self.mbo_id}")

    @property
    def attached_channels(self) -> list[OpticalChannel]:
        return [c for c in self._channels if c.is_attached]
