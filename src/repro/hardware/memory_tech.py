"""Memory technologies and memory-controller models.

Section II highlights that the dMEMBRICK "is not limited to a specific
memory technology": its glue logic talks AXI to either Xilinx DDR or HMC
controller IPs.  We model a technology as a parameter set
(:class:`MemoryTechnology`), a controller as a service point with fixed
per-request latency and finite bandwidth (:class:`MemoryController`), and a
populated module as controller + capacity (:class:`MemoryModule`).

The two presets are calibrated to public figures for the parts the
prototype used (DDR4-2400 SODIMMs and gen-2 HMC):

* DDR4-2400: ~45 ns device access (row hit/miss average), 19.2 GB/s per
  channel, ~180 pJ/bit access energy.
* HMC gen2: ~65 ns access through the vault controller, 30 GB/s usable link
  bandwidth per half-width link, ~110 pJ/bit (HMC is more efficient per bit
  moved, at somewhat higher latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIB


@dataclass(frozen=True)
class MemoryTechnology:
    """Timing/bandwidth/energy characteristics of a memory device class.

    Attributes:
        name: Technology label, e.g. ``"DDR4-2400"``.
        access_latency_s: Average device access latency for a cache-line
            sized request, controller queueing excluded.
        bandwidth_bps: Peak sustainable data bandwidth, bits per second.
        access_energy_pj_per_bit: Energy per bit moved, picojoules.
        controller_latency_s: Fixed latency added by the controller IP
            (AXI handshake, scheduling, ECC).
    """

    name: str
    access_latency_s: float
    bandwidth_bps: float
    access_energy_pj_per_bit: float
    controller_latency_s: float

    def __post_init__(self) -> None:
        if self.access_latency_s <= 0 or self.controller_latency_s < 0:
            raise ConfigurationError(f"bad latency figures for {self.name}")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive for {self.name}")

    def service_time(self, num_bytes: int) -> float:
        """Device-level service time for a *num_bytes* access."""
        if num_bytes < 0:
            raise ConfigurationError(f"access size must be >= 0, got {num_bytes}")
        return (self.access_latency_s + self.controller_latency_s
                + (num_bytes * 8) / self.bandwidth_bps)

    def access_energy_j(self, num_bytes: int) -> float:
        """Energy in joules to move *num_bytes* through the device."""
        return num_bytes * 8 * self.access_energy_pj_per_bit * 1e-12


#: DDR4-2400 (one 64-bit channel), as on the Zynq US+ brick boards.
DDR4_2400 = MemoryTechnology(
    name="DDR4-2400",
    access_latency_s=45e-9,
    bandwidth_bps=19.2e9 * 8,
    access_energy_pj_per_bit=180.0,
    controller_latency_s=25e-9,
)

#: Hybrid Memory Cube, generation 2, half-width link.
HMC_GEN2 = MemoryTechnology(
    name="HMC-gen2",
    access_latency_s=65e-9,
    bandwidth_bps=30e9 * 8,
    access_energy_pj_per_bit=110.0,
    controller_latency_s=35e-9,
)

_TECHNOLOGIES = {tech.name: tech for tech in (DDR4_2400, HMC_GEN2)}


def technology_by_name(name: str) -> MemoryTechnology:
    """Look up a built-in technology preset by name."""
    try:
        return _TECHNOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(_TECHNOLOGIES))
        raise ConfigurationError(
            f"unknown memory technology {name!r}; known: {known}") from None


class MemoryController:
    """One memory-controller IP instance on a brick.

    The controller is the unit of bandwidth provisioning: a dMEMBRICK "can
    be dimensioned in terms of ... the number of memory controllers it
    supports" (§II).  Occupancy tracking lets the access path model
    controller queueing without a full DRAM model.
    """

    def __init__(self, controller_id: str, technology: MemoryTechnology) -> None:
        self.controller_id = controller_id
        self.technology = technology
        self._busy_until = 0.0
        self.requests_served = 0
        self.bytes_moved = 0

    def service_time(self, num_bytes: int) -> float:
        """Service time of one access through this controller."""
        return self.technology.service_time(num_bytes)

    def occupy(self, now: float, num_bytes: int) -> float:
        """Serve an access arriving at *now*; returns its completion time.

        Requests serialise on the controller: an access arriving while a
        previous one is in flight waits for it (FIFO), which is how the AXI
        interconnect ahead of the controller behaves.
        """
        start = max(now, self._busy_until)
        finish = start + self.service_time(num_bytes)
        self._busy_until = finish
        self.requests_served += 1
        self.bytes_moved += num_bytes
        return finish

    @property
    def busy_until(self) -> float:
        """Simulated time at which the controller next becomes free."""
        return self._busy_until


class MemoryModule:
    """A populated memory bank: capacity behind one controller."""

    def __init__(self, module_id: str, technology: MemoryTechnology,
                 capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"module capacity must be positive, got {capacity_bytes}")
        self.module_id = module_id
        self.capacity_bytes = capacity_bytes
        self.controller = MemoryController(f"{module_id}.mc", technology)

    @property
    def technology(self) -> MemoryTechnology:
        return self.controller.technology

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / GIB

    def __repr__(self) -> str:
        return (f"MemoryModule({self.module_id!r}, {self.technology.name}, "
                f"{self.capacity_gib:.0f} GiB)")
