"""Datacenter tray: hot-pluggable brick slots.

Figure 1 of the paper shows the tray concept: a carrier of hot-pluggable
modules providing compute, memory and accelerator resources.  Intra-tray
bricks connect over a low-latency electrical circuit; cross-tray traffic
goes through the rack's optical network (§II).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import SlotError
from repro.hardware.bricks import Brick, BrickType
from repro.units import nanoseconds

#: Slots per tray in the prototype-scale configuration.
DEFAULT_TRAY_SLOTS = 16

#: One-way latency of the intra-tray electrical circuit between two bricks
#: in the same tray (board traces + electrical crosspoint).
INTRA_TRAY_LATENCY_S = nanoseconds(15)


class Tray:
    """A carrier of :data:`DEFAULT_TRAY_SLOTS` hot-pluggable brick slots."""

    def __init__(self, tray_id: str, slot_count: int = DEFAULT_TRAY_SLOTS) -> None:
        if slot_count < 1:
            raise SlotError(f"tray needs >= 1 slot, got {slot_count}")
        self.tray_id = tray_id
        self._slots: list[Optional[Brick]] = [None] * slot_count
        self.plug_events = 0
        self.unplug_events = 0

    # -- slot management -------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def occupied_slots(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    @property
    def free_slots(self) -> list[int]:
        """Indices of empty slots."""
        return [i for i, slot in enumerate(self._slots) if slot is None]

    def slot(self, index: int) -> Optional[Brick]:
        """Brick in slot *index*, or ``None`` when empty."""
        self._check_index(index)
        return self._slots[index]

    def plug(self, brick: Brick, slot_index: Optional[int] = None) -> int:
        """Hot-plug *brick*, returning the slot it landed in.

        Without an explicit index the first free slot is used.  A brick
        already seated in some tray cannot be plugged again.
        """
        if brick.is_plugged:
            raise SlotError(
                f"brick {brick.brick_id} is already plugged into "
                f"tray {brick.tray_id}")
        if slot_index is None:
            free = self.free_slots
            if not free:
                raise SlotError(f"tray {self.tray_id} is full")
            slot_index = free[0]
        else:
            self._check_index(slot_index)
            if self._slots[slot_index] is not None:
                raise SlotError(
                    f"slot {slot_index} of tray {self.tray_id} is occupied")
        self._slots[slot_index] = brick
        brick.tray_id = self.tray_id
        brick.slot_index = slot_index
        self.plug_events += 1
        return slot_index

    def unplug(self, slot_index: int) -> Brick:
        """Hot-remove and return the brick in *slot_index*."""
        self._check_index(slot_index)
        brick = self._slots[slot_index]
        if brick is None:
            raise SlotError(f"slot {slot_index} of tray {self.tray_id} is empty")
        self._slots[slot_index] = None
        brick.tray_id = None
        brick.slot_index = None
        self.unplug_events += 1
        return brick

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._slots):
            raise SlotError(
                f"tray {self.tray_id} has slots 0..{len(self._slots) - 1}, "
                f"got {index}")

    # -- queries --------------------------------------------------------------------

    def bricks(self, brick_type: Optional[BrickType] = None) -> Iterator[Brick]:
        """Iterate plugged bricks, optionally filtered by type."""
        for slot in self._slots:
            if slot is None:
                continue
            if brick_type is None or slot.brick_type is brick_type:
                yield slot

    def contains(self, brick: Brick) -> bool:
        """True when *brick* is seated in this tray."""
        return any(slot is brick for slot in self._slots)

    def __repr__(self) -> str:
        return (f"Tray({self.tray_id!r}, {self.occupied_slots}/"
                f"{self.slot_count} slots occupied)")
