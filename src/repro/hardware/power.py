"""Power states and power accounting.

The TCO study of Section VI rests on one mechanism: individually powered
units (bricks in dReDBox, whole servers conventionally) can be **powered
off** when unutilized.  Every modelled component therefore carries a
:class:`PowerProfile` (draw per state) and a :class:`PowerState`; a
:class:`PowerAccountant` sums draw over a set of components.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.errors import PowerStateError


class PowerState(enum.Enum):
    """Operational power state of a component."""

    #: Fully powered down; draws :attr:`PowerProfile.off_w`.
    OFF = "off"
    #: Powered but not serving load.
    IDLE = "idle"
    #: Powered and serving load.
    ACTIVE = "active"


#: Legal state transitions. Off components must be powered on (to idle)
#: before they can go active, mirroring brick bring-up in the prototype.
_ALLOWED_TRANSITIONS: dict[PowerState, frozenset[PowerState]] = {
    PowerState.OFF: frozenset({PowerState.IDLE}),
    PowerState.IDLE: frozenset({PowerState.OFF, PowerState.ACTIVE}),
    PowerState.ACTIVE: frozenset({PowerState.IDLE}),
}


@dataclass(frozen=True)
class PowerProfile:
    """Per-state electrical draw of a component, in watts."""

    active_w: float
    idle_w: float
    off_w: float = 0.0

    def __post_init__(self) -> None:
        if self.off_w < 0 or self.idle_w < 0 or self.active_w < 0:
            raise ValueError("power draws must be non-negative")
        if not (self.off_w <= self.idle_w <= self.active_w):
            raise ValueError(
                "expected off_w <= idle_w <= active_w, got "
                f"{self.off_w}/{self.idle_w}/{self.active_w}")

    def draw(self, state: PowerState) -> float:
        """Draw in watts for *state*."""
        if state is PowerState.ACTIVE:
            return self.active_w
        if state is PowerState.IDLE:
            return self.idle_w
        return self.off_w


class Powered:
    """Mixin giving a component a power profile and managed state.

    Components start :attr:`PowerState.IDLE` (the prototype boots every
    plugged brick; orchestration later powers the unused ones off).
    """

    def __init__(self, power_profile: PowerProfile,
                 initial_state: PowerState = PowerState.IDLE) -> None:
        self.power_profile = power_profile
        self._power_state = initial_state

    @property
    def power_state(self) -> PowerState:
        return self._power_state

    @property
    def power_draw_w(self) -> float:
        """Instantaneous draw in watts."""
        return self.power_profile.draw(self._power_state)

    @property
    def is_powered(self) -> bool:
        return self._power_state is not PowerState.OFF

    def set_power_state(self, new_state: PowerState) -> None:
        """Transition to *new_state*, enforcing the legal state machine."""
        if new_state is self._power_state:
            return
        if new_state not in _ALLOWED_TRANSITIONS[self._power_state]:
            raise PowerStateError(
                f"illegal power transition {self._power_state.value} -> "
                f"{new_state.value}")
        self._power_state = new_state

    def power_off(self) -> None:
        """Power the component down (via idle if currently active)."""
        if self._power_state is PowerState.ACTIVE:
            self.set_power_state(PowerState.IDLE)
        if self._power_state is PowerState.IDLE:
            self.set_power_state(PowerState.OFF)

    def power_on(self) -> None:
        """Bring an off component to idle; no-op when already powered."""
        if self._power_state is PowerState.OFF:
            self.set_power_state(PowerState.IDLE)


class HasPowerDraw(Protocol):
    """Anything that reports an instantaneous power draw."""

    @property
    def power_draw_w(self) -> float: ...


class PowerAccountant:
    """Aggregates instantaneous draw over a collection of components."""

    def __init__(self, components: Iterable[HasPowerDraw] = ()) -> None:
        self._components: list[HasPowerDraw] = list(components)

    def attach(self, component: HasPowerDraw) -> None:
        """Register *component* for accounting."""
        self._components.append(component)

    @property
    def component_count(self) -> int:
        return len(self._components)

    def total_draw_w(self) -> float:
        """Sum of instantaneous draw across all registered components."""
        return sum(c.power_draw_w for c in self._components)

    def energy_j(self, duration_s: float) -> float:
        """Energy in joules if the current draw persisted for *duration_s*."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        return self.total_draw_w() * duration_s
