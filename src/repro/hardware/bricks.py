"""The three dReDBox brick types.

Section II defines the principal building blocks:

* **dCOMPUBRICK** — a Zynq Ultrascale+ MPSoC with a quad-core ARMv8 APU,
  local off-chip DDR, the Transaction Glue Logic + RMST on the data path,
  and GTH transceivers into both the circuit-based (CBN) and experimental
  packet-based (PBN) networks.
* **dMEMBRICK** — a large pool of DDR/HMC modules behind glue logic and a
  local switch, partitionable among compute bricks.
* **dACCELBRICK** — static + dynamic PL infrastructure hosting a
  reconfigurable accelerator slot (detailed in
  :mod:`repro.hardware.accelerator`).

Bricks are individually powered units — the power-off granularity of the
TCO study — so each derives from the :class:`~repro.hardware.power.Powered`
mixin.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.hardware.accelerator import AcceleratorSlot
from repro.hardware.glue import (
    DEFAULT_GLUE_TIMINGS,
    ComputeGlueLogic,
    GlueLogicTimings,
    MemoryGlueLogic,
)
from repro.hardware.mbo import MidboardOptics
from repro.hardware.memory_tech import (
    DDR4_2400,
    MemoryModule,
    MemoryTechnology,
)
from repro.hardware.ports import PortGroup, PortRole, TransceiverPort
from repro.hardware.power import Powered, PowerProfile
from repro.hardware.rmst import DEFAULT_RMST_ENTRIES, RemoteMemorySegmentTable
from repro.units import gib


class BrickType(enum.Enum):
    """The three resource classes pooled by the architecture."""

    COMPUTE = "dCOMPUBRICK"
    MEMORY = "dMEMBRICK"
    ACCELERATOR = "dACCELBRICK"


#: Power profiles for the Zynq US+ based brick boards.  Calibrated to
#: typical MPSoC evaluation-board figures: the compute brick runs the APU
#: flat out, the memory brick is dominated by DRAM + PL transceivers, the
#: accelerator brick by the programmable logic fabric.
DEFAULT_BRICK_POWER: dict[BrickType, PowerProfile] = {
    BrickType.COMPUTE: PowerProfile(active_w=22.0, idle_w=8.0),
    BrickType.MEMORY: PowerProfile(active_w=18.0, idle_w=7.0),
    BrickType.ACCELERATOR: PowerProfile(active_w=30.0, idle_w=10.0),
}

#: Default number of CBN (circuit) transceivers per brick — one per MBO
#: channel on the prototype.
DEFAULT_CBN_PORTS = 8
#: Default number of PBN (packet) transceivers per brick.
DEFAULT_PBN_PORTS = 2


def _build_ports(brick_id: str, role: PortRole, count: int,
                 rate_bps: float) -> PortGroup:
    prefix = "cbn" if role is PortRole.CIRCUIT else "pbn"
    ports = [
        TransceiverPort(f"{brick_id}.{prefix}{i}", role, rate_bps)
        for i in range(count)
    ]
    return PortGroup(ports)


class Brick(Powered):
    """Common state of every hot-pluggable module."""

    brick_type: BrickType

    def __init__(self, brick_id: str, brick_type: BrickType,
                 cbn_ports: int = DEFAULT_CBN_PORTS,
                 pbn_ports: int = DEFAULT_PBN_PORTS,
                 port_rate_bps: float = TransceiverPort.DEFAULT_RATE_BPS,
                 power_profile: Optional[PowerProfile] = None) -> None:
        Powered.__init__(self, power_profile or DEFAULT_BRICK_POWER[brick_type])
        if not brick_id:
            raise ConfigurationError("brick id must be non-empty")
        self.brick_id = brick_id
        self.brick_type = brick_type
        self.circuit_ports = _build_ports(
            brick_id, PortRole.CIRCUIT, cbn_ports, port_rate_bps)
        self.packet_ports = _build_ports(
            brick_id, PortRole.PACKET, pbn_ports, port_rate_bps)
        self.mbo = MidboardOptics(f"{brick_id}.mbo", channel_count=cbn_ports)
        for index, port in enumerate(self.circuit_ports):
            self.mbo.attach_port(index, port)
        #: Set by :class:`~repro.hardware.tray.Tray` on plug-in.
        self.tray_id: Optional[str] = None
        self.slot_index: Optional[int] = None

    @property
    def is_plugged(self) -> bool:
        """True once the brick sits in a tray slot."""
        return self.tray_id is not None

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.brick_id!r}, "
                f"power={self.power_state.value})")


class ComputeBrick(Brick):
    """dCOMPUBRICK: the software-execution module.

    Attributes:
        core_count: APU cores available to VMs (quad-core A53 on the
            prototype; configurable for scaled studies).
        local_memory: Off-chip DDR for low-latency instruction/data access.
        rmst: The Remote Memory Segment Table consulted by the TGL.
        glue: The Transaction Glue Logic steering remote transactions.
    """

    def __init__(self, brick_id: str,
                 core_count: int = 4,
                 local_memory_bytes: int = gib(4),
                 local_technology: MemoryTechnology = DDR4_2400,
                 rmst_entries: int = DEFAULT_RMST_ENTRIES,
                 glue_timings: GlueLogicTimings = DEFAULT_GLUE_TIMINGS,
                 **kwargs) -> None:
        super().__init__(brick_id, BrickType.COMPUTE, **kwargs)
        if core_count < 1:
            raise ConfigurationError(f"core count must be >= 1, got {core_count}")
        self.core_count = core_count
        self.local_memory = MemoryModule(
            f"{brick_id}.dram", local_technology, local_memory_bytes)
        self.rmst = RemoteMemorySegmentTable(rmst_entries)
        self.glue = ComputeGlueLogic(self.rmst, glue_timings)

    @property
    def local_memory_bytes(self) -> int:
        return self.local_memory.capacity_bytes

    @property
    def remote_memory_bytes(self) -> int:
        """Remote memory currently reachable through the RMST."""
        return self.rmst.mapped_bytes()


class MemoryBrick(Brick):
    """dMEMBRICK: a pool of memory modules behind glue logic.

    The brick "can be dimensioned in terms of memory size as well as the
    number of memory controllers it supports" — both are constructor
    parameters.  Mixed DDR/HMC population is allowed, as the glue logic
    interfaces either controller IP over AXI (§II).
    """

    def __init__(self, brick_id: str,
                 module_count: int = 4,
                 module_bytes: int = gib(16),
                 technology: MemoryTechnology = DDR4_2400,
                 technologies: Optional[list[MemoryTechnology]] = None,
                 glue_timings: GlueLogicTimings = DEFAULT_GLUE_TIMINGS,
                 **kwargs) -> None:
        super().__init__(brick_id, BrickType.MEMORY, **kwargs)
        if module_count < 1:
            raise ConfigurationError(
                f"memory brick needs >= 1 module, got {module_count}")
        if technologies is not None and len(technologies) != module_count:
            raise ConfigurationError(
                f"got {len(technologies)} technologies for {module_count} modules")
        self.modules: list[MemoryModule] = []
        for index in range(module_count):
            tech = technologies[index] if technologies else technology
            self.modules.append(
                MemoryModule(f"{brick_id}.mod{index}", tech, module_bytes))
        self.glue = MemoryGlueLogic(self.modules, glue_timings)

    @property
    def capacity_bytes(self) -> int:
        """Total pooled capacity across all modules."""
        return sum(m.capacity_bytes for m in self.modules)

    @property
    def controller_count(self) -> int:
        return len(self.modules)


class AcceleratorBrick(Brick):
    """dACCELBRICK: reconfigurable near-data accelerator host.

    The brick carries one dynamic reconfigurable slot (wrapped accelerator
    region) plus static infrastructure: local APU running the thin
    reconfiguration middleware, PL DDR for accelerator-local data, and the
    network-facing glue (Fig. 5).
    """

    def __init__(self, brick_id: str,
                 pl_memory_bytes: int = gib(8),
                 pl_technology: MemoryTechnology = DDR4_2400,
                 slot_resources: int = 100,
                 **kwargs) -> None:
        super().__init__(brick_id, BrickType.ACCELERATOR, **kwargs)
        self.pl_memory = MemoryModule(
            f"{brick_id}.pl-ddr", pl_technology, pl_memory_bytes)
        self.slot = AcceleratorSlot(f"{brick_id}.slot0", slot_resources)

    @property
    def hosts_accelerator(self) -> bool:
        return self.slot.is_configured
