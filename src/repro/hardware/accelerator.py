"""dACCELBRICK dynamic infrastructure: slot, wrapper, PCAP middleware.

Section II: the dACCELBRICK hosts a "predefined, reconfigurable slot within
the PL" behind an accelerator wrapper template with (a) control/status
registers, (b) transceivers for direct external communication, and (c) a
local AXI DDR controller.  A thin middleware on the local APU (i) receives
and stores bitstreams from remote dCOMPUBRICKs and (ii) reconfigures the PL
through the PCAP port.

The model keeps the full life cycle: bitstream upload -> store -> PCAP
reconfiguration (with a size-proportional latency) -> accelerator
start/stop via the wrapper registers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, HardwareError
from repro.units import mib

#: PCAP configuration throughput.  Zynq US+ PCAP sustains ~400 MB/s wide
#: configuration writes.
PCAP_BANDWIDTH_BPS = 400e6 * 8

#: Fixed overhead per reconfiguration (clear, handshake, CRC check).
PCAP_FIXED_OVERHEAD_S = 2e-3


@dataclass(frozen=True)
class Bitstream:
    """A partial bitstream implementing one accelerator function.

    Attributes:
        name: Function identity, e.g. ``"video-pipeline-v2"``.
        size_bytes: Bitstream size; drives PCAP programming time.
        resource_cost: Abstract PL resource units the function occupies
            (must fit the slot's budget).
    """

    name: str
    size_bytes: int = mib(8)
    resource_cost: int = 60

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("bitstream size must be positive")
        if self.resource_cost <= 0:
            raise ConfigurationError("resource cost must be positive")

    @property
    def pcap_program_time_s(self) -> float:
        """Time to push this bitstream through the PCAP port."""
        return PCAP_FIXED_OVERHEAD_S + (self.size_bytes * 8) / PCAP_BANDWIDTH_BPS


class WrapperRegister(enum.Enum):
    """Control/status registers exposed by the accelerator wrapper."""

    CONTROL = "control"
    STATUS = "status"
    DATA_BASE = "data_base"
    DATA_LENGTH = "data_length"


class AcceleratorState(enum.Enum):
    """Run state of the configured accelerator."""

    EMPTY = "empty"
    CONFIGURED = "configured"
    RUNNING = "running"


class AcceleratorWrapper:
    """The wrapper template around the reconfigurable region.

    Exposes the register file that glue logic reads/writes for control and
    status monitoring.
    """

    def __init__(self) -> None:
        self._registers: dict[WrapperRegister, int] = {
            reg: 0 for reg in WrapperRegister}

    def write(self, register: WrapperRegister, value: int) -> None:
        """Glue-logic register write."""
        if value < 0:
            raise HardwareError(f"register value must be non-negative: {value}")
        self._registers[register] = value

    def read(self, register: WrapperRegister) -> int:
        """Glue-logic register read."""
        return self._registers[register]


class AcceleratorSlot:
    """The dynamic reconfigurable region plus its wrapper."""

    def __init__(self, slot_id: str, resource_budget: int = 100) -> None:
        if resource_budget <= 0:
            raise ConfigurationError("slot resource budget must be positive")
        self.slot_id = slot_id
        self.resource_budget = resource_budget
        self.wrapper = AcceleratorWrapper()
        self._bitstream: Optional[Bitstream] = None
        self._state = AcceleratorState.EMPTY
        self.reconfiguration_count = 0

    @property
    def state(self) -> AcceleratorState:
        return self._state

    @property
    def is_configured(self) -> bool:
        return self._state is not AcceleratorState.EMPTY

    @property
    def bitstream(self) -> Optional[Bitstream]:
        return self._bitstream

    def configure(self, bitstream: Bitstream) -> float:
        """Program *bitstream* into the slot; returns the PCAP latency.

        A running accelerator must be stopped first; an oversized function
        is rejected against the slot's resource budget.
        """
        if self._state is AcceleratorState.RUNNING:
            raise HardwareError(
                f"slot {self.slot_id}: stop the accelerator before reconfiguring")
        if bitstream.resource_cost > self.resource_budget:
            raise HardwareError(
                f"slot {self.slot_id}: {bitstream.name} needs "
                f"{bitstream.resource_cost} units, budget is {self.resource_budget}")
        self._bitstream = bitstream
        self._state = AcceleratorState.CONFIGURED
        self.reconfiguration_count += 1
        return bitstream.pcap_program_time_s

    def start(self) -> None:
        """Raise the wrapper CONTROL run bit."""
        if self._state is not AcceleratorState.CONFIGURED:
            raise HardwareError(
                f"slot {self.slot_id}: cannot start from state {self._state.value}")
        self._state = AcceleratorState.RUNNING
        self.wrapper.write(WrapperRegister.CONTROL, 1)

    def stop(self) -> None:
        """Clear the run bit; the slot stays configured."""
        if self._state is not AcceleratorState.RUNNING:
            raise HardwareError(
                f"slot {self.slot_id}: cannot stop from state {self._state.value}")
        self._state = AcceleratorState.CONFIGURED
        self.wrapper.write(WrapperRegister.CONTROL, 0)

    def clear(self) -> None:
        """Blank the region (e.g. before powering the brick down)."""
        if self._state is AcceleratorState.RUNNING:
            self.stop()
        self._bitstream = None
        self._state = AcceleratorState.EMPTY


class ReconfigurationMiddleware:
    """The thin APU middleware of §II: bitstream store + PCAP driver.

    Remote dCOMPUBRICKs push bitstreams over the network; the middleware
    caches them locally and programs the slot on demand.
    """

    def __init__(self, slot: AcceleratorSlot) -> None:
        self.slot = slot
        self._store: dict[str, Bitstream] = {}

    @property
    def stored_bitstreams(self) -> list[str]:
        """Names of locally cached bitstreams."""
        return sorted(self._store)

    def receive_bitstream(self, bitstream: Bitstream) -> None:
        """Store a bitstream pushed by a remote compute brick.

        Re-uploading a name replaces the stored image (a newer build of
        the same function).
        """
        self._store[bitstream.name] = bitstream

    def drop_bitstream(self, name: str) -> None:
        """Evict a cached bitstream."""
        if name not in self._store:
            raise HardwareError(f"no stored bitstream named {name!r}")
        del self._store[name]

    def reconfigure(self, name: str) -> float:
        """Program the named cached bitstream; returns PCAP latency."""
        if name not in self._store:
            raise HardwareError(
                f"bitstream {name!r} has not been uploaded to this brick")
        return self.slot.configure(self._store[name])
