"""Hardware models of the dReDBox building blocks.

This package models the physical layer of the prototype described in
Section II of the paper:

* :mod:`repro.hardware.power` — power states and per-component power draw.
* :mod:`repro.hardware.memory_tech` — DDR/HMC technology parameter sets and
  memory-controller models (the dMEMBRICK supports both, §II).
* :mod:`repro.hardware.ports` — GTH high-speed transceiver ports.
* :mod:`repro.hardware.mbo` — the 8-channel SiP mid-board optics (§III).
* :mod:`repro.hardware.rmst` — the Remote Memory Segment Table (§II).
* :mod:`repro.hardware.glue` — Transaction Glue Logic data-path models.
* :mod:`repro.hardware.bricks` — dCOMPUBRICK / dMEMBRICK / dACCELBRICK.
* :mod:`repro.hardware.accelerator` — accelerator slot + PCAP middleware.
* :mod:`repro.hardware.tray` / :mod:`repro.hardware.rack` — packaging and
  hot-plug.
"""

from repro.hardware.accelerator import (
    AcceleratorSlot,
    AcceleratorWrapper,
    Bitstream,
    ReconfigurationMiddleware,
)
from repro.hardware.bricks import (
    AcceleratorBrick,
    Brick,
    BrickType,
    ComputeBrick,
    MemoryBrick,
)
from repro.hardware.glue import (
    ComputeGlueLogic,
    GlueLogicTimings,
    MemoryGlueLogic,
)
from repro.hardware.mbo import MidboardOptics, OpticalChannel
from repro.hardware.memory_tech import (
    DDR4_2400,
    HMC_GEN2,
    MemoryController,
    MemoryModule,
    MemoryTechnology,
)
from repro.hardware.ports import PortRole, PortState, TransceiverPort
from repro.hardware.power import PowerProfile, PowerState, PowerAccountant
from repro.hardware.rack import DEFAULT_FIBRE_PLAN, FibrePlan, Rack
from repro.hardware.rmst import RemoteMemorySegmentTable, SegmentEntry
from repro.hardware.tray import Tray

__all__ = [
    "AcceleratorBrick",
    "AcceleratorSlot",
    "AcceleratorWrapper",
    "Bitstream",
    "Brick",
    "BrickType",
    "ComputeBrick",
    "ComputeGlueLogic",
    "DDR4_2400",
    "DEFAULT_FIBRE_PLAN",
    "FibrePlan",
    "GlueLogicTimings",
    "HMC_GEN2",
    "MemoryBrick",
    "MemoryController",
    "MemoryGlueLogic",
    "MemoryModule",
    "MemoryTechnology",
    "MidboardOptics",
    "OpticalChannel",
    "PortRole",
    "PortState",
    "PowerAccountant",
    "PowerProfile",
    "PowerState",
    "Rack",
    "ReconfigurationMiddleware",
    "RemoteMemorySegmentTable",
    "SegmentEntry",
    "TransceiverPort",
    "Tray",
]
