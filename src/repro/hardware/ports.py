"""High-speed transceiver ports (GTH) on brick edges.

Each brick exposes a set of GTH serial transceivers (Fig. 3-5 of the
paper).  A port belongs to either the circuit-based network (CBN) or the
packet-based network (PBN) and can be wired to exactly one far end at a
time — on the CBN that wiring is an optical circuit through the rack
switch, on the PBN it is a static link into the packet fabric.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import PortError
from repro.units import gbps


class PortRole(enum.Enum):
    """Which interconnect plane the port serves."""

    #: Circuit-based network: carried over the optical circuit switch.
    CIRCUIT = "circuit"
    #: Packet-based network: experimental packet-switched plane (§III).
    PACKET = "packet"


class PortState(enum.Enum):
    """Wiring state of a transceiver port."""

    FREE = "free"
    CONNECTED = "connected"


class TransceiverPort:
    """One GTH serial transceiver lane on a brick.

    Attributes:
        port_id: Globally unique id, e.g. ``"tray0.slot1.cbn3"``.
        role: CBN or PBN membership.
        rate_bps: Line rate in bits/second (the prototype links ran at
            10 Gb/s; §III reports ongoing work on faster transceivers).
    """

    DEFAULT_RATE_BPS = gbps(10)

    def __init__(self, port_id: str, role: PortRole,
                 rate_bps: float = DEFAULT_RATE_BPS) -> None:
        if rate_bps <= 0:
            raise PortError(f"port rate must be positive, got {rate_bps}")
        self.port_id = port_id
        self.role = role
        self.rate_bps = rate_bps
        self._state = PortState.FREE
        self._peer: Optional["TransceiverPort"] = None

    @property
    def state(self) -> PortState:
        return self._state

    @property
    def is_free(self) -> bool:
        return self._state is PortState.FREE

    @property
    def peer(self) -> Optional["TransceiverPort"]:
        """The far-end port when connected, else ``None``."""
        return self._peer

    def connect(self, peer: "TransceiverPort") -> None:
        """Wire this port to *peer* (symmetric)."""
        if self is peer:
            raise PortError(f"port {self.port_id} cannot connect to itself")
        if not self.is_free:
            raise PortError(f"port {self.port_id} is already connected")
        if not peer.is_free:
            raise PortError(f"port {peer.port_id} is already connected")
        if self.role is not peer.role:
            raise PortError(
                f"cannot wire {self.role.value} port {self.port_id} to "
                f"{peer.role.value} port {peer.port_id}")
        self._state = PortState.CONNECTED
        self._peer = peer
        peer._state = PortState.CONNECTED
        peer._peer = self

    def disconnect(self) -> None:
        """Tear down the wiring (symmetric); no-op counterpart is illegal."""
        if self._state is not PortState.CONNECTED or self._peer is None:
            raise PortError(f"port {self.port_id} is not connected")
        peer = self._peer
        self._peer = None
        self._state = PortState.FREE
        peer._peer = None
        peer._state = PortState.FREE

    def serialization_delay(self, num_bytes: int) -> float:
        """Time to clock *num_bytes* onto the serial lane."""
        if num_bytes < 0:
            raise PortError(f"size must be non-negative, got {num_bytes}")
        return (num_bytes * 8) / self.rate_bps

    def __repr__(self) -> str:
        peer = self._peer.port_id if self._peer else None
        return (f"TransceiverPort({self.port_id!r}, {self.role.value}, "
                f"{self.rate_bps / 1e9:.0f}G, peer={peer})")


class PortGroup:
    """The ports of one role on one brick, with free-port allocation."""

    def __init__(self, ports: list[TransceiverPort]) -> None:
        self._ports = list(ports)
        roles = {p.role for p in self._ports}
        if len(roles) > 1:
            raise PortError("a port group must contain a single role")

    def __len__(self) -> int:
        return len(self._ports)

    def __iter__(self):
        return iter(self._ports)

    @property
    def free_ports(self) -> list[TransceiverPort]:
        return [p for p in self._ports if p.is_free]

    @property
    def connected_ports(self) -> list[TransceiverPort]:
        return [p for p in self._ports if not p.is_free]

    def allocate(self) -> TransceiverPort:
        """Return the first free port; raises :class:`PortError` if none."""
        for port in self._ports:
            if port.is_free:
                return port
        raise PortError("no free port available in group")

    def by_id(self, port_id: str) -> TransceiverPort:
        for port in self._ports:
            if port.port_id == port_id:
                return port
        raise PortError(f"no port named {port_id!r} in group")
