"""Transaction Glue Logic (TGL) data-path models.

The TGL is the dReDBox-specific IP sitting between the APU's master ports
and the interconnect (Fig. 3).  On the compute brick it matches each remote
transaction against the RMST and forwards it to the outgoing high-speed
port of an already-established circuit.  On the memory brick the glue logic
forwards ingress transactions to the local memory controllers and egress
responses back to the local switch (Fig. 4).

The classes here are *combinational* models: they resolve steering
decisions and account fixed latencies; queueing and timing happen in the
network/memory layers that drive them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SegmentTableError
from repro.hardware.rmst import RemoteMemorySegmentTable, SegmentEntry
from repro.units import nanoseconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.hardware.memory_tech import MemoryModule


@dataclass(frozen=True)
class GlueLogicTimings:
    """Fixed latencies of the glue-logic pipeline stages.

    Defaults reflect a PL implementation clocked at a few hundred MHz:
    a handful of pipeline stages per decision.
    """

    #: APU master-port to TGL ingress (AXI handshake).
    issue_latency_s: float = nanoseconds(50)
    #: RMST associative lookup + header generation on the compute brick.
    lookup_latency_s: float = nanoseconds(30)
    #: Steering through the glue mux to the selected egress port.
    forward_latency_s: float = nanoseconds(20)
    #: Memory-brick glue: ingress decode to the memory-controller AXI port.
    ingress_latency_s: float = nanoseconds(40)
    #: Memory-brick glue: egress response back toward the local switch.
    egress_latency_s: float = nanoseconds(40)


#: Library-wide default timing set.
DEFAULT_GLUE_TIMINGS = GlueLogicTimings()


@dataclass(frozen=True)
class SteeringDecision:
    """Outcome of a compute-brick TGL lookup for one transaction."""

    entry: SegmentEntry
    remote_address: int
    egress_port_id: str
    latency_s: float


class ComputeGlueLogic:
    """Compute-brick TGL: RMST lookup + egress steering."""

    def __init__(self, rmst: RemoteMemorySegmentTable,
                 timings: GlueLogicTimings = DEFAULT_GLUE_TIMINGS) -> None:
        self.rmst = rmst
        self.timings = timings
        self.transactions_steered = 0
        self.lookup_misses = 0

    def steer(self, address: int) -> SteeringDecision:
        """Resolve the egress port and remote address for *address*.

        Raises :class:`SegmentTableError` on an RMST miss (an unmapped
        remote access — a bus error in the prototype).
        """
        try:
            entry = self.rmst.lookup(address)
        except SegmentTableError:
            self.lookup_misses += 1
            raise
        self.transactions_steered += 1
        latency = (self.timings.issue_latency_s
                   + self.timings.lookup_latency_s
                   + self.timings.forward_latency_s)
        return SteeringDecision(
            entry=entry,
            remote_address=entry.translate(address),
            egress_port_id=entry.egress_port_id,
            latency_s=latency,
        )

    @property
    def request_path_latency_s(self) -> float:
        """Fixed TGL latency on the outbound (request) path."""
        return (self.timings.issue_latency_s
                + self.timings.lookup_latency_s
                + self.timings.forward_latency_s)

    @property
    def response_path_latency_s(self) -> float:
        """Fixed TGL latency returning a response to the APU."""
        return self.timings.issue_latency_s


class MemoryGlueLogic:
    """Memory-brick glue: ingress to controllers, egress to the switch.

    The glue logic selects the memory module whose address window covers
    the transaction offset.  Windows are laid out back to back in module
    order, matching the flat AXI address map the controllers occupy.
    """

    def __init__(self, modules: "list[MemoryModule]",
                 timings: GlueLogicTimings = DEFAULT_GLUE_TIMINGS) -> None:
        self.modules = list(modules)
        self.timings = timings
        self.ingress_count = 0
        self.egress_count = 0

    def module_for_offset(self, offset: int) -> "tuple[MemoryModule, int]":
        """Map a brick-level byte offset to ``(module, in-module offset)``."""
        if offset < 0:
            raise SegmentTableError(f"offset must be non-negative, got {offset}")
        window_base = 0
        for module in self.modules:
            window_end = window_base + module.capacity_bytes
            if window_base <= offset < window_end:
                return module, offset - window_base
            window_base = window_end
        raise SegmentTableError(
            f"offset {offset:#x} exceeds brick capacity {window_base:#x}")

    def ingress(self, offset: int) -> "tuple[MemoryModule, int, float]":
        """Steer an ingress transaction; returns module, offset, latency."""
        module, local_offset = self.module_for_offset(offset)
        self.ingress_count += 1
        return module, local_offset, self.timings.ingress_latency_s

    def egress_latency_s(self) -> float:
        """Fixed latency forwarding a response to the local switch."""
        self.egress_count += 1
        return self.timings.egress_latency_s

    @property
    def total_capacity_bytes(self) -> int:
        return sum(m.capacity_bytes for m in self.modules)
