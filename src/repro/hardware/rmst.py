"""Remote Memory Segment Table (RMST).

Section II: "The Remote Memory Segment Table (RMST) is a fully associative
structure, whose entries identify large and contiguous portions of remote
memory space hosted in dMEMBRICKs."  The compute brick's Transaction Glue
Logic consults the RMST on every remote transaction to find the destination
segment and the outgoing high-speed port whose circuit leads to it.

The model is a bounded, fully associative table of non-overlapping
``[base, base+size)`` ranges in the compute brick's physical address space,
each mapping to ``(remote brick, remote offset, egress port)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import SegmentTableError

#: Default number of RMST entries.  The structure identifies "large and
#: contiguous" regions, so a small associative table suffices in hardware.
DEFAULT_RMST_ENTRIES = 32


@dataclass(frozen=True)
class SegmentEntry:
    """One RMST mapping.

    Attributes:
        segment_id: Identifier assigned by orchestration.
        base: First local physical address covered by the segment.
        size: Segment length in bytes.
        remote_brick_id: The dMEMBRICK hosting the backing memory.
        remote_offset: Byte offset of the backing range on that brick.
        egress_port_id: The local CBN port whose circuit reaches the brick.
    """

    segment_id: str
    base: int
    size: int
    remote_brick_id: str
    remote_offset: int
    egress_port_id: str

    def __post_init__(self) -> None:
        if self.base < 0 or self.remote_offset < 0:
            raise SegmentTableError("addresses must be non-negative")
        if self.size <= 0:
            raise SegmentTableError(f"segment size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """One past the last covered local address."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True when *address* falls inside the segment."""
        return self.base <= address < self.end

    def translate(self, address: int) -> int:
        """Map a covered local address to the remote-brick offset."""
        if not self.contains(address):
            raise SegmentTableError(
                f"address {address:#x} outside segment {self.segment_id}")
        return self.remote_offset + (address - self.base)

    def overlaps(self, other: "SegmentEntry") -> bool:
        """True when the local ranges of the two entries intersect."""
        return self.base < other.end and other.base < self.end


class RemoteMemorySegmentTable:
    """Bounded, fully associative table of :class:`SegmentEntry` rows."""

    def __init__(self, capacity: int = DEFAULT_RMST_ENTRIES) -> None:
        if capacity < 1:
            raise SegmentTableError(f"RMST needs >= 1 entry, got {capacity}")
        self.capacity = capacity
        self._entries: dict[str, SegmentEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SegmentEntry]:
        return iter(self._entries.values())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def install(self, entry: SegmentEntry) -> None:
        """Install a mapping; rejects duplicates, overlap and overflow."""
        if entry.segment_id in self._entries:
            raise SegmentTableError(
                f"segment {entry.segment_id!r} is already installed")
        if self.is_full:
            raise SegmentTableError(
                f"RMST full ({self.capacity} entries); evict before installing")
        for existing in self._entries.values():
            if entry.overlaps(existing):
                raise SegmentTableError(
                    f"segment {entry.segment_id!r} [{entry.base:#x},"
                    f"{entry.end:#x}) overlaps {existing.segment_id!r} "
                    f"[{existing.base:#x},{existing.end:#x})")
        self._entries[entry.segment_id] = entry

    def evict(self, segment_id: str) -> SegmentEntry:
        """Remove and return the mapping for *segment_id*."""
        try:
            return self._entries.pop(segment_id)
        except KeyError:
            raise SegmentTableError(
                f"segment {segment_id!r} is not installed") from None

    def get(self, segment_id: str) -> SegmentEntry:
        """The entry for *segment_id*."""
        try:
            return self._entries[segment_id]
        except KeyError:
            raise SegmentTableError(
                f"segment {segment_id!r} is not installed") from None

    def lookup(self, address: int) -> SegmentEntry:
        """Associative match of *address* against all entries.

        Raises :class:`SegmentTableError` on a miss — in hardware this is
        the bus error the kernel would see for an unmapped access.
        """
        entry = self.lookup_or_none(address)
        if entry is None:
            raise SegmentTableError(f"address {address:#x} misses the RMST")
        return entry

    def lookup_or_none(self, address: int) -> Optional[SegmentEntry]:
        """Like :meth:`lookup` but returns ``None`` on a miss."""
        for entry in self._entries.values():
            if entry.contains(address):
                return entry
        return None

    def segments_for_brick(self, remote_brick_id: str) -> list[SegmentEntry]:
        """All entries backed by the given dMEMBRICK."""
        return [e for e in self._entries.values()
                if e.remote_brick_id == remote_brick_id]

    def mapped_bytes(self) -> int:
        """Total remote bytes currently reachable through the table."""
        return sum(e.size for e in self._entries.values())
