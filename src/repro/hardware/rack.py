"""Rack-level packaging: trays plus the shared optical switch fabric.

The rack is the system boundary of the prototype ("datacentre-in-a-box"):
trays of bricks whose cross-tray memory traffic traverses the in-rack
optical circuit switch (§II-III).  The switch itself lives in
:mod:`repro.network.optical.switch`; the rack holds the inventory and
answers topology queries (same tray or not, distances for propagation
delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import SlotError
from repro.hardware.bricks import Brick, BrickType
from repro.hardware.tray import Tray

#: Assumed fibre run between a tray MBO and the rack optical switch, metres.
#: A rack is ~2 m tall; patch fibres add slack.
TRAY_TO_SWITCH_FIBRE_M = 5.0

#: Assumed fibre run between a rack switch uplink and the pod-level
#: inter-rack switch, metres (an aisle-scale structured-cabling run).
RACK_TO_POD_SWITCH_FIBRE_M = 50.0


@dataclass(frozen=True)
class FibrePlan:
    """Per-hop fibre lengths of the packaging hierarchy, metres.

    Generalizes the old single ``TRAY_TO_SWITCH_FIBRE_M`` constant into a
    hop table: every tier of the interconnect (tray backplane, tray to
    rack switch, rack switch to pod switch) carries its own run length,
    so end-to-end fibre is composed per hop instead of hard-coded.
    """

    intra_tray_m: float = 0.0
    tray_to_switch_m: float = TRAY_TO_SWITCH_FIBRE_M
    rack_to_pod_switch_m: float = RACK_TO_POD_SWITCH_FIBRE_M

    def __post_init__(self) -> None:
        for name in ("intra_tray_m", "tray_to_switch_m",
                     "rack_to_pod_switch_m"):
            if getattr(self, name) < 0:
                raise SlotError(f"fibre run {name} must be non-negative")

    @property
    def intra_rack_m(self) -> float:
        """Fibre of a tray -> rack switch -> tray light path."""
        return 2 * self.tray_to_switch_m

    @property
    def inter_rack_m(self) -> float:
        """Fibre of a tray -> rack switch -> pod switch -> rack switch
        -> tray light path."""
        return 2 * self.tray_to_switch_m + 2 * self.rack_to_pod_switch_m


DEFAULT_FIBRE_PLAN = FibrePlan()


class Rack:
    """A rack of dReDBox trays."""

    def __init__(self, rack_id: str,
                 fibre_plan: FibrePlan = DEFAULT_FIBRE_PLAN) -> None:
        self.rack_id = rack_id
        self.fibre_plan = fibre_plan
        #: Position index within a pod; assigned by ``Pod.add_rack``.
        self.pod_position: Optional[int] = None
        #: Owning pod id; assigned by ``Pod.add_rack``.
        self.pod_id: Optional[str] = None
        self._trays: dict[str, Tray] = {}

    # -- tray management ---------------------------------------------------------

    def add_tray(self, tray: Tray) -> Tray:
        """Mount *tray*; tray ids must be unique within the rack."""
        if tray.tray_id in self._trays:
            raise SlotError(
                f"rack {self.rack_id} already has a tray {tray.tray_id!r}")
        self._trays[tray.tray_id] = tray
        return tray

    def new_tray(self, tray_id: Optional[str] = None,
                 slot_count: Optional[int] = None) -> Tray:
        """Create, mount and return a tray with an auto-generated id."""
        if tray_id is None:
            tray_id = f"{self.rack_id}.tray{len(self._trays)}"
        kwargs = {} if slot_count is None else {"slot_count": slot_count}
        return self.add_tray(Tray(tray_id, **kwargs))

    def tray(self, tray_id: str) -> Tray:
        try:
            return self._trays[tray_id]
        except KeyError:
            raise SlotError(
                f"rack {self.rack_id} has no tray {tray_id!r}") from None

    @property
    def trays(self) -> list[Tray]:
        return list(self._trays.values())

    # -- brick queries -----------------------------------------------------------------

    def bricks(self, brick_type: Optional[BrickType] = None) -> Iterator[Brick]:
        """All plugged bricks in the rack, optionally filtered by type."""
        for tray in self._trays.values():
            yield from tray.bricks(brick_type)

    def brick(self, brick_id: str) -> Brick:
        """Find a brick anywhere in the rack by id."""
        for candidate in self.bricks():
            if candidate.brick_id == brick_id:
                return candidate
        raise SlotError(f"rack {self.rack_id} has no brick {brick_id!r}")

    def compute_bricks(self) -> list[Brick]:
        return list(self.bricks(BrickType.COMPUTE))

    def memory_bricks(self) -> list[Brick]:
        return list(self.bricks(BrickType.MEMORY))

    def accelerator_bricks(self) -> list[Brick]:
        return list(self.bricks(BrickType.ACCELERATOR))

    # -- topology ------------------------------------------------------------------------

    def same_tray(self, brick_a: Brick, brick_b: Brick) -> bool:
        """True when both bricks sit in the same tray (electrical reach)."""
        return (brick_a.tray_id is not None
                and brick_a.tray_id == brick_b.tray_id)

    def fibre_length_m(self, brick_a: Brick, brick_b: Brick) -> float:
        """End-to-end fibre run between two bricks via the rack switch."""
        if self.same_tray(brick_a, brick_b):
            return self.fibre_plan.intra_tray_m
        return self.fibre_plan.intra_rack_m

    def total_power_draw_w(self) -> float:
        """Instantaneous draw of every plugged brick."""
        return sum(brick.power_draw_w for brick in self.bricks())

    def inventory(self) -> dict[str, int]:
        """Count of plugged bricks per type (by enum value name)."""
        counts = {bt.value: 0 for bt in BrickType}
        for brick in self.bricks():
            counts[brick.brick_type.value] += 1
        return counts

    def __repr__(self) -> str:
        inv = self.inventory()
        parts = ", ".join(f"{count} {name}" for name, count in inv.items())
        return f"Rack({self.rack_id!r}, {len(self._trays)} trays: {parts})"
