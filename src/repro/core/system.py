"""The assembled disaggregated system (one rack, or a pod of racks).

:class:`DisaggregatedSystem` is the user-facing system object: racks of
bricks, the optical fabric (rack-local or pod-wide), the per-brick
software stacks and the SDM controller, with the paper's end-to-end
operations as methods — boot a VM whose memory may exceed any single
brick, scale a VM's memory up and down at runtime, migrate VMs (within
or across racks), and power-manage unutilized bricks.
:data:`DisaggregatedRack` remains as the single-rack-era alias.

Every lifecycle operation is exposed twice: as the historical
synchronous method (a zero-contention wrapper running a private
one-event simulation, so results and latency ledgers are unchanged) and
as a ``*_process`` DES generator for event-driven control planes
(:mod:`repro.cluster`), where concurrent operations queue on the SDM-C
reservation critical section of a shared
:class:`~repro.sim.control.ControlContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.errors import (
    FabricError,
    OrchestrationError,
    ReproError,
    SlotError,
)
from repro.hardware.bricks import AcceleratorBrick, ComputeBrick, MemoryBrick
from repro.hardware.rack import Rack

from repro.memory.segments import RemoteSegment
from repro.network.optical.topology import OpticalFabric
from repro.orchestration.requests import VmAllocationRequest
from repro.orchestration.sdm_controller import SdmController
from repro.sim.control import ControlContext, run_sync
from repro.sim.engine import ProcessGenerator
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.software.scaleup import (
    ScaleUpController,
    ScaleUpRequest,
    ScaleUpResult,
)
from repro.software.vm import VirtualMachine
from repro.units import gib

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.datamover.mover import DataMover, MoverConfig
    from repro.fabric.pod import Pod

#: Largest single segment requested per allocation when assembling large
#: boot memories; bigger demands are satisfied with multiple segments
#: (possibly on different dMEMBRICKs).
MAX_SEGMENT_BYTES = gib(16)


@dataclass
class BrickStack:
    """The software stack living on one compute brick."""

    brick: ComputeBrick
    kernel: BaremetalKernel
    hypervisor: Hypervisor
    agent: SdmAgent
    scaleup: ScaleUpController
    #: The brick's remote-memory data mover, once one is attached.
    data_mover: Optional["DataMover"] = None


@dataclass
class HostedVm:
    """Rack-level record of a running VM."""

    vm: VirtualMachine
    brick_id: str
    boot_segments: list[RemoteSegment] = field(default_factory=list)


@dataclass
class BootInfo:
    """Outcome of booting a VM on the rack."""

    vm: VirtualMachine
    brick_id: str
    latency_s: float
    boot_segments: list[RemoteSegment]


@dataclass
class FailureImpact:
    """Blast radius of a memory-brick failure."""

    brick_id: str
    segment_ids: list[str] = field(default_factory=list)
    vm_ids: list[str] = field(default_factory=list)
    teardown_latency_s: float = 0.0


class DisaggregatedSystem:
    """The full-stack system object (built by
    :class:`~repro.core.builder.RackBuilder` or
    :class:`~repro.core.builder.PodBuilder`)."""

    def __init__(self, rack: Union[Rack, Sequence[Rack]],
                 fabric: OpticalFabric,
                 sdm: SdmController,
                 stacks: dict[str, BrickStack],
                 pod: Optional["Pod"] = None) -> None:
        self.racks: list[Rack] = ([rack] if isinstance(rack, Rack)
                                  else list(rack))
        if not self.racks:
            raise OrchestrationError("a system needs at least one rack")
        self.fabric = fabric
        self.sdm = sdm
        self.pod = pod
        self._stacks = stacks
        self._vms: dict[str, HostedVm] = {}

    # -- inventory ------------------------------------------------------------

    @property
    def rack(self) -> Rack:
        """The (first) rack — the whole system in single-rack setups."""
        return self.racks[0]

    def rack_of_brick(self, brick_id: str) -> Rack:
        """The rack physically holding *brick_id*."""
        try:
            if self.pod is not None:
                return self.pod.rack_of_brick_id(brick_id)
            self.rack.brick(brick_id)
            return self.rack
        except (FabricError, SlotError):
            raise OrchestrationError(
                f"no brick {brick_id!r} in this system") from None

    @property
    def compute_bricks(self) -> list[ComputeBrick]:
        return [s.brick for s in self._stacks.values()]

    @property
    def memory_bricks(self) -> list[MemoryBrick]:
        return [e.brick for e in self.sdm.registry.memory_entries]

    @property
    def accelerator_bricks(self) -> list[AcceleratorBrick]:
        return [b for rack in self.racks for b in rack.bricks()
                if isinstance(b, AcceleratorBrick)]

    def stack(self, brick_id: str) -> BrickStack:
        try:
            return self._stacks[brick_id]
        except KeyError:
            raise OrchestrationError(
                f"no compute stack on brick {brick_id!r}") from None

    @property
    def stacks(self) -> list[BrickStack]:
        return list(self._stacks.values())

    # -- VM lifecycle ------------------------------------------------------------

    @property
    def vms(self) -> list[VirtualMachine]:
        return [h.vm for h in self._vms.values()]

    def hosting(self, vm_id: str) -> HostedVm:
        try:
            return self._vms[vm_id]
        except KeyError:
            raise OrchestrationError(f"no VM {vm_id!r} on this rack") from None

    def boot_vm(self, request: VmAllocationRequest) -> BootInfo:
        """Boot a VM, attaching remote boot memory when the chosen brick's
        local DRAM cannot cover the request (the core disaggregation win:
        "resource allocation ... no longer bounded by the mainboard").

        Zero-contention synchronous wrapper around
        :meth:`boot_vm_process`.
        """
        return run_sync(lambda ctx: self.boot_vm_process(ctx, request))

    def boot_vm_process(self, ctx: ControlContext,
                        request: VmAllocationRequest, *,
                        charge_config: bool = True,
                        on_commit=None) -> ProcessGenerator:
        """DES process form of :meth:`boot_vm`.

        Placement and each boot-segment reservation queue on the SDM-C
        critical section of *ctx*; agent programming, kernel attach and
        the hypervisor spawn are charged on the shared clock.
        ``on_commit`` (when given) fires once every SDM-side
        reservation has committed — the remaining hypervisor spawn is
        brick-side work a completion-offloading control plane detaches
        from its dispatcher slot.
        """
        if request.vm_id in self._vms:
            raise OrchestrationError(f"VM id {request.vm_id!r} already in use")
        brick_id, latency = yield from self.sdm.place_vm_process(ctx, request)
        stack = self.stack(brick_id)

        boot_segments: list[RemoteSegment] = []
        try:
            shortfall = request.ram_bytes - stack.kernel.available_bytes
            while shortfall > 0:
                chunk = min(shortfall, MAX_SEGMENT_BYTES)
                ticket = yield from self.sdm.allocate_process(
                    ctx, brick_id, request.vm_id, chunk,
                    charge_config=charge_config)
                latency += ticket.control_latency_s
                programmed = False
                try:
                    software_s = stack.agent.program_segment(
                        ticket.rmst_entry)
                    programmed = True
                    software_s += stack.agent.attach_segment(ticket.segment)
                except ReproError:
                    # The in-flight ticket is not in boot_segments yet;
                    # unwind it here before the outer cleanup runs.
                    if programmed:
                        yield ctx.sim.timeout(stack.agent.unprogram_segment(
                            ticket.segment.segment_id))
                    stack.kernel.address_map.cancel_reservation(
                        ticket.segment.segment_id)
                    yield from self.sdm.release_process(
                        ctx, ticket.segment.segment_id)
                    ticket.segment.release()
                    raise
                yield ctx.sim.timeout(software_s)
                latency += software_s
                ticket.segment.activate()
                boot_segments.append(ticket.segment)
                shortfall = request.ram_bytes - stack.kernel.available_bytes
            if on_commit is not None:
                on_commit()
            # The spawn can also fail (cores or RAM consumed by a
            # concurrent boot/scale-up since placement), so it lives
            # inside the cleanup scope.
            vm, spawn_latency = stack.hypervisor.spawn_vm(
                request.vm_id, request.vcpus, request.ram_bytes)
        except ReproError:
            # A rejected boot must not leak partially attached memory:
            # an open-loop control plane keeps running after the
            # rejection, so return every segment to the pool.
            for segment in boot_segments:
                software_s = stack.agent.detach_segment(segment.segment_id)
                software_s += stack.agent.unprogram_segment(
                    segment.segment_id)
                yield ctx.sim.timeout(software_s)
                yield from self.sdm.release_process(ctx, segment.segment_id)
                segment.release()
            raise
        yield ctx.sim.timeout(spawn_latency)
        latency += spawn_latency
        self._vms[request.vm_id] = HostedVm(vm, brick_id, boot_segments)
        return BootInfo(vm=vm, brick_id=brick_id, latency_s=latency,
                        boot_segments=boot_segments)

    def terminate_vm(self, vm_id: str) -> float:
        """Tear a VM down, detach its boot segments, release resources.

        Zero-contention synchronous wrapper around
        :meth:`terminate_vm_process`; returns the teardown latency.
        """
        return run_sync(lambda ctx: self.terminate_vm_process(ctx, vm_id))

    def terminate_vm_process(self, ctx: ControlContext,
                             vm_id: str) -> ProcessGenerator:
        """DES process form of :meth:`terminate_vm`."""
        hosted = self.hosting(vm_id)
        stack = self.stack(hosted.brick_id)
        latency = 0.0
        # Scale-down any runtime segments still attached through the
        # scale-up controller.
        for segment in list(stack.scaleup.attached_segments()):
            if segment.vm_id == vm_id:
                steps = yield from stack.scaleup.scale_down_process(
                    ctx, vm_id, segment.segment_id)
                latency += sum(steps.values())
        stack.hypervisor.terminate_vm(vm_id)
        for segment in hosted.boot_segments:
            software_s = stack.agent.detach_segment(segment.segment_id)
            software_s += stack.agent.unprogram_segment(segment.segment_id)
            yield ctx.sim.timeout(software_s)
            latency += software_s
            latency += yield from self.sdm.release_process(
                ctx, segment.segment_id)
            segment.release()
        del self._vms[vm_id]
        return latency

    # -- the remote data path -----------------------------------------------------

    def attach_data_mover(self, brick_id: str,
                          config: Optional["MoverConfig"] = None
                          ) -> "DataMover":
        """Install a :class:`~repro.datamover.mover.DataMover` on a brick.

        The mover resolves access paths at call time through the SDM
        registry and the fabric, so circuits swung by migration or
        repair are picked up transparently.  Already-attached segments
        are registered immediately; re-attaching replaces the brick's
        mover with a fresh, cold cache — after flushing the old mover's
        dirty blocks, so no pending write-back is silently dropped.
        """
        from repro.datamover.mover import DataMover, MoverConfig
        from repro.memory.path import CircuitAccessPath

        stack = self.stack(brick_id)
        if stack.data_mover is not None:
            for segment_id in stack.data_mover.registered_segments():
                stack.data_mover.flush_segment(segment_id)

        def resolve_path(memory_brick_id: str) -> CircuitAccessPath:
            memory = self.sdm.registry.memory(memory_brick_id).brick
            circuit = self.fabric.circuit_between(stack.brick, memory)
            if circuit is None:
                raise FabricError(
                    f"no live circuit between {brick_id} and "
                    f"{memory_brick_id}")
            return CircuitAccessPath(stack.brick, memory, circuit)

        mover = DataMover(stack.brick, resolve_path,
                          config or MoverConfig())
        stack.kernel.bind_data_mover(mover)
        stack.data_mover = mover
        return mover

    def note_hot_placement(self, min_accesses: int = 1024) -> set[str]:
        """Feed mover heat statistics into the placement policy.

        Collects each attached mover's hot dMEMBRICKs and, when the SDM
        policy supports co-location (see
        :class:`~repro.orchestration.placement.PowerAwarePackingPolicy`),
        records them so future segments pack onto the same bricks.
        Returns the hot brick ids found.
        """
        hot: set[str] = set()
        for stack in self._stacks.values():
            if stack.data_mover is not None:
                hot |= stack.data_mover.hot_memory_bricks(min_accesses)
        note = getattr(self.sdm.policy, "note_hot_brick", None)
        if note is not None:
            for brick_id in sorted(hot):
                note(brick_id)
        return hot

    # -- runtime elasticity ------------------------------------------------------------

    def scale_up(self, vm_id: str, size_bytes: int) -> ScaleUpResult:
        """Grow a running VM's memory via the full §IV pipeline."""
        hosted = self.hosting(vm_id)
        stack = self.stack(hosted.brick_id)
        return stack.scaleup.scale_up(ScaleUpRequest(vm_id, size_bytes))

    def scale_up_process(self, ctx: ControlContext, vm_id: str,
                         size_bytes: int, *,
                         charge_config: bool = True,
                         on_commit=None) -> ProcessGenerator:
        """DES process form of :meth:`scale_up`."""
        hosted = self.hosting(vm_id)
        stack = self.stack(hosted.brick_id)
        result = yield from stack.scaleup.scale_up_process(
            ctx, ScaleUpRequest(vm_id, size_bytes),
            charge_config=charge_config, on_commit=on_commit)
        return result

    def scale_down(self, vm_id: str, segment_id: str) -> dict[str, float]:
        """Return a previously scaled-up segment."""
        hosted = self.hosting(vm_id)
        stack = self.stack(hosted.brick_id)
        return stack.scaleup.scale_down(vm_id, segment_id)

    def scale_down_process(self, ctx: ControlContext, vm_id: str,
                           segment_id: str) -> ProcessGenerator:
        """DES process form of :meth:`scale_down`."""
        hosted = self.hosting(vm_id)
        stack = self.stack(hosted.brick_id)
        steps = yield from stack.scaleup.scale_down_process(
            ctx, vm_id, segment_id)
        return steps

    def migrate_vm(self, vm_id: str, target_brick_id: str):
        """Migrate a running VM to another compute brick.

        Disaggregation's migration advantage: remote segments are
        re-pointed (circuit + RMST swing) instead of copied.  Returns a
        :class:`~repro.core.migration.MigrationReport`.
        """
        from repro.core.migration import MigrationFlow
        return MigrationFlow(self).migrate(vm_id, target_brick_id)

    def migrate_vm_process(self, ctx: ControlContext, vm_id: str,
                           target_brick_id: str, *,
                           on_commit=None) -> ProcessGenerator:
        """DES process form of :meth:`migrate_vm`.

        The SDM-side work (power-on pre-flight plus the per-segment
        circuit/RMST swing) holds the reservation scope covering the
        source brick, the target brick and every involved memory brick
        (the single critical section on a plain controller; the
        affected shards, in canonical order, on a sharded one).  The
        pause/copy/resume phases are charged after it is released, so
        other control traffic only queues behind the controller part;
        ``on_commit`` fires at that hand-off point.
        """
        from repro.core.migration import MigrationFlow

        def brick_ids() -> tuple:
            # Re-derived at (re-)grant time: a concurrent relocation or
            # scale event may move the VM's segments while we queue, and
            # the scope must cover where they live *now*.
            hosted = self.hosting(vm_id)
            stack = self.stack(hosted.brick_id)
            ids = [hosted.brick_id, target_brick_id]
            ids += [s.memory_brick_id for s in hosted.boot_segments]
            ids += [s.memory_brick_id
                    for s in stack.scaleup.attached_segments()
                    if s.vm_id == vm_id]
            return tuple(ids)

        token = yield from self.sdm.reserve_scope_stable(
            ctx, vm_id, brick_ids)
        try:
            report = MigrationFlow(self).migrate(vm_id, target_brick_id)
            critical_s = (report.steps.get("segment_repoint", 0.0)
                          + report.steps.get("target_power_on", 0.0))
            yield ctx.sim.timeout(critical_s)
        finally:
            self.sdm.release_scope(token)
        if on_commit is not None:
            on_commit()
        yield ctx.sim.timeout(report.total_s - critical_s)
        return report

    # -- failure handling ---------------------------------------------------------------

    def handle_memory_brick_failure(self, brick_id: str) -> "FailureImpact":
        """React to the loss of a dMEMBRICK.

        Disaggregation's blast radius: every VM holding a segment on the
        failed brick loses memory content and must be terminated (memory
        is not replicated in the prototype).  The brick is excluded from
        future placement.  Returns the impact report.
        """
        impacted_segments = self.sdm.impacted_by_memory_brick(brick_id)
        impacted_vms = sorted({s.vm_id for s in impacted_segments if s.vm_id})
        impact = FailureImpact(
            brick_id=brick_id,
            segment_ids=[s.segment_id for s in impacted_segments],
            vm_ids=impacted_vms,
        )
        for vm_id in impacted_vms:
            if vm_id in self._vms:
                impact.teardown_latency_s += self.terminate_vm(vm_id)
        self.sdm.registry.mark_memory_failed(brick_id)
        return impact

    def audit_circuits(self, target_ber: float = 1e-12) -> float:
        """Scan for degraded circuits and repair them; returns the total
        repair latency (0.0 when everything is healthy)."""
        latency = 0.0
        for circuit in self.sdm.scan_unhealthy_circuits(target_ber):
            latency += self.sdm.repair_circuit(circuit.circuit_id)
        return latency

    # -- power management ---------------------------------------------------------------

    def power_off_idle(self) -> list[str]:
        """Power down every brick with no allocation (the TCO lever)."""
        return self.sdm.registry.power_off_idle_bricks()

    def total_power_w(self) -> float:
        """Bricks plus optical switch draw (all tiers)."""
        return (sum(rack.total_power_draw_w() for rack in self.racks)
                + self.fabric.power_draw_w)

    def __repr__(self) -> str:
        scope = (f"{len(self.racks)} racks, " if len(self.racks) > 1 else "")
        return (f"DisaggregatedSystem({scope}{len(self._stacks)} compute, "
                f"{len(self.memory_bricks)} memory, "
                f"{len(self.accelerator_bricks)} accel bricks, "
                f"{len(self._vms)} VMs)")


#: Single-rack-era name; a pod-capable system is the same object.
DisaggregatedRack = DisaggregatedSystem
