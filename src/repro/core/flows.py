"""Timed end-to-end flows over the DES kernel.

The Fig. 10 experiment measures "per VM average delay of dynamically
scaling-up/down its memory resources" under concurrency: many VMs post
scale-up requests within a time interval, and the SDM-C must *safely*
(i.e. serially) reserve resources for each.  :class:`TimedScaleUpHarness`
runs exactly that on the simulator: concurrent processes contend for the
SDM-C critical section, then proceed through glue configuration, kernel
hotplug and hypervisor attach at their own brick's pace.

The comparison baseline is conventional *scale-out* — "spawning of
additional VMs to facilitate memory addition to an application" (paper
ref [13], Mao & Humphrey) — modelled from that study's measured cloud VM
startup times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.system import BootInfo, DisaggregatedRack
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.software.scaleup import CONTROLLER_OVERHEAD_S

#: Re-export under the name the public API uses.
BootResult = BootInfo

#: Mean cloud VM startup time measured by Mao & Humphrey for Linux
#: instances (~44.2 s on the fastest provider studied).
SCALE_OUT_MEAN_S = 44.2

#: Spread of VM startup times (1 sigma).
SCALE_OUT_SIGMA_S = 8.0

#: Additional queueing per concurrently-spawning VM (image store and
#: scheduler contention grow mildly with burst size).
SCALE_OUT_CONTENTION_S_PER_VM = 0.4


@dataclass
class ScaleUpSample:
    """One completed timed scale-up."""

    vm_id: str
    size_bytes: int
    posted_at: float
    completed_at: float
    steps: dict[str, float] = field(default_factory=dict)

    @property
    def delay_s(self) -> float:
        """End-to-end delay the VM observed."""
        return self.completed_at - self.posted_at


class TimedScaleUpHarness:
    """Drives concurrent scale-up requests through a rack on the DES."""

    def __init__(self, system: DisaggregatedRack,
                 sim: Optional[Simulator] = None) -> None:
        self.system = system
        self.sim = sim or Simulator()
        #: The SDM-C critical section: reservation is serialized (§IV.C
        #: "safely reserve selected resources").
        self._sdm_lock = Resource(self.sim, capacity=1)
        self.samples: list[ScaleUpSample] = []

    def post_scale_up(self, vm_id: str, size_bytes: int,
                      at: float = 0.0) -> None:
        """Schedule a scale-up request to be posted at time *at*."""
        if at < self.sim.now:
            raise SimulationError(
                f"cannot post at {at}; simulation time is {self.sim.now}")
        self.sim.process(self._scale_up_process(vm_id, size_bytes, at))

    def run(self) -> list[ScaleUpSample]:
        """Run the simulation to completion; returns all samples."""
        self.sim.run()
        return list(self.samples)

    # -- the timed pipeline -----------------------------------------------------

    def _scale_up_process(self, vm_id: str, size_bytes: int, at: float):
        if at > self.sim.now:
            yield self.sim.timeout(at - self.sim.now)
        posted = self.sim.now
        steps: dict[str, float] = {}

        # Scale-up API / controller processing.
        yield self.sim.timeout(CONTROLLER_OVERHEAD_S)
        steps["controller"] = CONTROLLER_OVERHEAD_S

        hosted = self.system.hosting(vm_id)
        stack = self.system.stack(hosted.brick_id)

        # SDM-C critical section: queue, then reserve + set up circuit.
        lock_req = self._sdm_lock.request()
        queue_start = self.sim.now
        yield lock_req
        steps["sdm_queue"] = self.sim.now - queue_start
        ticket = self.system.sdm.allocate(
            stack.brick.brick_id, vm_id, size_bytes)
        yield self.sim.timeout(ticket.control_latency_s)
        steps["sdm"] = ticket.control_latency_s
        self._sdm_lock.release(lock_req)

        # Per-brick pipeline: glue config, kernel attach, hypervisor.
        latency = stack.agent.program_segment(ticket.rmst_entry)
        yield self.sim.timeout(latency)
        steps["glue_config"] = latency

        latency = stack.agent.attach_segment(ticket.segment)
        yield self.sim.timeout(latency)
        steps["kernel_attach"] = latency
        ticket.segment.activate()

        _dimm, latency = stack.hypervisor.hotplug_dimm(
            vm_id, size_bytes, segment_id=ticket.segment.segment_id)
        yield self.sim.timeout(latency)
        steps["hypervisor"] = latency

        self.samples.append(ScaleUpSample(
            vm_id=vm_id,
            size_bytes=size_bytes,
            posted_at=posted,
            completed_at=self.sim.now,
            steps=steps,
        ))


def scale_out_baseline_delays(vm_count: int,
                              rng: np.random.Generator,
                              mean_s: float = SCALE_OUT_MEAN_S,
                              sigma_s: float = SCALE_OUT_SIGMA_S,
                              contention_s_per_vm: float =
                              SCALE_OUT_CONTENTION_S_PER_VM) -> list[float]:
    """Per-VM delays of the conventional scale-out alternative.

    Each of *vm_count* applications gets its extra memory by spawning a
    fresh VM; the delay is the cloud VM startup time (Mao & Humphrey)
    plus mild burst contention.  Values are floored at 1 s (no cloud
    boots a VM faster than that).
    """
    if vm_count < 1:
        raise SimulationError(f"vm_count must be >= 1, got {vm_count}")
    base = rng.normal(mean_s, sigma_s, size=vm_count)
    contention = contention_s_per_vm * np.arange(vm_count)
    return [float(max(1.0, d)) for d in (base + contention)]
