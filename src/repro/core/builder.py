"""Declarative construction of a disaggregated rack.

The builder assembles every layer in dependency order: bricks into trays,
trays into the rack, MBO channels into the optical fabric, kernels /
hypervisors / agents / scale-up controllers onto compute bricks, segment
allocators onto memory bricks, and the SDM controller over it all.

Example::

    system = (RackBuilder("rack0")
              .with_compute_bricks(4, cores=16, local_memory=gib(4))
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .with_accelerator_bricks(1)
              .build())
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.hardware.bricks import (
    AcceleratorBrick,
    ComputeBrick,
    MemoryBrick,
)
from repro.hardware.rack import Rack
from repro.hardware.tray import Tray
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.network.optical.topology import OpticalFabric
from repro.orchestration.placement import PlacementPolicy
from repro.orchestration.registry import ResourceRegistry
from repro.orchestration.sdm_controller import SdmController, SdmTimings
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.software.pages import DEFAULT_SECTION_BYTES
from repro.software.scaleup import ScaleUpController
from repro.core.system import BrickStack, DisaggregatedRack
from repro.units import gib


class RackBuilder:
    """Fluent builder for :class:`~repro.core.system.DisaggregatedRack`."""

    def __init__(self, rack_id: str = "rack0") -> None:
        self.rack_id = rack_id
        self._compute_count = 2
        self._compute_cores = 16
        self._compute_local_memory = gib(4)
        self._memory_count = 2
        self._memory_modules = 4
        self._module_size = gib(16)
        self._accel_count = 0
        self._tray_slots = 16
        self._section_bytes = DEFAULT_SECTION_BYTES
        self._policy: Optional[PlacementPolicy] = None
        self._sdm_timings: Optional[SdmTimings] = None
        self._switch: Optional[OpticalCircuitSwitch] = None
        self._cbn_ports = 8

    # -- configuration -----------------------------------------------------------

    def with_compute_bricks(self, count: int, cores: int = 16,
                            local_memory: int = gib(4)) -> "RackBuilder":
        """Set dCOMPUBRICK population (count, APU cores, local DDR)."""
        if count < 1:
            raise ConfigurationError("need at least one compute brick")
        self._compute_count = count
        self._compute_cores = cores
        self._compute_local_memory = local_memory
        return self

    def with_memory_bricks(self, count: int, modules: int = 4,
                           module_size: int = gib(16)) -> "RackBuilder":
        """Set dMEMBRICK population (count, modules each, module size)."""
        if count < 1:
            raise ConfigurationError("need at least one memory brick")
        self._memory_count = count
        self._memory_modules = modules
        self._module_size = module_size
        return self

    def with_accelerator_bricks(self, count: int) -> "RackBuilder":
        """Set dACCELBRICK population."""
        if count < 0:
            raise ConfigurationError("accelerator count must be >= 0")
        self._accel_count = count
        return self

    def with_tray_slots(self, slots: int) -> "RackBuilder":
        """Slots per tray (bricks are packed tray by tray)."""
        if slots < 1:
            raise ConfigurationError("tray needs >= 1 slot")
        self._tray_slots = slots
        return self

    def with_section_size(self, section_bytes: int) -> "RackBuilder":
        """Hotplug section granularity for every kernel."""
        self._section_bytes = section_bytes
        return self

    def with_policy(self, policy: PlacementPolicy) -> "RackBuilder":
        """Placement policy for the SDM controller."""
        self._policy = policy
        return self

    def with_sdm_timings(self, timings: SdmTimings) -> "RackBuilder":
        """Override SDM-C latency parameters."""
        self._sdm_timings = timings
        return self

    def with_switch(self, switch: OpticalCircuitSwitch) -> "RackBuilder":
        """Use a specific optical switch module (e.g. next generation)."""
        self._switch = switch
        return self

    def with_cbn_ports(self, ports: int) -> "RackBuilder":
        """CBN transceivers (and MBO channels) per brick."""
        if ports < 1:
            raise ConfigurationError("bricks need >= 1 CBN port")
        self._cbn_ports = ports
        return self

    # -- assembly ---------------------------------------------------------------------

    def build(self) -> DisaggregatedRack:
        """Assemble and wire the full stack."""
        rack = Rack(self.rack_id)
        switch = self._switch
        if switch is None:
            # Size the switch to the fleet: every brick wants all its CBN
            # ports fibred, plus slack for multi-hop loopback patching.
            brick_count = (self._compute_count + self._memory_count
                           + self._accel_count)
            ports_needed = brick_count * self._cbn_ports + 8
            switch = OpticalCircuitSwitch(
                f"{self.rack_id}.switch", port_count=max(48, ports_needed))
        fabric = OpticalFabric(switch)
        registry = ResourceRegistry(segment_alignment=self._section_bytes)

        bricks: list = []
        for index in range(self._compute_count):
            bricks.append(ComputeBrick(
                f"{self.rack_id}.cb{index}",
                core_count=self._compute_cores,
                local_memory_bytes=self._compute_local_memory,
                cbn_ports=self._cbn_ports,
            ))
        for index in range(self._memory_count):
            bricks.append(MemoryBrick(
                f"{self.rack_id}.mb{index}",
                module_count=self._memory_modules,
                module_bytes=self._module_size,
                cbn_ports=self._cbn_ports,
            ))
        for index in range(self._accel_count):
            bricks.append(AcceleratorBrick(
                f"{self.rack_id}.ab{index}",
                cbn_ports=self._cbn_ports,
            ))

        # Pack bricks into trays.
        tray: Optional[Tray] = None
        for brick in bricks:
            if tray is None or not tray.free_slots:
                tray = rack.new_tray(slot_count=self._tray_slots)
            tray.plug(brick)
            fabric.attach_brick(brick)

        # Software stacks + registry.
        stacks: dict[str, BrickStack] = {}
        sdm_kwargs = {}
        if self._policy is not None:
            sdm_kwargs["policy"] = self._policy
        if self._sdm_timings is not None:
            sdm_kwargs["timings"] = self._sdm_timings
        sdm = SdmController(registry, fabric, **sdm_kwargs)

        for brick in bricks:
            if isinstance(brick, ComputeBrick):
                kernel = BaremetalKernel(brick, section_bytes=self._section_bytes)
                hypervisor = Hypervisor(kernel)
                agent = SdmAgent(kernel)
                scaleup = ScaleUpController(hypervisor, agent, sdm)
                registry.register_compute(brick, hypervisor, agent)
                stacks[brick.brick_id] = BrickStack(
                    brick, kernel, hypervisor, agent, scaleup)
            elif isinstance(brick, MemoryBrick):
                registry.register_memory(brick)

        return DisaggregatedRack(rack, fabric, sdm, stacks)
