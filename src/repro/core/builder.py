"""Declarative construction of disaggregated systems.

Two builders share the same assembly helpers:

* :class:`RackBuilder` — the paper's prototype: one rack behind one
  optical circuit switch.
* :class:`PodBuilder` — the next packaging tier: several racks, each
  with its own switch, trunked into an inter-rack
  :class:`~repro.fabric.pod.InterRackSwitch` and presented as one
  :class:`~repro.fabric.fabric.PodFabric`.

Both assemble every layer in dependency order: bricks into trays, trays
into racks, MBO channels into the optical fabric, kernels / hypervisors
/ agents / scale-up controllers onto compute bricks, segment allocators
onto memory bricks, and the SDM controller over it all.

Example::

    system = (PodBuilder("pod0")
              .with_racks(4)
              .with_compute_bricks(4, cores=16, local_memory=gib(4))
              .with_memory_bricks(4, modules=4, module_size=gib(16))
              .build())
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, TopologyError
from repro.fabric.fabric import PodFabric
from repro.fabric.pod import DEFAULT_UPLINKS_PER_RACK, InterRackSwitch, Pod
from repro.hardware.bricks import (
    AcceleratorBrick,
    Brick,
    ComputeBrick,
    MemoryBrick,
)
from repro.hardware.rack import DEFAULT_FIBRE_PLAN, FibrePlan, Rack
from repro.hardware.tray import Tray
from repro.network.optical.switch import OpticalCircuitSwitch
from repro.network.optical.topology import OpticalFabric
from repro.orchestration.placement import PlacementPolicy
from repro.orchestration.registry import ResourceRegistry
from repro.orchestration.sdm_controller import SdmController, SdmTimings
from repro.software.agent import SdmAgent
from repro.software.hypervisor import Hypervisor
from repro.software.kernel import BaremetalKernel
from repro.software.pages import DEFAULT_SECTION_BYTES
from repro.software.scaleup import ScaleUpController
from repro.core.system import BrickStack, DisaggregatedSystem
from repro.units import gib


class _SystemBuilder:
    """Shared per-rack configuration knobs and assembly helpers."""

    def __init__(self) -> None:
        self._compute_count = 2
        self._compute_cores = 16
        self._compute_local_memory = gib(4)
        self._memory_count = 2
        self._memory_modules = 4
        self._module_size = gib(16)
        self._accel_count = 0
        self._tray_slots = 16
        self._section_bytes = DEFAULT_SECTION_BYTES
        self._policy: Optional[PlacementPolicy] = None
        self._sdm_timings: Optional[SdmTimings] = None
        self._cbn_ports = 8
        self._fibre_plan = DEFAULT_FIBRE_PLAN
        self._shard_controller = False
        self._controller_shards: Optional[int] = None

    # -- configuration -----------------------------------------------------------

    def with_compute_bricks(self, count: int, cores: int = 16,
                            local_memory: int = gib(4)):
        """Set dCOMPUBRICK population per rack (count, APU cores, DDR)."""
        if count < 1:
            raise TopologyError("need at least one compute brick")
        self._compute_count = count
        self._compute_cores = cores
        self._compute_local_memory = local_memory
        return self

    def with_memory_bricks(self, count: int, modules: int = 4,
                           module_size: int = gib(16)):
        """Set dMEMBRICK population per rack (count, modules, size)."""
        if count < 1:
            raise TopologyError("need at least one memory brick")
        self._memory_count = count
        self._memory_modules = modules
        self._module_size = module_size
        return self

    def with_accelerator_bricks(self, count: int):
        """Set dACCELBRICK population per rack."""
        if count < 0:
            raise TopologyError("accelerator count must be >= 0")
        self._accel_count = count
        return self

    def with_tray_slots(self, slots: int):
        """Slots per tray (bricks are packed tray by tray)."""
        if slots < 1:
            raise ConfigurationError("tray needs >= 1 slot")
        self._tray_slots = slots
        return self

    def with_section_size(self, section_bytes: int):
        """Hotplug section granularity for every kernel."""
        self._section_bytes = section_bytes
        return self

    def with_policy(self, policy: PlacementPolicy):
        """Placement policy for the SDM controller."""
        self._policy = policy
        return self

    def with_sdm_timings(self, timings: SdmTimings):
        """Override SDM-C latency parameters."""
        self._sdm_timings = timings
        return self

    def with_cbn_ports(self, ports: int):
        """CBN transceivers (and MBO channels) per brick."""
        if ports < 1:
            raise ConfigurationError("bricks need >= 1 CBN port")
        self._cbn_ports = ports
        return self

    def with_fibre_plan(self, plan: FibrePlan):
        """Override the per-hop fibre run table."""
        self._fibre_plan = plan
        return self

    def with_controller_shards(self, count: Optional[int] = None):
        """Build a :class:`~repro.orchestration.sharding.\
ShardedSdmController` instead of the single-domain SDM-C.

        ``count=None`` shards the reservation domain per rack; an
        explicit count groups racks round-robin into that many shards
        (``count=1`` is the single-serialized-controller baseline, on
        the sharded code path).
        """
        if count is not None and count < 1:
            raise ConfigurationError(
                f"controller shard count must be >= 1, got {count}")
        self._shard_controller = True
        self._controller_shards = count
        return self

    # -- shared assembly ---------------------------------------------------------

    def _bricks_per_rack(self) -> int:
        return self._compute_count + self._memory_count + self._accel_count

    def _default_switch_ports(self, extra: int = 8) -> int:
        # Size the switch to the fleet: every brick wants all its CBN
        # ports fibred, plus slack for multi-hop loopback patching (and,
        # at pod scale, the uplink trunk).
        return max(48, self._bricks_per_rack() * self._cbn_ports + extra)

    def _make_bricks(self, rack_id: str) -> list[Brick]:
        bricks: list[Brick] = []
        for index in range(self._compute_count):
            bricks.append(ComputeBrick(
                f"{rack_id}.cb{index}",
                core_count=self._compute_cores,
                local_memory_bytes=self._compute_local_memory,
                cbn_ports=self._cbn_ports,
            ))
        for index in range(self._memory_count):
            bricks.append(MemoryBrick(
                f"{rack_id}.mb{index}",
                module_count=self._memory_modules,
                module_bytes=self._module_size,
                cbn_ports=self._cbn_ports,
            ))
        for index in range(self._accel_count):
            bricks.append(AcceleratorBrick(
                f"{rack_id}.ab{index}",
                cbn_ports=self._cbn_ports,
            ))
        return bricks

    @staticmethod
    def _pack_trays(rack: Rack, bricks: list[Brick],
                    tray_slots: int) -> None:
        tray: Optional[Tray] = None
        for brick in bricks:
            if tray is None or not tray.free_slots:
                tray = rack.new_tray(slot_count=tray_slots)
            tray.plug(brick)

    def _sdm_kwargs(self) -> dict:
        kwargs = {}
        if self._policy is not None:
            kwargs["policy"] = self._policy
        if self._sdm_timings is not None:
            kwargs["timings"] = self._sdm_timings
        return kwargs

    def _make_controller(self, registry: ResourceRegistry,
                         fabric: OpticalFabric) -> SdmController:
        if self._shard_controller:
            from repro.orchestration.sharding import ShardedSdmController
            return ShardedSdmController(
                registry, fabric, shard_count=self._controller_shards,
                **self._sdm_kwargs())
        return SdmController(registry, fabric, **self._sdm_kwargs())

    def _install_stacks(self, bricks: list[Brick],
                        registry: ResourceRegistry, sdm: SdmController,
                        stacks: dict[str, BrickStack],
                        rack_id: str = "") -> None:
        for brick in bricks:
            if isinstance(brick, ComputeBrick):
                kernel = BaremetalKernel(
                    brick, section_bytes=self._section_bytes)
                hypervisor = Hypervisor(kernel)
                agent = SdmAgent(kernel)
                scaleup = ScaleUpController(hypervisor, agent, sdm)
                registry.register_compute(brick, hypervisor, agent,
                                          rack_id=rack_id)
                stacks[brick.brick_id] = BrickStack(
                    brick, kernel, hypervisor, agent, scaleup)
            elif isinstance(brick, MemoryBrick):
                registry.register_memory(brick, rack_id=rack_id)


class RackBuilder(_SystemBuilder):
    """Fluent builder for a single-rack
    :class:`~repro.core.system.DisaggregatedSystem`."""

    def __init__(self, rack_id: str = "rack0") -> None:
        super().__init__()
        self.rack_id = rack_id
        self._switch: Optional[OpticalCircuitSwitch] = None

    def with_switch(self, switch: OpticalCircuitSwitch) -> "RackBuilder":
        """Use a specific optical switch module (e.g. next generation)."""
        self._switch = switch
        return self

    def build(self) -> DisaggregatedSystem:
        """Assemble and wire the full stack."""
        rack = Rack(self.rack_id, fibre_plan=self._fibre_plan)
        switch = self._switch or OpticalCircuitSwitch(
            f"{self.rack_id}.switch", port_count=self._default_switch_ports())
        fabric = OpticalFabric(
            switch, fibre_length_m=self._fibre_plan.intra_rack_m)
        registry = ResourceRegistry(segment_alignment=self._section_bytes)

        bricks = self._make_bricks(self.rack_id)
        self._pack_trays(rack, bricks, self._tray_slots)
        for brick in bricks:
            fabric.attach_brick(brick)

        sdm = self._make_controller(registry, fabric)
        stacks: dict[str, BrickStack] = {}
        self._install_stacks(bricks, registry, sdm, stacks,
                             rack_id=self.rack_id)
        return DisaggregatedSystem(rack, fabric, sdm, stacks)


class PodBuilder(_SystemBuilder):
    """Fluent builder for a multi-rack pod.

    Every rack gets the same brick population (the per-rack ``with_*``
    knobs); racks are trunked into the pod switch with a fixed uplink
    budget, and one SDM controller orchestrates the whole pod through a
    :class:`~repro.fabric.fabric.PodFabric`.
    """

    def __init__(self, pod_id: str = "pod0") -> None:
        super().__init__()
        self.pod_id = pod_id
        self._rack_count = 2
        self._uplinks_per_rack = DEFAULT_UPLINKS_PER_RACK
        self._pod_switch: Optional[InterRackSwitch] = None

    def with_racks(self, count: int) -> "PodBuilder":
        """Number of identically-populated racks in the pod."""
        if count < 1:
            raise TopologyError("a pod needs at least one rack")
        self._rack_count = count
        return self

    def with_uplinks(self, uplinks: int) -> "PodBuilder":
        """Uplink fibres from each rack switch to the pod switch."""
        if uplinks < 1:
            raise TopologyError("racks need >= 1 uplink")
        self._uplinks_per_rack = uplinks
        return self

    def with_pod_switch(self, switch: InterRackSwitch) -> "PodBuilder":
        """Use a specific inter-rack switch module."""
        self._pod_switch = switch
        return self

    def build(self) -> DisaggregatedSystem:
        """Assemble racks, trunk them, and wire one control plane."""
        pod_switch = self._pod_switch or InterRackSwitch(
            f"{self.pod_id}.switch",
            port_count=max(192,
                           self._rack_count * self._uplinks_per_rack + 8))
        pod = Pod(self.pod_id, switch=pod_switch,
                  fibre_plan=self._fibre_plan)
        registry = ResourceRegistry(segment_alignment=self._section_bytes)

        racks: list[Rack] = []
        rack_fabrics: dict[str, OpticalFabric] = {}
        bricks_by_rack: dict[str, list[Brick]] = {}
        for index in range(self._rack_count):
            rack = Rack(f"{self.pod_id}.rack{index}",
                        fibre_plan=self._fibre_plan)
            switch = OpticalCircuitSwitch(
                f"{rack.rack_id}.switch",
                port_count=self._default_switch_ports(
                    extra=8 + self._uplinks_per_rack))
            fabric = OpticalFabric(
                switch, fibre_length_m=self._fibre_plan.intra_rack_m)
            pod.add_rack(rack, switch, uplinks=self._uplinks_per_rack)
            bricks = self._make_bricks(rack.rack_id)
            self._pack_trays(rack, bricks, self._tray_slots)
            racks.append(rack)
            rack_fabrics[rack.rack_id] = fabric
            bricks_by_rack[rack.rack_id] = bricks

        pod_fabric = PodFabric(pod, rack_fabrics)
        for rack in racks:
            for brick in bricks_by_rack[rack.rack_id]:
                pod_fabric.attach_brick(brick)

        sdm = self._make_controller(registry, pod_fabric)
        stacks: dict[str, BrickStack] = {}
        for rack in racks:
            self._install_stacks(bricks_by_rack[rack.rack_id], registry,
                                 sdm, stacks, rack_id=rack.rack_id)
        return DisaggregatedSystem(racks, pod_fabric, sdm, stacks, pod=pod)
