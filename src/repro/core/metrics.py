"""System-wide snapshots: power, utilization, inventory.

Used by examples and the TCO study to observe the rack at a point in
time without reaching into individual subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import DisaggregatedRack
from repro.hardware.power import PowerState


@dataclass(frozen=True)
class SystemSnapshot:
    """A point-in-time view of a disaggregated rack."""

    vm_count: int
    cores_total: int
    cores_in_use: int
    compute_bricks_total: int
    compute_bricks_off: int
    memory_bricks_total: int
    memory_bricks_off: int
    memory_total_bytes: int
    memory_allocated_bytes: int
    active_circuits: int
    power_draw_w: float

    @property
    def core_utilization(self) -> float:
        """Fraction of APU cores running vCPUs."""
        return self.cores_in_use / self.cores_total if self.cores_total else 0.0

    @property
    def memory_utilization(self) -> float:
        """Fraction of pooled dMEMBRICK capacity allocated."""
        if not self.memory_total_bytes:
            return 0.0
        return self.memory_allocated_bytes / self.memory_total_bytes

    @property
    def bricks_off_fraction(self) -> float:
        """Fraction of all bricks currently powered off."""
        total = self.compute_bricks_total + self.memory_bricks_total
        if not total:
            return 0.0
        return (self.compute_bricks_off + self.memory_bricks_off) / total


def snapshot(system: DisaggregatedRack) -> SystemSnapshot:
    """Capture a :class:`SystemSnapshot` of *system*."""
    registry = system.sdm.registry
    cores_total = 0
    cores_in_use = 0
    compute_off = 0
    for entry in registry.compute_entries:
        cores_total += entry.brick.core_count
        cores_in_use += entry.hypervisor.cores_in_use()
        if entry.brick.power_state is PowerState.OFF:
            compute_off += 1
    memory_total = 0
    memory_allocated = 0
    memory_off = 0
    for entry in registry.memory_entries:
        memory_total += entry.allocator.capacity_bytes
        memory_allocated += entry.allocator.allocated_bytes
        if entry.brick.power_state is PowerState.OFF:
            memory_off += 1
    return SystemSnapshot(
        vm_count=len(system.vms),
        cores_total=cores_total,
        cores_in_use=cores_in_use,
        compute_bricks_total=len(registry.compute_entries),
        compute_bricks_off=compute_off,
        memory_bricks_total=len(registry.memory_entries),
        memory_bricks_off=memory_off,
        memory_total_bytes=memory_total,
        memory_allocated_bytes=memory_allocated,
        active_circuits=len(system.fabric.active_circuits),
        power_draw_w=system.total_power_w(),
    )
