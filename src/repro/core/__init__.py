"""The paper's primary contribution, assembled.

This package stitches every substrate into the "datacentre-in-a-box" the
paper prototypes:

* :mod:`repro.core.builder` — declarative construction of a disaggregated
  rack (bricks, trays, fabric, software stacks, orchestration).
* :mod:`repro.core.system` — :class:`DisaggregatedRack`, the top-level
  facade: boot VMs, scale memory up/down, power-manage bricks.
* :mod:`repro.core.flows` — timed end-to-end flows over the DES kernel
  (the Fig. 10 scale-up-agility experiment drives these).
* :mod:`repro.core.metrics` — system-wide snapshots (power, utilization).
"""

from repro.core.builder import PodBuilder, RackBuilder
from repro.core.flows import BootResult, TimedScaleUpHarness
from repro.core.metrics import SystemSnapshot, snapshot
from repro.core.migration import MigrationFlow, MigrationReport
from repro.core.system import (
    BrickStack,
    DisaggregatedRack,
    DisaggregatedSystem,
)

__all__ = [
    "BootResult",
    "BrickStack",
    "DisaggregatedRack",
    "DisaggregatedSystem",
    "MigrationFlow",
    "MigrationReport",
    "PodBuilder",
    "RackBuilder",
    "SystemSnapshot",
    "TimedScaleUpHarness",
    "snapshot",
]
