"""VM migration across compute bricks.

One of the project's stated objectives is "enhanced elasticity and
improved process/virtual machine migration within the datacenter" (§I).
Disaggregation changes the economics of migration fundamentally: the
bulk of a VM's memory lives on dMEMBRICKs, so moving the VM means
*re-pointing* its segments (swing the optical circuit, program a fresh
RMST entry, hotplug the windows on the destination) instead of copying
gigabytes across the network.  Only the local-DRAM-resident slice and
the device state travel.

:class:`MigrationFlow` implements that pipeline and also estimates what
the same move would cost a conventional (full-memory-copy) datacenter,
so the win is quantifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import OrchestrationError
from repro.software.vm import VmState
from repro.units import gbps, mib, milliseconds, transfer_time

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.system import DisaggregatedRack

#: Hypervisor pause/resume handshake cost, each way.
PAUSE_RESUME_S = milliseconds(30)

#: Device/vCPU state shipped alongside the local memory slice.
DEVICE_STATE_BYTES = mib(16)


@dataclass
class MigrationReport:
    """Outcome of one VM migration.

    Attributes:
        vm_id: The migrated guest.
        source_brick_id / target_brick_id: The move.
        steps: Per-phase latency ledger.
        copied_bytes: Bytes actually moved over the network.
        repointed_bytes: Remote-segment bytes that did NOT move.
        conventional_estimate_s: What a full-copy migration would take.
    """

    vm_id: str
    source_brick_id: str
    target_brick_id: str
    steps: dict[str, float] = field(default_factory=dict)
    copied_bytes: int = 0
    repointed_bytes: int = 0
    conventional_estimate_s: float = 0.0

    @property
    def total_s(self) -> float:
        return sum(self.steps.values())

    @property
    def speedup_vs_conventional(self) -> float:
        """How much faster than a full-memory-copy migration."""
        if self.total_s == 0:
            return float("inf")
        return self.conventional_estimate_s / self.total_s


class MigrationFlow:
    """Drives VM migrations on a :class:`DisaggregatedRack`."""

    def __init__(self, system: "DisaggregatedRack",
                 link_rate_bps: float = gbps(10)) -> None:
        if link_rate_bps <= 0:
            raise OrchestrationError("migration link rate must be positive")
        self.system = system
        self.link_rate_bps = link_rate_bps
        self.migrations = 0

    def migrate(self, vm_id: str, target_brick_id: str) -> MigrationReport:
        """Move *vm_id* to *target_brick_id*; returns the latency ledger.

        Pipeline: pause -> evict from source hypervisor -> per segment
        (source detach/unprogram, SDM re-point, target program/attach)
        -> copy the local slice + device state -> adopt on target ->
        resume.
        """
        hosted = self.system.hosting(vm_id)
        if hosted.brick_id == target_brick_id:
            raise OrchestrationError(
                f"VM {vm_id} is already on {target_brick_id}")
        source = self.system.stack(hosted.brick_id)
        target = self.system.stack(target_brick_id)
        vm = hosted.vm
        if not vm.is_running:
            raise OrchestrationError(
                f"only running VMs migrate (state: {vm.state.value})")

        runtime_segments = [s for s in source.scaleup.attached_segments()
                            if s.vm_id == vm_id]
        segments = list(hosted.boot_segments) + runtime_segments

        report = MigrationReport(
            vm_id=vm_id,
            source_brick_id=hosted.brick_id,
            target_brick_id=target_brick_id,
        )
        report.conventional_estimate_s = self.conventional_estimate_s(
            vm.configured_ram_bytes)

        # -- pre-flight: validate BOTH sides BEFORE touching the VM ------------
        # A failed check must leave the guest running on the source.
        power_on_s = self._preflight(vm, source, target, target_brick_id,
                                     segments)
        if power_on_s:
            report.steps["target_power_on"] = power_on_s

        # -- pause and evict -------------------------------------------------
        vm.transition(VmState.PAUSED)
        report.steps["pause"] = PAUSE_RESUME_S
        vm_obj, dimms = source.hypervisor.evict_vm(vm_id)
        repoint_total = 0.0
        for segment in segments:
            latency = source.agent.detach_segment(segment.segment_id)
            latency += source.agent.unprogram_segment(segment.segment_id)
            entry, sdm_latency = self.system.sdm.repoint_segment(
                segment.segment_id, target_brick_id)
            latency += sdm_latency
            latency += target.agent.program_segment(entry)
            latency += target.agent.attach_segment(segment)
            repoint_total += latency
            report.repointed_bytes += segment.size
        report.steps["segment_repoint"] = repoint_total
        for segment in runtime_segments:
            moved, dimm_id = source.scaleup.disown(segment.segment_id)
            target.scaleup.adopt(moved, dimm_id)

        # -- copy the part that actually moves ---------------------------------
        local_slice = max(0, vm.configured_ram_bytes
                          - report.repointed_bytes)
        report.copied_bytes = local_slice + DEVICE_STATE_BYTES
        report.steps["state_copy"] = transfer_time(
            report.copied_bytes, self.link_rate_bps)

        # -- adopt and resume -----------------------------------------------------
        target.hypervisor.adopt_vm(vm_obj, dimms)
        hosted.brick_id = target_brick_id
        vm.transition(VmState.RUNNING)
        report.steps["resume"] = PAUSE_RESUME_S

        self.migrations += 1
        return report

    def _preflight(self, vm, source, target, target_brick_id: str,
                   segments) -> float:
        """Validate both sides can survive the move; returns any
        power-on cost.

        Checks (all before the VM is paused, so failure is harmless):
        source-side memory accounting after the detach, target cores,
        target local-DRAM headroom for the slice that must move, and an
        optical path to every dMEMBRICK backing a segment.  A sleeping
        target is woken here.
        """
        from repro.orchestration.sdm_controller import DEFAULT_SDM_TIMINGS

        # Source side: this VM's remote segments leave with it, but the
        # hotplugged pool they contribute is brick-wide — other guests'
        # RAM may be backed by it.  Refuse the move (cleanly, with the
        # guest still running) rather than strand co-hosted VMs; the
        # mid-pipeline kernel guard would otherwise fire after the VM
        # was already paused and evicted.
        leaving = sum(s.size for s in segments)
        remaining_pool = source.kernel.total_ram_bytes - leaving
        remaining_reserved = (source.kernel.reserved_bytes
                              - vm.configured_ram_bytes)
        if remaining_reserved > remaining_pool:
            raise OrchestrationError(
                f"cannot migrate {vm.vm_id}: detaching its {leaving} "
                f"segment bytes would leave {remaining_pool} bytes on "
                f"{source.brick.brick_id} for {remaining_reserved} bytes "
                f"of co-hosted guest RAM")

        power_on_s = 0.0
        if self.system.sdm.registry.ensure_powered(target_brick_id):
            power_on_s = DEFAULT_SDM_TIMINGS.power_on_s

        free_cores = (target.brick.core_count
                      - target.hypervisor.cores_in_use())
        if free_cores < vm.vcpus:
            raise OrchestrationError(
                f"cannot migrate {vm.vm_id}: {target_brick_id} has "
                f"{free_cores} free cores, needs {vm.vcpus}")

        repointed = sum(s.size for s in segments)
        local_slice = max(0, vm.configured_ram_bytes - repointed)
        if target.kernel.available_bytes < local_slice:
            raise OrchestrationError(
                f"cannot migrate {vm.vm_id}: {target_brick_id} has "
                f"{target.kernel.available_bytes} bytes free for the "
                f"{local_slice}-byte local slice")

        for memory_brick_id in {s.memory_brick_id for s in segments}:
            if not self.system.sdm.can_reach(target_brick_id,
                                             memory_brick_id):
                raise OrchestrationError(
                    f"cannot migrate {vm.vm_id}: no optical path from "
                    f"{target_brick_id} to {memory_brick_id}")
        return power_on_s

    def conventional_estimate_s(self, ram_bytes: int) -> float:
        """Full-memory-copy migration time over the same link.

        The conventional datacenter must push every guest page across
        the network (pre-copy iterations ignored — this is the floor).
        """
        return (2 * PAUSE_RESUME_S
                + transfer_time(ram_bytes + DEVICE_STATE_BYTES,
                                self.link_rate_bps))
