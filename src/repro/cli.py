"""Command-line entry point: run the paper's experiments.

Usage::

    dredbox-repro list
    dredbox-repro run fig12
    dredbox-repro run-all
    dredbox-repro topology validate examples/topologies/*.json
    dredbox-repro topology describe M
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.runner import EXPERIMENTS, run_all
from repro.federation.placer import SPILL_POLICIES


def _add_axis_flags(parser: argparse.ArgumentParser) -> None:
    """Seed + sweep-axis overrides shared by ``run`` and ``run-all``."""
    parser.add_argument("--seed", type=int, default=None,
                        help="base RNG seed threaded through the "
                             "experiment (default: each driver's own)")
    parser.add_argument("--shards", type=int, default=None,
                        help="controller shard count for shard-aware "
                             "experiments (cluster_scale; default: "
                             "sweep 1, half-rack and one-per-rack)")
    parser.add_argument("--pods", type=int, default=None,
                        help="pod count for federation-aware "
                             "experiments (federation; default: sweep "
                             "the driver's pod axis)")
    parser.add_argument("--spill-policy", choices=SPILL_POLICIES,
                        default=None, dest="spill_policy",
                        help="global-placer spill policy for "
                             "federation-aware experiments (default: "
                             "compare pinned vs least-loaded)")
    parser.add_argument("--mtbf", type=float, default=None,
                        help="mean time between failures (s) applied "
                             "to every fault class in fault-aware "
                             "experiments (availability; default: "
                             "sweep the driver's MTBF axis)")
    parser.add_argument("--fault-classes", default=None,
                        dest="fault_classes",
                        help="comma-separated fault classes to inject "
                             "(memory_brick, rack_uplink, switch, "
                             "shard, pod; default: all)")
    parser.add_argument("--self-heal", choices=("on", "off"),
                        default=None, dest="self_heal",
                        help="pin the availability sweep's reaction "
                             "axis (default: compare on vs off)")
    parser.add_argument("--workers", type=int, default=None,
                        help="run federation-aware experiments on the "
                             "message-passing parallel backend with "
                             "this many OS worker processes (0 = its "
                             "in-process serial reference; default: "
                             "the direct-call serial controller)")
    parser.add_argument("--sync-window", type=float, default=None,
                        dest="sync_window",
                        help="conservative synchronization window "
                             "(lookahead) in seconds for the parallel "
                             "backend; needs --workers (default: the "
                             "inter-pod link latency)")
    parser.add_argument("--replica-groups", type=int, default=None,
                        dest="replica_groups",
                        help="group every N consecutive tenants into a "
                             "replica set and place group members on "
                             "distinct pods via the placer's "
                             "anti-affinity (federation; N >= 2; "
                             "default: ungrouped tenants)")
    parser.add_argument("--drain", default=None,
                        help="pod the maintenance study rolls out of "
                             "service mid-trace, e.g. pod0 "
                             "(maintenance; default: the hot pod)")
    parser.add_argument("--hazard", default=None,
                        help="failure-domain inter-arrival hazard for "
                             "the maintenance study's drain+faults "
                             "cell: exponential:<mean_s> or "
                             "weibull:<scale_s>:<shape> (shape < 1 = "
                             "infant mortality, > 1 = wear-out; "
                             "default: exponential at the domain MTBF)")
    parser.add_argument("--domains", default=None,
                        choices=("rack-power", "pod-network", "both"),
                        help="which correlated failure-domain set the "
                             "maintenance study injects (default: "
                             "rack-power)")
    parser.add_argument("--topology", default=None,
                        help="compiled topology for the federation-"
                             "tier experiments (federation, "
                             "availability, maintenance, "
                             "parallel_scaling): a template name "
                             "(S, M, L, XL) or a spec file path "
                             "(default: each driver's own template)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each experiment in cProfile and "
                             "append the hottest functions (sorted by "
                             "cumulative time) to its report")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="dredbox-repro",
        description="Reproduce the dReDBox (DATE 2018) tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS),
                     help="experiment id (paper table/figure)")
    _add_axis_flags(run)

    run_all_cmd = sub.add_parser("run-all", help="run every experiment")
    _add_axis_flags(run_all_cmd)

    topology = sub.add_parser(
        "topology", help="validate or describe topology specs")
    topology_sub = topology.add_subparsers(dest="topology_command",
                                           required=True)
    validate = topology_sub.add_parser(
        "validate",
        help="validate specs (template names or spec files) and print "
             "a one-line summary per spec; exit 1 on the first "
             "invalid one")
    validate.add_argument("specs", nargs="+",
                          help="template name (S, M, L, XL) or path "
                               "to a .json/.yaml spec file")
    describe = topology_sub.add_parser(
        "describe",
        help="print a spec's canonical normalized form as JSON "
             "(compile -> describe -> re-compile is a fixed point)")
    describe.add_argument("spec",
                          help="template name (S, M, L, XL) or path "
                               "to a .json/.yaml spec file")
    return parser


def _spec_summary(spec) -> str:
    """One human-readable line for ``topology validate`` output."""
    from repro.units import gib
    surface = []
    if spec.domains:
        surface.append(
            "domains: " + ", ".join(d.kind for d in spec.domains))
    if spec.maintenance:
        surface.append(f"{len(spec.maintenance)} drain window(s)")
    if spec.replica_groups:
        surface.append(f"replica groups of {spec.replica_groups}")
    return (f"{spec.name}: {spec.pods} pod(s) x {spec.racks_per_pod} "
            f"rack(s) x {spec.bricks_per_rack} brick(s), pool "
            f"{spec.pool_bytes / gib(1):g} GiB, "
            f"placement {spec.placement}/{spec.spill_policy}"
            + (" — " + "; ".join(surface) if surface else ""))


def _run_topology(args: argparse.Namespace) -> int:
    from repro.errors import TopologyError
    from repro.topology import load_spec
    if args.topology_command == "validate":
        for source in args.specs:
            try:
                spec = load_spec(source)
            except TopologyError as error:
                print(f"INVALID {source}: {error}", file=sys.stderr)
                return 1
            print(f"ok {source} — {_spec_summary(spec)}")
        return 0
    spec = load_spec(args.spec)  # describe: let errors propagate
    print(json.dumps(spec.to_dict(), indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.command == "topology":
        return _run_topology(args)
    if args.command == "run":
        report = run_all([args.experiment], seed=args.seed,
                         shards=args.shards, pods=args.pods,
                         spill_policy=args.spill_policy,
                         mtbf=args.mtbf,
                         fault_classes=args.fault_classes,
                         self_heal=args.self_heal,
                         workers=args.workers,
                         sync_window=args.sync_window,
                         replica_groups=args.replica_groups,
                         drain=args.drain, hazard=args.hazard,
                         domains=args.domains,
                         topology=args.topology,
                         profile=args.profile)
        print(report.runs[0].rendered)
        if report.runs[0].profile is not None:
            print(report.runs[0].profile)
        return 0
    if args.command == "run-all":
        print(run_all(seed=args.seed, shards=args.shards,
                      pods=args.pods,
                      spill_policy=args.spill_policy,
                      mtbf=args.mtbf,
                      fault_classes=args.fault_classes,
                      self_heal=args.self_heal,
                      workers=args.workers,
                      sync_window=args.sync_window,
                      replica_groups=args.replica_groups,
                      drain=args.drain, hazard=args.hazard,
                      domains=args.domains,
                      topology=args.topology,
                      profile=args.profile).rendered())
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
