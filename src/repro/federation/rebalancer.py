"""Idle-window pod draining: the federation's load rebalancer.

Spill placement keeps tenants running when their home pod is full, but
it leaves the federation skewed afterwards: the hot pod stays saturated
(so every future local placement there spills too) while cold pods idle.
:class:`FederationRebalancer` is the federation's counterpart of the
pod-level :class:`~repro.cluster.defrag.DefragmentationTask`, reusing
its idle-window machinery — a periodic pass, gated on an idle probe so
background copies never contend with foreground traffic — but moving
**tenants between pods** instead of segments between bricks: when the
memory-utilization gap between the hottest and coldest pod exceeds the
configured threshold, the smallest-footprint tenant of the hot pod is
migrated (two-phase, via
:class:`~repro.federation.migration.InterPodMigrator`) to the coldest
pod that fits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import FederationError, ReproError
from repro.sim.engine import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.federation.controller import FederationController


@dataclass
class RebalanceReport:
    """Running totals of the background draining task."""

    passes: int = 0
    migrations: int = 0
    rollbacks: int = 0
    bytes_drained: int = 0


class FederationRebalancer:
    """Drains overloaded pods onto underloaded ones in idle windows."""

    def __init__(self, *, interval_s: float = 0.5,
                 imbalance_threshold: float = 0.25,
                 max_migrations_per_pass: int = 1) -> None:
        if interval_s <= 0:
            raise FederationError("rebalance interval must be positive")
        if not 0.0 < imbalance_threshold <= 1.0:
            raise FederationError(
                "imbalance threshold must be in (0, 1]")
        if max_migrations_per_pass < 1:
            raise FederationError("need >= 1 migration per pass")
        self.interval_s = interval_s
        self.imbalance_threshold = imbalance_threshold
        self.max_migrations_per_pass = max_migrations_per_pass
        self.report = RebalanceReport()
        self.federation: Optional["FederationController"] = None

    # -- scheduling ---------------------------------------------------------

    def install(self, federation: "FederationController") -> None:
        """Start the periodic background process on the federation."""
        self.federation = federation
        federation.sim.process(self._loop())

    def _loop(self) -> ProcessGenerator:
        while True:
            yield self.federation.sim.timeout(self.interval_s)
            if not self.federation.is_idle():
                continue  # only drain in idle windows (defrag discipline)
            yield from self.pass_process()

    # -- one draining pass ---------------------------------------------------

    @staticmethod
    def pod_utilization(pod) -> float:
        """Fraction of the pod's memory pool currently allocated.

        Measured through the pod's ``load_snapshot()`` when it has one
        (the shared wire-protocol measurement); direct registry reads
        otherwise (plain test doubles).
        """
        loader = getattr(pod, "load_snapshot", None)
        if loader is not None:
            return loader().utilization
        entries = [e for e in pod.system.sdm.registry.memory_entries
                   if not e.failed]
        allocated = sum(e.allocator.allocated_bytes for e in entries)
        total = allocated + sum(e.allocator.free_bytes for e in entries)
        return allocated / total if total else 0.0

    def pass_process(self) -> ProcessGenerator:
        """One pass: migrate up to the per-pass budget of tenants."""
        self.report.passes += 1
        for _ in range(self.max_migrations_per_pass):
            plan = self._plan_move()
            if plan is None:
                break
            tenant_id, target_pod_id = plan
            try:
                outcome = yield from self.federation.migrate_tenant_process(
                    tenant_id, target_pod_id)
            except ReproError:
                self.report.rollbacks += 1
                break  # plan went stale (tenant departed/moved); re-plan
            if outcome.committed:
                self.report.migrations += 1
                self.report.bytes_drained += outcome.bytes_copied
            else:
                self.report.rollbacks += 1
                break
        return self.report

    def _plan_move(self) -> Optional[tuple[str, str]]:
        """Plan one drain: ``(tenant_id, target_pod_id)`` or ``None``.

        Hot pod = highest memory utilization, cold pod = lowest; no move
        is planned while the gap sits under the threshold.  The hot
        pod's smallest-footprint tenant that fits the cold pod moves
        (smallest first: least copy time per utilization point freed,
        and the move cannot overshoot into reverse imbalance).
        """
        fed = self.federation
        # Failed pods neither donate nor receive: their planes are
        # paused, so a drain involving one would park until repair.
        loads = {pod_id: self.pod_utilization(pod)
                 for pod_id, pod in fed.pods.items() if pod.alive}
        if len(loads) < 2:
            return None
        hot = max(sorted(loads), key=lambda p: loads[p])
        cold = min(sorted(loads), key=lambda p: loads[p])
        if loads[hot] - loads[cold] < self.imbalance_threshold:
            return None
        cold_snapshot = fed.placer.snapshot(cold)
        candidates = []
        for tenant_id in fed.tenants_on(hot):
            if tenant_id in fed._moving:
                continue
            try:
                vm = fed.pods[hot].system.hosting(tenant_id).vm
            except ReproError:
                continue  # registration went stale under our feet
            candidates.append((vm.configured_ram_bytes, tenant_id,
                               vm.vcpus))
        candidates.sort(key=lambda entry: (entry[0], entry[1]))
        for footprint, tenant_id, vcpus in candidates:
            if fed.placer.fits(cold_snapshot, footprint, vcpus):
                return tenant_id, cold
        return None
