"""Inter-pod tenant migration: two-phase reserve, copy, commit.

Within a pod, migration is dReDBox's headline win — segments are
re-pointed (:meth:`~repro.orchestration.sdm_controller.SdmController.
repoint_segment`) instead of copied.  *Between* pods no light path
exists, so a federation migration is built from the same primitives the
pod tier already has, arranged as a two-phase protocol that mirrors the
cross-shard reserve of PR 4:

1. **drain** — wait for the tenant's in-flight requests on the source
   pod (``plane.tenant_tail``), so the footprint being copied is
   stable; a federation-level gate defers new same-tenant submissions
   until the move resolves (per-tenant FIFO survives the re-homing);
2. **reserve in the target pod** — a tentative
   :class:`~repro.federation.placer.PodClaim` on the federation ledger
   plus a full boot through the target pod's admission pipeline (its
   SDM-C places, reserves and attaches the tenant's entire footprint —
   boot RAM and runtime segments — exactly like
   :meth:`~repro.orchestration.sdm_controller.SdmController.
   relocate_segment` carves the target capacity before any bytes move);
3. **copy** — the footprint crosses the inter-pod link at the
   federation's provisioned rate (the one cost intra-pod migration
   never pays);
4. **commit** — the source pod departs the tenant, returning its claim
   there (segments released, circuits torn down), and the federation
   re-homes the tenant; **rollback** at any earlier step releases the
   target-side claim and leaves the tenant untouched at home.

A failed target boot (capacity evaporated between decision and
reservation) therefore never strands capacity on either pod — the
conservation property the federation test suite checks with hypothesis,
mirroring the cross-shard suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import FederationError, OrchestrationError
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.engine import ProcessGenerator
from repro.units import transfer_time

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.federation.controller import FederationController


@dataclass
class MigrationOutcome:
    """What one inter-pod migration attempt did."""

    tenant_id: str
    source_pod: str
    target_pod: str
    bytes_copied: int = 0
    latency_s: float = 0.0
    committed: bool = False
    note: str = ""


class InterPodMigrator:
    """Runs inter-pod migrations as DES processes on the federation."""

    def __init__(self, federation: "FederationController") -> None:
        self.federation = federation

    def migrate_process(self, tenant_id: str,
                        target_pod_id: str) -> ProcessGenerator:
        """DES process: move *tenant_id* to *target_pod_id*.

        Returns a :class:`MigrationOutcome`; a non-committed outcome
        means the tenant still runs, untouched, in its source pod.
        """
        fed = self.federation
        source_id = fed.pod_of(tenant_id)
        if target_pod_id not in fed.pods:
            raise FederationError(f"unknown pod {target_pod_id!r}")
        if target_pod_id == source_id:
            raise FederationError(
                f"{tenant_id} already lives in {target_pod_id}")
        if tenant_id in fed._moving:
            raise FederationError(f"{tenant_id} is already migrating")
        source = fed.pods[source_id]
        target = fed.pods[target_pod_id]
        outcome = MigrationOutcome(tenant_id=tenant_id,
                                   source_pod=source_id,
                                   target_pod=target_pod_id)
        started = fed.sim.now
        gate = fed.sim.event()
        fed._moving[tenant_id] = gate
        try:
            # Phase 0 — drain: let in-flight same-tenant work land.
            tail = source.plane.tenant_tail(tenant_id)
            if tail is not None and not tail.triggered:
                yield tail
            try:
                hosted = source.system.hosting(tenant_id)
            except OrchestrationError:
                # The registration is stale (the tenant departed while
                # the move waited); drop it so planners stop seeing it.
                if fed._tenant_pod.get(tenant_id) == source_id:
                    del fed._tenant_pod[tenant_id]
                outcome.note = "tenant departed before the move started"
                return outcome
            vm = hosted.vm
            # The whole guest footprint: boot RAM plus every runtime
            # DIMM (each backed by a remote segment on this side) —
            # exactly what the target pod must re-provision and the
            # inter-pod link must carry.
            total_bytes = vm.configured_ram_bytes

            # Phase 1 — reserve in the target pod: ledger claim plus a
            # real boot of the whole footprint through its admission
            # pipeline.
            claim = fed.placer.reserve(target_pod_id, total_bytes,
                                       vm.vcpus, tenant_id=tenant_id)
            boot = target.plane.submit(
                "boot", tenant_id,
                request=VmAllocationRequest(
                    vm_id=tenant_id, vcpus=vm.vcpus,
                    ram_bytes=total_bytes))
            yield boot.done
            if not boot.record.ok:
                fed.placer.release(claim)  # rollback: tenant stays home
                fed.stats.migration_rollbacks += 1
                outcome.note = (f"target reservation rejected: "
                                f"{boot.record.note}")
                return outcome
            # The target pod's registry now shows the footprint, so the
            # ledger claim is redundant — holding it through the copy
            # would double-count the bytes against the target and make
            # concurrent placements spill spuriously.
            fed.placer.commit(claim)

            # Copy — the footprint crosses the inter-pod link.
            yield fed.sim.timeout(
                transfer_time(total_bytes, fed.interpod_link_bps))

            # Phase 2 — commit: release the home-pod claim.
            depart = source.plane.submit("depart", tenant_id)
            yield depart.done
            if not depart.record.ok:
                # The source would not let go (teardown failure): keep
                # exactly one live copy by tearing the target side down
                # (its registry allocation is freed by this depart; the
                # ledger claim was already committed away above).
                rollback = target.plane.submit("depart", tenant_id)
                yield rollback.done
                fed.stats.migration_rollbacks += 1
                outcome.note = (f"source release failed: "
                                f"{depart.record.note}")
                return outcome
            fed._tenant_pod[tenant_id] = target_pod_id
            fed.stats.migrations += 1
            fed.stats.bytes_migrated += total_bytes
            outcome.bytes_copied = total_bytes
            outcome.committed = True
            return outcome
        finally:
            outcome.latency_s = fed.sim.now - started
            del fed._moving[tenant_id]
            gate.succeed()
