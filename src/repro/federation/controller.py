"""The federation tier: many pods under one global placement brain.

dReDBox's orchestration story ends at the pod — one SDM controller
(sharded or not) behind one :class:`~repro.fabric.fabric.PodFabric`.
:class:`FederationController` is the next tier up: it manages N
**independent** pods, each a full
:class:`~repro.core.system.DisaggregatedSystem` with its own
:class:`~repro.cluster.control_plane.ControlPlane` and (typically)
:class:`~repro.orchestration.sharding.ShardedSdmController`, on **one
shared DES clock** — every pod's admission queue, dispatcher workers
and shard critical sections interleave on the same simulator, while
each pod keeps its own :class:`~repro.sim.control.ControlContext` so
two pods' shard domains never alias onto one critical section.

The federation adds exactly three things the pod tier cannot express:

* **global placement** — a :class:`~repro.federation.placer.
  GlobalPlacer` routes each arriving tenant to its home pod
  (locality-first) and spills to another pod on capacity exhaustion,
  under a pluggable scoring function;
* **inter-pod tenant migration** — a two-phase reserve/copy/commit
  protocol (:mod:`repro.federation.migration`) built from the pod
  tier's own primitives, with rollback mirroring the cross-shard
  reserve of the sharded controller;
* **cross-pod rebalancing** — an idle-window draining task
  (:mod:`repro.federation.rebalancer`) that moves tenants off
  overloaded pods, reusing the defragmentation task's scheduling
  discipline.

Tenant identity is federation-scoped: requests are routed to the pod
the tenant currently lives in, a per-tenant migration gate defers
submissions that race with a move, and each pod's own same-tenant FIFO
chain covers the rest — so per-tenant ordering holds across pod
reassignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.control_plane import ClusterRequest, ControlPlane
from repro.cluster.metrics import ControlPlaneStats, RequestRecord
from repro.cluster.trace import TenantSpec, TenantTrace
from repro.core.builder import PodBuilder
from repro.core.system import DisaggregatedSystem
from repro.errors import FederationError, ReproError
from repro.federation.messages import PodStatus, measure_pod
from repro.federation.migration import InterPodMigrator, MigrationOutcome
from repro.federation.placer import GlobalPlacer
from repro.federation.rebalancer import FederationRebalancer
from repro.orchestration.placement import make_placement_policy
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.control import ControlContext
from repro.sim.engine import Event, ProcessGenerator, Simulator
from repro.units import gbps, gib, mib

#: Provisioned bandwidth of the inter-pod link the migration copies
#: ride (pods are independent fabrics; this is the packet network
#: between them, not an optical circuit).
DEFAULT_INTERPOD_LINK_BPS = gbps(100)


@dataclass
class FederatedPod:
    """One pod under federation management."""

    pod_id: str
    system: DisaggregatedSystem
    plane: ControlPlane
    #: False while the whole pod is failed (fault injection): its plane
    #: is paused and the placer stops routing new tenants to it.
    alive: bool = True
    #: True while rolling maintenance drains the pod: the placer stops
    #: routing *new* tenants here (spill keeps admissions flowing), but
    #: the plane stays up and serves the tenants still hosted — the
    #: zero-downtime half of a drain.
    draining: bool = False

    def load_snapshot(self) -> PodStatus:
        """The pod's current load, in the wire-protocol form.

        The placer and rebalancer consume pods exclusively through
        this measurement, so the parallel federation can substitute a
        coordinator-side handle serving the same numbers from its last
        window barrier (:mod:`repro.federation.parallel`) without any
        policy code noticing.
        """
        return measure_pod(self.system, self.plane, self.alive)


@dataclass
class FederationStats:
    """Everything the federation measured during one run."""

    #: Tenants *admitted* outside their home pod (a spilled placement
    #: the target pod then rejected counts as a rejection, not a spill).
    spills: int = 0
    boots_admitted: int = 0
    boots_rejected: int = 0
    migrations: int = 0
    migration_rollbacks: int = 0
    bytes_migrated: int = 0
    #: Tenants re-admitted on another pod after losing theirs.
    readmissions: int = 0
    #: Re-admission attempts no surviving pod could take.
    readmission_failures: int = 0
    duration_s: float = 0.0
    #: The boot request record of every trace-admitted tenant (excludes
    #: migration-internal boots, which live in the pod stats only).
    admission_records: list[RequestRecord] = field(default_factory=list)
    pod_stats: dict[str, ControlPlaneStats] = field(default_factory=dict)

    @property
    def admitted_fraction(self) -> float:
        total = self.boots_admitted + self.boots_rejected
        return self.boots_admitted / total if total else 0.0

    def admission_latency_percentile(self, percentile: float) -> float:
        """Percentile of admitted tenants' boot latency, in seconds."""
        latencies = [r.latency_s for r in self.admission_records if r.ok]
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    def records(self, kind: Optional[str] = None) -> list[RequestRecord]:
        """Request records across every pod, optionally of one kind."""
        merged: list[RequestRecord] = []
        for stats in self.pod_stats.values():
            merged.extend(r for r in stats.records
                          if kind is None or r.kind == kind)
        return merged


class FederationController:
    """Global placement + migration + rebalancing over N pods."""

    def __init__(self, systems: Sequence[DisaggregatedSystem], *,
                 pod_ids: Optional[Sequence[str]] = None,
                 placer: Optional[GlobalPlacer] = None,
                 interpod_link_bps: float = DEFAULT_INTERPOD_LINK_BPS,
                 rebalancer: Optional[FederationRebalancer] = None,
                 max_batch: int = 4,
                 batch_window_s: float = 0.001,
                 workers: int = 8,
                 offload: bool = True) -> None:
        if not systems:
            raise FederationError("a federation needs at least one pod")
        ids = list(pod_ids) if pod_ids is not None else [
            system.pod.pod_id if system.pod is not None else f"pod{index}"
            for index, system in enumerate(systems)]
        if len(ids) != len(systems):
            raise FederationError(
                f"{len(systems)} systems but {len(ids)} pod ids")
        if len(set(ids)) != len(ids):
            raise FederationError(f"duplicate pod ids in {ids}")
        self.sim = Simulator()
        self.pods: dict[str, FederatedPod] = {}
        for pod_id, system in zip(ids, systems):
            plane = ControlPlane(
                system, ctx=ControlContext(sim=self.sim),
                max_batch=max_batch, batch_window_s=batch_window_s,
                workers=workers, offload=offload)
            self.pods[pod_id] = FederatedPod(pod_id, system, plane)
        self.placer = placer if placer is not None else GlobalPlacer()
        self.placer.bind(self.pods)
        self.interpod_link_bps = interpod_link_bps
        self.stats = FederationStats()
        self.migrator = InterPodMigrator(self)
        #: tenant id -> pod id it currently lives in.
        self._tenant_pod: dict[str, str] = {}
        #: tenant id -> gate event while an inter-pod move is in flight.
        self._moving: dict[str, Event] = {}
        #: Called ``(tenant_id, pod_id)`` after a served depart has
        #: deregistered the tenant — availability accounting hooks in
        #: here so a departed tenant stops accruing downtime.
        self.depart_hooks: list[Callable[[str, str], None]] = []
        self.rebalancer = rebalancer
        if rebalancer is not None:
            rebalancer.install(self)

    # -- inventory ----------------------------------------------------------

    @property
    def pod_count(self) -> int:
        return len(self.pods)

    def pod_of(self, tenant_id: str) -> str:
        """The pod *tenant_id* currently lives in."""
        try:
            return self._tenant_pod[tenant_id]
        except KeyError:
            raise FederationError(
                f"no tenant {tenant_id!r} in this federation") from None

    def tenants_on(self, pod_id: str) -> list[str]:
        """Tenant ids currently homed on *pod_id*, sorted."""
        if pod_id not in self.pods:
            raise FederationError(f"unknown pod {pod_id!r}")
        return sorted(tenant for tenant, pod in self._tenant_pod.items()
                      if pod == pod_id)

    def tenant_footprint(self, tenant_id: str) -> int:
        """The tenant's total memory footprint — boot RAM plus every
        hotplugged runtime DIMM — what an inter-pod move must copy."""
        pod = self.pods[self.pod_of(tenant_id)]
        return pod.system.hosting(tenant_id).vm.configured_ram_bytes

    def is_idle(self) -> bool:
        """True when every pod's plane is idle and no move is in flight."""
        return (not self._moving
                and all(pod.plane.is_idle()
                        for pod in self.pods.values()))

    # -- request routing ----------------------------------------------------

    def submit(self, kind: str, tenant_id: str,
               **payload) -> ClusterRequest:
        """Route a request to the tenant's current pod.

        Callers racing an inter-pod move should use
        :meth:`submit_process` instead, which defers until the move
        resolves (and therefore routes to the tenant's *final* pod).
        A served ``depart`` deregisters the tenant from the federation,
        so routing tables never hold tenants that no longer exist.
        """
        pod_id = self.pod_of(tenant_id)
        request = self.pods[pod_id].plane.submit(
            kind, tenant_id, **payload)
        if kind == "depart":
            def deregister(_event) -> None:
                # Only drop a mapping this depart really ended: a move
                # that re-homed the tenant meanwhile owns the new one.
                if (request.record.ok
                        and self._tenant_pod.get(tenant_id) == pod_id):
                    del self._tenant_pod[tenant_id]
                    # Same guard for the committed-claim ledger: a
                    # migration/re-admission that re-homed the tenant
                    # owns the newer entry.
                    ledger = self.placer.ledger_claim(tenant_id)
                    if ledger is not None and ledger.pod_id == pod_id:
                        self.placer.forget(tenant_id)
                    for hook in self.depart_hooks:
                        hook(tenant_id, pod_id)
            request.done.callbacks.append(deregister)
        return request

    def submit_process(self, kind: str, tenant_id: str,
                       **payload) -> ProcessGenerator:
        """DES process form of :meth:`submit`: waits out any in-flight
        migration of the tenant, then submits to the pod it landed in.
        Returns the admitted request.
        """
        gate = self._moving.get(tenant_id)
        if gate is not None and not gate.triggered:
            yield gate
        return self.submit(kind, tenant_id, **payload)

    def migration_gate(self, tenant_id: str) -> Optional[Event]:
        """The gate of the tenant's in-flight move, if one is running."""
        return self._moving.get(tenant_id)

    # -- migration ----------------------------------------------------------

    def migrate_tenant_process(self, tenant_id: str,
                               target_pod_id: str) -> ProcessGenerator:
        """DES process: move a tenant to another pod (two-phase; see
        :mod:`repro.federation.migration`).  Returns the
        :class:`~repro.federation.migration.MigrationOutcome`."""
        outcome: MigrationOutcome = yield from self.migrator.migrate_process(
            tenant_id, target_pod_id)
        return outcome

    # -- pod failure and re-admission ---------------------------------------

    def fail_pod(self, pod_id: str) -> list[str]:
        """Take a whole pod down (fault injection).

        The pod's control plane pauses (queued and future requests park
        until repair), the placer stops routing new tenants to it, and
        the tenants currently living there — returned, sorted — are cut
        off.  Without self-healing they stay down until
        :meth:`restore_pod`; with it,
        :meth:`readmit_pod_tenants_process` boots them elsewhere from
        the committed-claim ledger.
        """
        pod = self.pods.get(pod_id)
        if pod is None:
            raise FederationError(f"unknown pod {pod_id!r}")
        if not pod.alive:
            raise FederationError(f"pod {pod_id!r} is already failed")
        pod.alive = False
        pod.plane.pause()
        return self.tenants_on(pod_id)

    def restore_pod(self, pod_id: str) -> None:
        """Bring a failed pod back; its plane resumes serving."""
        pod = self.pods.get(pod_id)
        if pod is None:
            raise FederationError(f"unknown pod {pod_id!r}")
        if pod.alive:
            raise FederationError(f"pod {pod_id!r} is not failed")
        pod.alive = True
        pod.plane.resume()

    def readmit_pod_tenants_process(self, pod_id: str) -> ProcessGenerator:
        """DES process: re-admit a lost pod's tenants elsewhere.

        Replays the placer's committed-claim ledger for *pod_id* in
        tenant-id order (deterministic), booting each tenant on the
        best surviving pod.  Returns ``(readmitted, failed)`` tenant-id
        lists; failures (no surviving capacity) leave the tenant parked
        on the dead pod until repair.
        """
        readmitted: list[str] = []
        failed: list[str] = []
        for claim in self.placer.ledger_for_pod(pod_id):
            new_pod = yield from self.readmit_tenant_process(
                claim.tenant_id)
            if new_pod is None:
                failed.append(claim.tenant_id)
            else:
                readmitted.append(claim.tenant_id)
        return readmitted, failed

    def readmit_tenant_process(self, tenant_id: str) -> ProcessGenerator:
        """DES process: boot a lost tenant's replacement elsewhere.

        The footprint comes from the tenant's committed
        :class:`~repro.federation.placer.PodClaim`; the dead replica is
        fenced (its VM state released, so the repaired pod never
        double-books that capacity) and a fresh boot runs on the
        surviving pod the placer picks — emergency placement, ignoring
        the spill policy but honouring anti-affinity.  The tenant's
        migration gate is held for the duration, so racing lifecycle
        requests route to the final pod.  Returns the new pod id, or
        ``None`` when no surviving pod can take the tenant.
        """
        claim = self.placer.ledger_claim(tenant_id)
        if claim is None or tenant_id in self._moving:
            return None
        source = self.pods.get(claim.pod_id)
        target = self.placer.place_for_readmission(
            tenant_id, claim.ram_bytes, claim.vcpus)
        if target is None:
            self.stats.readmission_failures += 1
            return None
        gate = self.sim.event()
        self._moving[tenant_id] = gate
        try:
            if source is not None and not source.alive:
                try:  # fence the lost replica's bookkeeping
                    source.system.terminate_vm(tenant_id)
                except ReproError:
                    pass  # never fully booted there
            new_claim = self.placer.reserve(
                target, claim.ram_bytes, claim.vcpus,
                tenant_id=tenant_id)
            self._tenant_pod[tenant_id] = target
            boot = self.pods[target].plane.submit(
                "boot", tenant_id,
                request=VmAllocationRequest(
                    vm_id=tenant_id, vcpus=claim.vcpus,
                    ram_bytes=claim.ram_bytes))
            yield boot.done
            if not boot.record.ok:
                self.placer.release(new_claim)
                self._tenant_pod[tenant_id] = claim.pod_id
                self.stats.readmission_failures += 1
                return None
            self.placer.commit(new_claim)  # supersedes the dead entry
            self.stats.readmissions += 1
            return target
        finally:
            del self._moving[tenant_id]
            gate.succeed()

    # -- tenant lifecycles --------------------------------------------------

    def serve_trace(self, trace: TenantTrace,
                    home_of: Optional[Callable[[TenantSpec], str]] = None
                    ) -> FederationStats:
        """Drive every tenant lifecycle in *trace* to completion.

        *home_of* overrides the placer's hashed home-pod assignment
        (experiments use it to model skewed locality).  Runs the shared
        simulator until the last tenant departs and returns the
        federation statistics (pod-level stats attached).
        """
        lifecycles = [self.sim.process(self._tenant(spec, home_of))
                      for spec in trace.tenants]
        self.sim.run(until=self.sim.all_of(lifecycles))
        return self._finalize()

    def drain(self) -> FederationStats:
        """Run until all submitted work is served (unit-test helper);
        invalid with a background rebalancer installed (its timer never
        lets the event heap empty)."""
        if self.rebalancer is not None:
            raise FederationError(
                "drain() cannot terminate with a background rebalancer "
                "installed; use serve_trace()")
        self.sim.run()
        return self._finalize()

    def _finalize(self) -> FederationStats:
        self.stats.duration_s = self.sim.now
        for pod in self.pods.values():
            pod.plane.stats.duration_s = self.sim.now
            self.stats.pod_stats[pod.pod_id] = pod.plane.stats
        return self.stats

    def _tenant(self, spec: TenantSpec,
                home_of: Optional[Callable[[TenantSpec], str]]
                ) -> ProcessGenerator:
        yield self.sim.timeout(spec.arrival_s)
        home = (home_of(spec) if home_of is not None
                else self.placer.home_pod(spec.tenant_id))
        pod_id = self.placer.place(spec.tenant_id, spec.ram_bytes,
                                   spec.vcpus, home=home)
        # Two-phase admission: the claim covers the decision-to-
        # reservation window, then the pod's own allocators take over.
        claim = self.placer.reserve(pod_id, spec.ram_bytes, spec.vcpus,
                                    tenant_id=spec.tenant_id)
        self._tenant_pod[spec.tenant_id] = pod_id
        boot = self.pods[pod_id].plane.submit(
            "boot", spec.tenant_id,
            request=VmAllocationRequest(
                vm_id=spec.tenant_id, vcpus=spec.vcpus,
                ram_bytes=spec.ram_bytes))
        yield boot.done
        self.stats.admission_records.append(boot.record)
        if not boot.record.ok:
            self.placer.release(claim)
            self.stats.boots_rejected += 1
            del self._tenant_pod[spec.tenant_id]
            return
        self.placer.commit(claim)
        self.stats.boots_admitted += 1
        if pod_id != home:
            self.stats.spills += 1
        booted_at = self.sim.now

        for event in spec.scale_events:
            yield self.sim.timeout(max(
                0.0, booted_at + event.at_s - self.sim.now))
            if event.kind == "up":
                request = yield from self.submit_process(
                    "scale_up", spec.tenant_id,
                    size_bytes=event.size_bytes)
            else:
                # Serve-time resolution: the segment to return is
                # whatever is attached *now*, in whatever pod the
                # tenant lives in by then.
                request = yield from self.submit_process(
                    "scale_down", spec.tenant_id, segment_id=None)
            yield request.done
        if spec.migrate_at_s is not None:
            yield self.sim.timeout(max(
                0.0, booted_at + spec.migrate_at_s - self.sim.now))
            request = yield from self.submit_process(
                "migrate", spec.tenant_id)
            yield request.done  # a rejected intra-pod migration is fine
        yield self.sim.timeout(max(
            0.0, booted_at + spec.lifetime_s - self.sim.now))
        request = yield from self.submit_process("depart", spec.tenant_id)
        yield request.done
        self._tenant_pod.pop(spec.tenant_id, None)


def build_federation(pod_count: int, *,
                     racks_per_pod: int = 2,
                     uplinks_per_rack: Optional[int] = None,
                     compute_bricks: int = 2,
                     compute_cores: int = 16,
                     local_memory: int = gib(1),
                     memory_bricks: int = 2,
                     memory_modules: int = 2,
                     module_size: int = gib(4),
                     section_bytes: int = mib(256),
                     spill_policy: str = "least-loaded",
                     placement: str = "pack",
                     scoring=None,
                     anti_affinity=None,
                     rebalancer: Optional[FederationRebalancer] = None,
                     **federation_kwargs) -> FederationController:
    """Assemble N identically-built pods under one federation.

    Each pod is a :class:`~repro.core.builder.PodBuilder` product with
    a per-rack :class:`~repro.orchestration.sharding.
    ShardedSdmController` — the PR-4 configuration — so the federation
    stacks on top of, not instead of, controller sharding.
    *placement* names each pod's intra-pod brick-selection policy
    (see :func:`~repro.orchestration.placement.make_placement_policy`);
    the default keeps the paper's power-aware packing.
    """
    if pod_count < 1:
        raise FederationError("a federation needs at least one pod")
    systems = []
    for index in range(pod_count):
        builder = (PodBuilder(f"pod{index}")
                   .with_racks(racks_per_pod)
                   .with_compute_bricks(compute_bricks,
                                        cores=compute_cores,
                                        local_memory=local_memory)
                   .with_memory_bricks(memory_bricks,
                                       modules=memory_modules,
                                       module_size=module_size)
                   .with_section_size(section_bytes)
                   .with_policy(make_placement_policy(placement))
                   .with_controller_shards(None))
        if uplinks_per_rack is not None:
            builder.with_uplinks(uplinks_per_rack)
        systems.append(builder.build())
    placer_kwargs = {"spill_policy": spill_policy}
    if scoring is not None:
        placer_kwargs["scoring"] = scoring
    if anti_affinity is not None:
        placer_kwargs["anti_affinity"] = anti_affinity
    return FederationController(
        systems, placer=GlobalPlacer(**placer_kwargs),
        rebalancer=rebalancer, **federation_kwargs)
