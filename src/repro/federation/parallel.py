"""Parallel federation: one OS process per pod, windows between barriers.

The serial :class:`~repro.federation.controller.FederationController`
interleaves N pods on one DES clock in one Python process — correct,
but the pods' admission pipelines (the bulk of the event count) are
embarrassingly parallel: pods interact **only** over the inter-pod
link, and that link has latency.  This module exploits exactly that:

* each pod becomes a :class:`PodLP` — its own
  :class:`~repro.sim.engine.Simulator` driving its own
  :class:`~repro.cluster.control_plane.ControlPlane` over its own
  :class:`~repro.core.system.DisaggregatedSystem` — optionally in its
  own **spawn**-started OS process (:class:`~repro.sim.parallel.
  ProcessFleet`); ``workers=0`` keeps every pod inline, the serial
  backend;
* the :class:`ParallelFederationController` is the **coordinator**: it
  runs the tenant lifecycles, the :class:`~repro.federation.placer.
  GlobalPlacer`'s two-phase claims, inter-pod migration, re-admission
  after pod loss, and the rebalancer — and talks to pods exclusively
  through the picklable message vocabulary of
  :mod:`repro.federation.messages`, delivered one **sync window**
  (the inter-pod link latency, the protocol's lookahead) after
  sending;
* :func:`~repro.sim.parallel.run_windows` alternates bounded grants
  between the coordinator and the pod fleet (see
  :mod:`repro.sim.parallel` for the conservative-synchronization
  math); the coordinator additionally caps its own window at
  ``first_command_send + 2·lookahead`` so it never outruns a reply.

Every scheduling decision is a pure function of simulator state and
messages are applied in a canonical order, so the run is **event-order
deterministic**: the same seed produces field-for-field identical
:class:`~repro.federation.controller.FederationStats` — same records,
same timestamps, same fingerprint — whether the pods run inline or
across any number of worker processes.

What the parallel semantics changes versus the shared-clock serial
controller (deliberately, physically): coordinator↔pod signalling pays
the link latency each way, so admissions complete ``2·lookahead``
later and the placer scores pods from their **last window barrier**
status (bridged by the placer's own claim ledger) instead of an
instantaneous registry walk.  The rebalancer plans from the same
barrier statuses and the committed-claim footprints.  With the default
10 µs window these shifts are three orders of magnitude below the
millisecond-scale control-plane latencies being measured.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.control_plane import ControlPlane
from repro.cluster.metrics import RequestRecord
from repro.cluster.trace import TenantSpec, TenantTrace
from repro.core.builder import PodBuilder
from repro.errors import (
    FederationError,
    OrchestrationError,
    ParallelSimError,
    ReproError,
)
from repro.federation.controller import (
    DEFAULT_INTERPOD_LINK_BPS,
    FederationStats,
)
from repro.federation.messages import (
    CompletionReply,
    DrainCmd,
    DrainedReply,
    FailPodCmd,
    FenceCmd,
    PodStatus,
    RestorePodCmd,
    SubmitCmd,
    measure_pod,
)
from repro.federation.migration import MigrationOutcome
from repro.federation.placer import GlobalPlacer
from repro.federation.rebalancer import FederationRebalancer
from repro.orchestration.placement import make_placement_policy
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.control import ControlContext
from repro.sim.engine import Event, ProcessGenerator, Simulator
from repro.sim.parallel import (
    Fleet,
    LpReply,
    WindowRunReport,
    WireMessage,
    make_fleet,
    run_windows,
)
from repro.units import gib, mib, transfer_time

_INF = float("inf")

#: Default inter-pod link latency — the sync window / lookahead of the
#: conservative protocol.  10 µs: a couple of switched packet-network
#: hops between pods, far below the millisecond control-plane latencies
#: the federation measures, far above zero (which would deadlock the
#: protocol).
DEFAULT_SYNC_WINDOW_S = 10e-6


def _check_sync_window(sync_window_s: float) -> float:
    if not (sync_window_s > 0.0):
        raise ParallelSimError(
            f"sync window (inter-pod link latency) must be positive, "
            f"got {sync_window_s}; with zero lookahead neither side "
            f"can ever grant the other a time window")
    if sync_window_s == _INF or sync_window_s != sync_window_s:
        raise ParallelSimError(
            f"sync window must be finite, got {sync_window_s}")
    return sync_window_s


# ---------------------------------------------------------------------------
# the pod logical process (runs inline or inside a worker)
# ---------------------------------------------------------------------------

class PodLP:
    """One pod as a satellite logical process.

    Owns a private simulator, system and control plane; reacts only to
    protocol messages scheduled at their arrival times, and reports
    request completions (plus a barrier :class:`~repro.federation.
    messages.PodStatus` whenever the window processed events) back to
    the coordinator.
    """

    def __init__(self, pod_id: str, system, *, lookahead_s: float,
                 max_batch: int = 4, batch_window_s: float = 0.001,
                 plane_workers: int = 8, offload: bool = True) -> None:
        self.lp_id = pod_id
        self.sim = Simulator()
        self.system = system
        self.plane = ControlPlane(
            system, ctx=ControlContext(sim=self.sim),
            max_batch=max_batch, batch_window_s=batch_window_s,
            workers=plane_workers, offload=offload)
        self.lookahead_s = lookahead_s
        self.alive = True
        self._outbox: list[WireMessage] = []
        self._seq = 0
        #: Commands delivered but not yet replied to.  The pod is
        #: purely reactive — it only ever sends replies — so with no
        #: obligation outstanding it *cannot* send, its influence time
        #: is ``inf``, and its local pipeline events gate nobody.
        self._obligations = 0

    # -- satellite protocol -------------------------------------------------

    def deliver(self, messages: Sequence[WireMessage]) -> None:
        for message in messages:
            delay = message.arrival_s - self.sim.now
            if delay < 0:
                raise ParallelSimError(
                    f"pod {self.lp_id!r} received a message for "
                    f"{message.arrival_s} but its clock is already at "
                    f"{self.sim.now}")
            if isinstance(message.body, (SubmitCmd, DrainCmd)):
                self._obligations += 1  # exactly one reply each
            carrier = self.sim.timeout(delay, message.body)
            carrier.callbacks.append(self._apply)

    def advance(self, horizon_s: float) -> LpReply:
        processed = self.sim.run_window(horizon_s)
        messages, self._outbox = self._outbox, []
        return LpReply(
            messages=messages,
            next_time_s=self.sim.peek(),
            # Only re-measure when something could have changed — the
            # coordinator keeps the previous barrier's copy otherwise.
            status=self.current_status() if processed else None,
            events_processed=processed,
            influence_s=self.sim.peek() if self._obligations else _INF)

    def next_time(self) -> float:
        return self.sim.peek()

    # -- fleet.call() surface ------------------------------------------------

    def current_status(self) -> PodStatus:
        return measure_pod(self.system, self.plane, self.alive)

    def collect_stats(self):
        """The pod's :class:`~repro.cluster.metrics.ControlPlaneStats`
        (plain data), duration stamped with the pod clock's final
        position — a pure function of the barrier schedule, so
        identical on every backend."""
        self.plane.stats.duration_s = self.sim.now
        return self.plane.stats

    # -- command application -------------------------------------------------

    def _send(self, body) -> None:
        if isinstance(body, (CompletionReply, DrainedReply)):
            self._obligations -= 1
        self._seq += 1
        now = self.sim.now
        self._outbox.append(WireMessage(
            lp_id=self.lp_id, sent_s=now,
            arrival_s=now + self.lookahead_s, seq=self._seq, body=body))

    def _apply(self, carrier: Event) -> None:
        body = carrier.value
        if isinstance(body, SubmitCmd):
            self._apply_submit(body)
        elif isinstance(body, DrainCmd):
            self._apply_drain(body)
        elif isinstance(body, FenceCmd):
            try:
                self.system.terminate_vm(body.tenant_id)
            except ReproError:
                pass  # never fully booted here
        elif isinstance(body, FailPodCmd):
            self.alive = False
            self.plane.pause()
        elif isinstance(body, RestorePodCmd):
            self.alive = True
            self.plane.resume()
        else:
            raise ParallelSimError(
                f"pod {self.lp_id!r} received an unknown command "
                f"{type(body).__name__}")

    def _apply_submit(self, command: SubmitCmd) -> None:
        if command.kind == "boot":
            payload = {"request": VmAllocationRequest(
                vm_id=command.tenant_id, vcpus=command.vcpus,
                ram_bytes=command.ram_bytes)}
        elif command.kind == "scale_up":
            payload = {"size_bytes": command.size_bytes}
        elif command.kind == "scale_down":
            payload = {"segment_id": None}
        else:
            payload = {}
        request = self.plane.submit(
            command.kind, command.tenant_id, **payload)

        def completed(_event, request_id=command.request_id,
                      record=request.record) -> None:
            self._send(CompletionReply(
                request_id=request_id,
                tenant_id=record.tenant_id, kind=record.kind,
                ok=record.ok, note=record.note,
                submitted_s=record.submitted_s,
                started_s=record.started_s,
                completed_s=record.completed_s,
                queue_depth_at_submit=record.queue_depth_at_submit))
        request.done.callbacks.append(completed)

    def _apply_drain(self, command: DrainCmd) -> None:
        tail = self.plane.tenant_tail(command.tenant_id)
        if tail is None or tail.processed:
            self._drained(command)
        else:
            tail.callbacks.append(
                lambda _event, c=command: self._drained(c))

    def _drained(self, command: DrainCmd) -> None:
        try:
            vm = self.system.hosting(command.tenant_id).vm
        except OrchestrationError:
            self._send(DrainedReply(
                request_id=command.request_id,
                tenant_id=command.tenant_id, hosted=False))
            return
        self._send(DrainedReply(
            request_id=command.request_id, tenant_id=command.tenant_id,
            hosted=True, ram_bytes=vm.configured_ram_bytes,
            vcpus=vm.vcpus))


def build_pod_lps(*, pod_count: int,
                  racks_per_pod: int = 2,
                  uplinks_per_rack: Optional[int] = None,
                  compute_bricks: int = 2,
                  compute_cores: int = 16,
                  local_memory: int = gib(1),
                  memory_bricks: int = 2,
                  memory_modules: int = 2,
                  module_size: int = gib(4),
                  section_bytes: int = mib(256),
                  placement: str = "pack",
                  lookahead_s: float = DEFAULT_SYNC_WINDOW_S,
                  max_batch: int = 4,
                  batch_window_s: float = 0.001,
                  plane_workers: int = 8,
                  offload: bool = True) -> list[PodLP]:
    """Spawn-safe pod-LP factory: module-level, all-kwargs, builds the
    systems *inside* the calling process (each worker constructs its
    own share — no simulator ever crosses a pipe).  The pod hardware
    mirrors :func:`~repro.federation.controller.build_federation`;
    ``placement`` travels as a *name* and each worker instantiates its
    own policy object (policies carry per-pod hot-brick state)."""
    lps = []
    for index in range(pod_count):
        builder = (PodBuilder(f"pod{index}")
                   .with_racks(racks_per_pod)
                   .with_compute_bricks(compute_bricks,
                                        cores=compute_cores,
                                        local_memory=local_memory)
                   .with_memory_bricks(memory_bricks,
                                       modules=memory_modules,
                                       module_size=module_size)
                   .with_section_size(section_bytes)
                   .with_policy(make_placement_policy(placement))
                   .with_controller_shards(None))
        if uplinks_per_rack is not None:
            builder.with_uplinks(uplinks_per_rack)
        system = builder.build()
        lps.append(PodLP(f"pod{index}", system,
                         lookahead_s=lookahead_s, max_batch=max_batch,
                         batch_window_s=batch_window_s,
                         plane_workers=plane_workers, offload=offload))
    return lps


# ---------------------------------------------------------------------------
# coordinator-side pod handle
# ---------------------------------------------------------------------------

@dataclass
class PodHandle:
    """What the coordinator knows about one pod: its liveness and its
    last barrier status.  The placer and rebalancer consume this
    through the same ``load_snapshot()`` surface as a live
    :class:`~repro.federation.controller.FederatedPod`."""

    pod_id: str
    alive: bool = True
    status: Optional[PodStatus] = None

    def load_snapshot(self) -> PodStatus:
        if self.status is None:
            raise FederationError(
                f"no status for pod {self.pod_id!r} yet")
        return self.status


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------

class ParallelFederationController:
    """Global placement + migration + rebalancing, message-coupled.

    The coordinator is the :class:`~repro.sim.parallel.Hub` of the
    conservative protocol: :meth:`serve_trace` runs the tenant
    lifecycles on the coordinator simulator, exchanging commands and
    replies with the pod fleet at window barriers.
    """

    def __init__(self, fleet: Fleet, pod_ids: Sequence[str], *,
                 placer: Optional[GlobalPlacer] = None,
                 interpod_link_bps: float = DEFAULT_INTERPOD_LINK_BPS,
                 sync_window_s: float = DEFAULT_SYNC_WINDOW_S,
                 rebalancer: Optional[FederationRebalancer] = None
                 ) -> None:
        if not pod_ids:
            raise FederationError("a federation needs at least one pod")
        self.sim = Simulator()
        self.fleet = fleet
        self.lookahead_s = _check_sync_window(sync_window_s)
        self.interpod_link_bps = interpod_link_bps
        self.handles = {pod_id: PodHandle(pod_id) for pod_id in pod_ids}
        for pod_id in pod_ids:
            self.handles[pod_id].status = fleet.call(
                pod_id, "current_status")
        self.placer = placer if placer is not None else GlobalPlacer()
        self.placer.bind(self.handles)
        self.stats = FederationStats()
        self._tenant_pod: dict[str, str] = {}
        self._moving: dict[str, Event] = {}
        self.depart_hooks: list[Callable[[str, str], None]] = []
        self._outboxes: dict[str, list[WireMessage]] = {
            pod_id: [] for pod_id in pod_ids}
        self._out_seq = 0
        self._pending: dict[int, Event] = {}
        self._request_ids = itertools.count()
        self._goal: Optional[Event] = None
        #: The hub-side send cap of the current window (see
        #: :meth:`advance`): once a command is sent at ``t``, this
        #: window must end by ``t + 2·lookahead`` — the earliest its
        #: reply can arrive.
        self._window_cap = _INF
        self.window_report: Optional[WindowRunReport] = None
        self.rebalancer = rebalancer
        if rebalancer is not None:
            rebalancer.federation = self
            self.sim.process(self._rebalance_loop(rebalancer))

    # -- inventory ----------------------------------------------------------

    @property
    def pod_count(self) -> int:
        return len(self.handles)

    def pod_of(self, tenant_id: str) -> str:
        try:
            return self._tenant_pod[tenant_id]
        except KeyError:
            raise FederationError(
                f"no tenant {tenant_id!r} in this federation") from None

    def tenants_on(self, pod_id: str) -> list[str]:
        if pod_id not in self.handles:
            raise FederationError(f"unknown pod {pod_id!r}")
        return sorted(tenant for tenant, pod in self._tenant_pod.items()
                      if pod == pod_id)

    def migration_gate(self, tenant_id: str) -> Optional[Event]:
        return self._moving.get(tenant_id)

    # -- Hub protocol -------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._goal is not None and self._goal.processed

    def next_time(self) -> float:
        return self.sim.peek()

    def take_outboxes(self) -> dict[str, list[WireMessage]]:
        # The send cap protects replies to commands not yet handed to
        # the runner; once drained, the runner folds their arrival
        # times into its influence bound, so the cap resets *here* —
        # not in :meth:`advance`, which may legitimately run more than
        # once per round (the overlapped pre-grant plus the residual).
        self._window_cap = _INF
        drained = {pod_id: messages
                   for pod_id, messages in self._outboxes.items()
                   if messages}
        for pod_id in drained:
            self._outboxes[pod_id] = []
        return drained

    def deliver(self, messages: Sequence[WireMessage]) -> None:
        for message in messages:
            delay = message.arrival_s - self.sim.now
            if delay < 0:
                raise ParallelSimError(
                    f"coordinator received a message for "
                    f"{message.arrival_s} but its clock is already at "
                    f"{self.sim.now}")
            carrier = self.sim.timeout(delay, message.body)
            carrier.callbacks.append(self._receive)

    def note_status(self, lp_id: str, status: PodStatus) -> None:
        self.handles[lp_id].status = status

    def advance(self, horizon_s: float) -> None:
        """Run coordinator events strictly below *horizon_s*, stopping
        early at the goal or at the send cap (first command emitted
        this round + ``2·lookahead`` — beyond that point a reply
        could land in this window's past).

        Called up to twice per round: once with the overlapped
        pre-grant (while the satellites execute their window) and once
        with the residual grant after the barrier.  The residual bound
        may trail the clock the pre-grant already settled at — then
        there is simply nothing left to do this round.
        """
        sim = self.sim
        goal = self._goal
        while not goal.processed:
            cap = self._window_cap
            bound = horizon_s if horizon_s <= cap else cap
            if sim.peek() >= bound:
                if bound != _INF and bound > sim.now:
                    sim.run_window(bound)  # settle the clock
                return
            sim.step()

    # -- messaging ----------------------------------------------------------

    def _post(self, pod_id: str, body) -> None:
        now = self.sim.now
        if self._window_cap == _INF:
            # Stepwise, matching the reply chain's two rounded
            # additions; ``now + 2 * L`` could exceed the actual
            # ``fl(fl(now + L) + L)`` reply arrival by one ulp.
            self._window_cap = (now + self.lookahead_s) + self.lookahead_s
        self._out_seq += 1
        self._outboxes[pod_id].append(WireMessage(
            lp_id=pod_id, sent_s=now,
            arrival_s=now + self.lookahead_s, seq=self._out_seq,
            body=body))

    def _receive(self, carrier: Event) -> None:
        body = carrier.value
        waiter = self._pending.pop(body.request_id, None)
        if waiter is None:
            raise ParallelSimError(
                f"coordinator received a reply to unknown request "
                f"{body.request_id}")
        waiter.succeed(body)

    def _submit_remote(self, pod_id: str, kind: str, tenant_id: str, *,
                       ram_bytes: int = 0, vcpus: int = 0,
                       size_bytes: int = 0) -> Event:
        """Send a :class:`~repro.federation.messages.SubmitCmd`; the
        returned event fires with the :class:`~repro.federation.
        messages.CompletionReply` when it comes back."""
        request_id = next(self._request_ids)
        waiter = self.sim.event()
        self._pending[request_id] = waiter
        self._post(pod_id, SubmitCmd(
            request_id=request_id, kind=kind, tenant_id=tenant_id,
            ram_bytes=ram_bytes, vcpus=vcpus, size_bytes=size_bytes))
        return waiter

    def _drain_remote(self, pod_id: str, tenant_id: str) -> Event:
        request_id = next(self._request_ids)
        waiter = self.sim.event()
        self._pending[request_id] = waiter
        self._post(pod_id, DrainCmd(request_id=request_id,
                                    tenant_id=tenant_id))
        return waiter

    @staticmethod
    def _record_of(reply: CompletionReply) -> RequestRecord:
        return RequestRecord(
            tenant_id=reply.tenant_id, kind=reply.kind,
            submitted_s=reply.submitted_s,
            queue_depth_at_submit=reply.queue_depth_at_submit,
            started_s=reply.started_s, completed_s=reply.completed_s,
            ok=reply.ok, note=reply.note)

    # -- request routing ----------------------------------------------------

    def submit_routed_process(self, kind: str, tenant_id: str,
                              **payload) -> ProcessGenerator:
        """DES process: wait out any in-flight move of the tenant, then
        submit to the pod it landed in and wait for the reply.  The
        parallel counterpart of the serial controller's
        ``submit_process(...)`` + ``yield request.done``; returns the
        :class:`~repro.federation.messages.CompletionReply`."""
        gate = self._moving.get(tenant_id)
        if gate is not None and not gate.triggered:
            yield gate
        pod_id = self.pod_of(tenant_id)
        reply = yield self._submit_remote(pod_id, kind, tenant_id,
                                          **payload)
        if kind == "depart" and reply.ok:
            self._deregister(tenant_id, pod_id)
        return reply

    def _deregister(self, tenant_id: str, pod_id: str) -> None:
        """A served depart ended the tenant's residence on *pod_id* —
        unless a move re-homed it meanwhile (the newer entry wins),
        mirroring the serial controller's depart callback."""
        if self._tenant_pod.get(tenant_id) == pod_id:
            del self._tenant_pod[tenant_id]
            ledger = self.placer.ledger_claim(tenant_id)
            if ledger is not None and ledger.pod_id == pod_id:
                self.placer.forget(tenant_id)
            for hook in self.depart_hooks:
                hook(tenant_id, pod_id)

    # -- migration ----------------------------------------------------------

    def migrate_tenant_process(self, tenant_id: str,
                               target_pod_id: str) -> ProcessGenerator:
        """DES process: move a tenant to another pod — the serial
        two-phase drain/reserve/copy/commit (:mod:`repro.federation.
        migration`), each phase a message exchange."""
        source_id = self.pod_of(tenant_id)
        if target_pod_id not in self.handles:
            raise FederationError(f"unknown pod {target_pod_id!r}")
        if target_pod_id == source_id:
            raise FederationError(
                f"{tenant_id} already lives in {target_pod_id}")
        if tenant_id in self._moving:
            raise FederationError(f"{tenant_id} is already migrating")
        outcome = MigrationOutcome(tenant_id=tenant_id,
                                   source_pod=source_id,
                                   target_pod=target_pod_id)
        started = self.sim.now
        gate = self.sim.event()
        self._moving[tenant_id] = gate
        try:
            # Phase 0 — drain: the source settles in-flight work and
            # reports the exact footprint to copy.
            drained: DrainedReply = yield self._drain_remote(
                source_id, tenant_id)
            if not drained.hosted:
                if self._tenant_pod.get(tenant_id) == source_id:
                    del self._tenant_pod[tenant_id]
                outcome.note = "tenant departed before the move started"
                return outcome
            total_bytes = drained.ram_bytes

            # Phase 1 — reserve in the target pod: ledger claim plus a
            # real boot through its admission pipeline.
            claim = self.placer.reserve(target_pod_id, total_bytes,
                                        drained.vcpus,
                                        tenant_id=tenant_id)
            boot: CompletionReply = yield self._submit_remote(
                target_pod_id, "boot", tenant_id,
                ram_bytes=total_bytes, vcpus=drained.vcpus)
            if not boot.ok:
                self.placer.release(claim)  # rollback: tenant stays home
                self.stats.migration_rollbacks += 1
                outcome.note = (f"target reservation rejected: "
                                f"{boot.note}")
                return outcome
            self.placer.commit(claim)

            # Copy — the footprint crosses the inter-pod link.
            yield self.sim.timeout(
                transfer_time(total_bytes, self.interpod_link_bps))

            # Phase 2 — commit: release the home-pod claim.
            depart: CompletionReply = yield self._submit_remote(
                source_id, "depart", tenant_id)
            if not depart.ok:
                # Keep exactly one live copy: tear the target side down.
                yield self._submit_remote(target_pod_id, "depart",
                                          tenant_id)
                self.stats.migration_rollbacks += 1
                outcome.note = f"source release failed: {depart.note}"
                return outcome
            self._tenant_pod[tenant_id] = target_pod_id
            self.stats.migrations += 1
            self.stats.bytes_migrated += total_bytes
            outcome.bytes_copied = total_bytes
            outcome.committed = True
            return outcome
        finally:
            outcome.latency_s = self.sim.now - started
            del self._moving[tenant_id]
            gate.succeed()

    # -- pod failure and re-admission ---------------------------------------

    def schedule_pod_fault(self, pod_id: str, at_s: float,
                           duration_s: float, *,
                           readmit: bool = True) -> None:
        """Inject a whole-pod outage at *at_s* lasting *duration_s*.

        The coordinator marks the pod dead (the placer stops routing to
        it immediately) and sends :class:`~repro.federation.messages.
        FailPodCmd` — the pod pauses one link latency later, exactly
        like a control-channel loss would propagate.  With *readmit*,
        the committed-claim ledger is replayed to boot the lost
        tenants on surviving pods; repair sends the restore command.
        """
        if pod_id not in self.handles:
            raise FederationError(f"unknown pod {pod_id!r}")
        if not (at_s >= 0) or duration_s <= 0:
            raise FederationError(
                f"bad fault schedule (at={at_s}, "
                f"duration={duration_s})")
        self.sim.process(self._pod_fault(pod_id, at_s, duration_s,
                                         readmit))

    def _pod_fault(self, pod_id: str, at_s: float, duration_s: float,
                   readmit: bool) -> ProcessGenerator:
        yield self.sim.timeout(at_s)
        handle = self.handles[pod_id]
        if not handle.alive:
            return
        handle.alive = False
        self._post(pod_id, FailPodCmd())
        if readmit:
            yield from self.readmit_pod_tenants_process(pod_id)
        yield self.sim.timeout(duration_s)
        handle.alive = True
        self._post(pod_id, RestorePodCmd())

    def readmit_pod_tenants_process(self,
                                    pod_id: str) -> ProcessGenerator:
        """DES process: re-admit a lost pod's tenants elsewhere, in
        tenant-id order from the committed-claim ledger.  Returns
        ``(readmitted, failed)`` tenant-id lists."""
        readmitted: list[str] = []
        failed: list[str] = []
        for claim in self.placer.ledger_for_pod(pod_id):
            new_pod = yield from self.readmit_tenant_process(
                claim.tenant_id)
            if new_pod is None:
                failed.append(claim.tenant_id)
            else:
                readmitted.append(claim.tenant_id)
        return readmitted, failed

    def readmit_tenant_process(self, tenant_id: str) -> ProcessGenerator:
        """DES process: boot a lost tenant's replacement on the best
        surviving pod (mirrors the serial controller: fence the dead
        replica, reserve, boot, commit — all via messages)."""
        claim = self.placer.ledger_claim(tenant_id)
        if claim is None or tenant_id in self._moving:
            return None
        source = self.handles.get(claim.pod_id)
        target = self.placer.place_for_readmission(
            tenant_id, claim.ram_bytes, claim.vcpus)
        if target is None:
            self.stats.readmission_failures += 1
            return None
        gate = self.sim.event()
        self._moving[tenant_id] = gate
        try:
            if source is not None and not source.alive:
                self._post(claim.pod_id, FenceCmd(tenant_id=tenant_id))
            new_claim = self.placer.reserve(
                target, claim.ram_bytes, claim.vcpus,
                tenant_id=tenant_id)
            self._tenant_pod[tenant_id] = target
            boot: CompletionReply = yield self._submit_remote(
                target, "boot", tenant_id,
                ram_bytes=claim.ram_bytes, vcpus=claim.vcpus)
            if not boot.ok:
                self.placer.release(new_claim)
                self._tenant_pod[tenant_id] = claim.pod_id
                self.stats.readmission_failures += 1
                return None
            self.placer.commit(new_claim)  # supersedes the dead entry
            self.stats.readmissions += 1
            return target
        finally:
            del self._moving[tenant_id]
            gate.succeed()

    # -- rebalancing --------------------------------------------------------

    def _rebalance_loop(self,
                        config: FederationRebalancer) -> ProcessGenerator:
        """The rebalancer's periodic pass, planned from barrier
        statuses and committed-claim footprints (the coordinator never
        sees live registries).  Reuses the serial rebalancer's
        configuration and report object."""
        while True:
            yield self.sim.timeout(config.interval_s)
            if self._moving or self._pending:
                continue  # foreground work in flight — not an idle window
            if not all(handle.status is not None and handle.status.idle
                       for handle in self.handles.values()
                       if handle.alive):
                continue
            yield from self._rebalance_pass(config)

    def _rebalance_pass(self,
                        config: FederationRebalancer) -> ProcessGenerator:
        config.report.passes += 1
        for _ in range(config.max_migrations_per_pass):
            plan = self._plan_move(config)
            if plan is None:
                break
            tenant_id, target_pod_id = plan
            try:
                outcome = yield from self.migrate_tenant_process(
                    tenant_id, target_pod_id)
            except ReproError:
                config.report.rollbacks += 1
                break  # plan went stale; re-plan next pass
            if outcome.committed:
                config.report.migrations += 1
                config.report.bytes_drained += outcome.bytes_copied
            else:
                config.report.rollbacks += 1
                break
        return config.report

    def _plan_move(self, config: FederationRebalancer
                   ) -> Optional[tuple[str, str]]:
        """Hot/cold pods from barrier-status utilization; candidate
        footprints from the committed-claim ledger (boot RAM — the
        drain phase measures the exact footprint before any copy)."""
        loads = {pod_id: handle.status.utilization
                 for pod_id, handle in self.handles.items()
                 if handle.alive and handle.status is not None}
        if len(loads) < 2:
            return None
        hot = max(sorted(loads), key=lambda p: loads[p])
        cold = min(sorted(loads), key=lambda p: loads[p])
        if loads[hot] - loads[cold] < config.imbalance_threshold:
            return None
        cold_snapshot = self.placer.snapshot(cold)
        candidates = []
        for tenant_id in self.tenants_on(hot):
            if tenant_id in self._moving:
                continue
            claim = self.placer.ledger_claim(tenant_id)
            if claim is None:
                continue
            candidates.append((claim.ram_bytes, tenant_id, claim.vcpus))
        candidates.sort(key=lambda entry: (entry[0], entry[1]))
        for footprint, tenant_id, vcpus in candidates:
            if self.placer.fits(cold_snapshot, footprint, vcpus):
                return tenant_id, cold
        return None

    # -- tenant lifecycles --------------------------------------------------

    def serve_trace(self, trace: TenantTrace,
                    home_of: Optional[Callable[[TenantSpec], str]] = None
                    ) -> FederationStats:
        """Drive every tenant lifecycle in *trace* to completion under
        conservative window synchronization, then collect the
        federation statistics (pod-level stats fetched from the
        workers)."""
        lifecycles = [
            self.sim.process(self._tenant(spec, home_of))
            for spec in trace.tenants]
        self._goal = self.sim.all_of(lifecycles)
        self.window_report = run_windows(self, self.fleet,
                                         self.lookahead_s)
        return self._finalize()

    def _finalize(self) -> FederationStats:
        self.stats.duration_s = self.sim.now
        for pod_id in sorted(self.handles):
            self.stats.pod_stats[pod_id] = self.fleet.call(
                pod_id, "collect_stats")
        return self.stats

    def _tenant(self, spec: TenantSpec,
                home_of: Optional[Callable[[TenantSpec], str]]
                ) -> ProcessGenerator:
        yield self.sim.timeout(spec.arrival_s)
        home = (home_of(spec) if home_of is not None
                else self.placer.home_pod(spec.tenant_id))
        pod_id = self.placer.place(spec.tenant_id, spec.ram_bytes,
                                   spec.vcpus, home=home)
        claim = self.placer.reserve(pod_id, spec.ram_bytes, spec.vcpus,
                                    tenant_id=spec.tenant_id)
        self._tenant_pod[spec.tenant_id] = pod_id
        boot: CompletionReply = yield self._submit_remote(
            pod_id, "boot", spec.tenant_id,
            ram_bytes=spec.ram_bytes, vcpus=spec.vcpus)
        self.stats.admission_records.append(self._record_of(boot))
        if not boot.ok:
            self.placer.release(claim)
            self.stats.boots_rejected += 1
            del self._tenant_pod[spec.tenant_id]
            return
        self.placer.commit(claim)
        self.stats.boots_admitted += 1
        if pod_id != home:
            self.stats.spills += 1
        booted_at = self.sim.now

        for event in spec.scale_events:
            yield self.sim.timeout(max(
                0.0, booted_at + event.at_s - self.sim.now))
            if event.kind == "up":
                yield from self.submit_routed_process(
                    "scale_up", spec.tenant_id,
                    size_bytes=event.size_bytes)
            else:
                yield from self.submit_routed_process(
                    "scale_down", spec.tenant_id)
        if spec.migrate_at_s is not None:
            yield self.sim.timeout(max(
                0.0, booted_at + spec.migrate_at_s - self.sim.now))
            # A rejected intra-pod migration is fine, as in serial.
            yield from self.submit_routed_process(
                "migrate", spec.tenant_id)
        yield self.sim.timeout(max(
            0.0, booted_at + spec.lifetime_s - self.sim.now))
        yield from self.submit_routed_process("depart", spec.tenant_id)
        self._tenant_pod.pop(spec.tenant_id, None)

    # -- lifecycle of the controller itself ---------------------------------

    def close(self) -> None:
        """Shut the worker fleet down (idempotent)."""
        self.fleet.close()

    def __enter__(self) -> "ParallelFederationController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- determinism fingerprint --------------------------------------------

    def fingerprint(self) -> str:
        """Digest of everything the run measured — see
        :func:`federation_fingerprint`."""
        return federation_fingerprint(self.stats)


def federation_fingerprint(stats: FederationStats) -> str:
    """A stable digest of a federation run's complete observable state.

    Folds in every counter, every admission record and every pod-level
    request record — timestamps via ``repr`` so float identity is
    bit-exact.  Two runs fingerprint equal iff their results are
    field-for-field identical; the parallel backend must produce the
    same digest at every worker count.
    """
    digest = hashlib.sha256()

    def fold(*parts) -> None:
        for part in parts:
            digest.update(repr(part).encode("utf-8"))
            digest.update(b"\x1f")

    fold(stats.spills, stats.boots_admitted, stats.boots_rejected,
         stats.migrations, stats.migration_rollbacks,
         stats.bytes_migrated, stats.readmissions,
         stats.readmission_failures, stats.duration_s)
    for record in stats.admission_records:
        fold(record.tenant_id, record.kind, record.submitted_s,
             record.started_s, record.completed_s, record.ok,
             record.note, record.queue_depth_at_submit)
    for pod_id in sorted(stats.pod_stats):
        pod = stats.pod_stats[pod_id]
        fold(pod_id, pod.duration_s, pod.busy_s, pod.worker_count)
        for record in pod.records:
            fold(record.tenant_id, record.kind, record.submitted_s,
                 record.started_s, record.completed_s, record.ok,
                 record.note, record.queue_depth_at_submit)
    return digest.hexdigest()


def build_parallel_federation(pod_count: int, *,
                              workers: int = 0,
                              sync_window_s: float = DEFAULT_SYNC_WINDOW_S,
                              racks_per_pod: int = 2,
                              uplinks_per_rack: Optional[int] = None,
                              compute_bricks: int = 2,
                              compute_cores: int = 16,
                              local_memory: int = gib(1),
                              memory_bricks: int = 2,
                              memory_modules: int = 2,
                              module_size: int = gib(4),
                              section_bytes: int = mib(256),
                              placement: str = "pack",
                              spill_policy: str = "least-loaded",
                              scoring=None,
                              anti_affinity=None,
                              rebalancer: Optional[
                                  FederationRebalancer] = None,
                              interpod_link_bps: float =
                              DEFAULT_INTERPOD_LINK_BPS,
                              max_batch: int = 4,
                              batch_window_s: float = 0.001,
                              plane_workers: int = 8,
                              offload: bool = True,
                              start_method: str = "spawn"
                              ) -> ParallelFederationController:
    """Assemble N identically-built pods under the parallel federation.

    ``workers=0`` runs every pod inline in this process (the serial
    backend — same barrier schedule, zero IPC); ``workers>=1`` spreads
    the pods round-robin over that many spawn-started OS processes.
    ``plane_workers`` is each pod's *dispatcher* worker count (the
    control-plane concurrency knob, unchanged from the serial
    federation) — not to be confused with ``workers``.
    """
    if pod_count < 1:
        raise FederationError("a federation needs at least one pod")
    _check_sync_window(sync_window_s)
    fleet = make_fleet(workers, start_method=start_method)
    try:
        pod_ids = fleet.build(
            build_pod_lps, pod_count=pod_count,
            racks_per_pod=racks_per_pod,
            uplinks_per_rack=uplinks_per_rack,
            compute_bricks=compute_bricks,
            compute_cores=compute_cores, local_memory=local_memory,
            memory_bricks=memory_bricks,
            memory_modules=memory_modules, module_size=module_size,
            section_bytes=section_bytes, placement=placement,
            lookahead_s=sync_window_s,
            max_batch=max_batch, batch_window_s=batch_window_s,
            plane_workers=plane_workers, offload=offload)
        placer_kwargs = {"spill_policy": spill_policy}
        if scoring is not None:
            placer_kwargs["scoring"] = scoring
        if anti_affinity is not None:
            placer_kwargs["anti_affinity"] = anti_affinity
        return ParallelFederationController(
            fleet, pod_ids, placer=GlobalPlacer(**placer_kwargs),
            interpod_link_bps=interpod_link_bps,
            sync_window_s=sync_window_s, rebalancer=rebalancer)
    except BaseException:
        fleet.close()
        raise
