"""Global placement across federated pods.

The federation's placement brain: given the federation's live pods, the
:class:`GlobalPlacer` decides which pod admits each tenant.  Placement
is **locality-first** — a tenant's *home pod* (a stable hash of its id,
or an explicit affinity) is always preferred — and only when the home
pod cannot fit the request does the configured **spill policy** route
the tenant elsewhere:

* ``never`` — pinned-to-home-pod: the tenant is always sent home and
  the home pod's own admission pipeline rejects it when full (the
  federation baseline);
* ``first-fit`` — the first other pod (in canonical pod-id order) whose
  free capacity fits the request;
* ``least-loaded`` — the best-scoring other pod that fits, under a
  pluggable scoring function (:func:`free_capacity_score`,
  :func:`fragmentation_score`, :func:`queue_depth_score`, or any
  ``PodSnapshot -> float`` callable; higher wins).

Admission is **two-phase** across the federation: :meth:`~GlobalPlacer.
reserve` records a tentative :class:`PodClaim` against the chosen pod's
ledger the moment the placement decision is made, so concurrent
placements see capacity that is spoken for before the pod's own
allocators do; the claim is :meth:`~GlobalPlacer.commit`-ed once the
pod-level reservation lands (the capacity is then visible in the pod's
registry) or :meth:`~GlobalPlacer.release`-d when the pod rejects —
mirroring the shard-level hold/commit/abort of
:class:`~repro.orchestration.sharding.ShardedSdmController`.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from repro.errors import FederationError

#: Spill policies of the global placer (the CLI ``--spill-policy`` axis).
SPILL_POLICIES = ("never", "first-fit", "least-loaded")


@dataclass(frozen=True)
class PodSnapshot:
    """One pod's load, as the global placer sees it."""

    pod_id: str
    #: Free bytes across the pod's healthy memory bricks (registry view).
    free_memory_bytes: int
    #: Free cores across the pod's compute bricks.
    free_cores: int
    #: Admission backlog plus waiters on every SDM-C reservation domain.
    queue_depth: int
    #: Mean free-space fragmentation across the pod's memory bricks.
    fragmentation: float
    #: Bytes tentatively claimed by in-flight federation placements.
    claimed_bytes: int
    #: Cores tentatively claimed by in-flight federation placements.
    claimed_cores: int

    @property
    def available_bytes(self) -> int:
        """Free bytes net of outstanding claims."""
        return self.free_memory_bytes - self.claimed_bytes

    @property
    def available_cores(self) -> int:
        """Free cores net of outstanding claims."""
        return self.free_cores - self.claimed_cores


# -- scoring functions (higher is better) -----------------------------------

def free_capacity_score(snapshot: PodSnapshot) -> float:
    """Prefer the pod with the most unclaimed free memory."""
    return float(snapshot.available_bytes)


def fragmentation_score(snapshot: PodSnapshot) -> float:
    """Prefer the least-fragmented pool (large requests keep fitting)."""
    return -snapshot.fragmentation


def queue_depth_score(snapshot: PodSnapshot) -> float:
    """Prefer the pod whose control plane has the least backlog."""
    return -float(snapshot.queue_depth)


@dataclass(frozen=True)
class PodClaim:
    """A tentative (phase-1) federation reservation against one pod."""

    claim_id: int
    pod_id: str
    ram_bytes: int
    vcpus: int
    #: The tenant the claim admits.  Claims carrying a tenant id are
    #: remembered in the placer's committed-claim ledger after
    #: :meth:`GlobalPlacer.commit` — the durable record a lost pod's
    #: tenants are re-admitted from.
    tenant_id: str = ""


class GlobalPlacer:
    """Locality-first tenant-to-pod placement with capacity spill."""

    def __init__(self, spill_policy: str = "least-loaded",
                 scoring: Callable[[PodSnapshot],
                                   float] = free_capacity_score,
                 anti_affinity: Optional[Callable[[str], str]] = None
                 ) -> None:
        if spill_policy not in SPILL_POLICIES:
            raise FederationError(
                f"unknown spill policy {spill_policy!r}; known: "
                f"{', '.join(SPILL_POLICIES)}")
        self.spill_policy = spill_policy
        self.scoring = scoring
        #: tenant id -> replica/tenant-group key ("" = ungrouped).
        #: When set, placement avoids pods already hosting another
        #: member of the tenant's group (soft constraint: a group fits
        #: on one pod only when no conflict-free pod can take it), so
        #: replicas land in distinct pods and one pod loss cannot take
        #: a whole group down.
        self.anti_affinity = anti_affinity
        self._pods: Mapping[str, object] = {}
        self._claims: dict[int, PodClaim] = {}
        self._claim_ids = itertools.count()
        self._claimed_bytes: dict[str, int] = {}
        self._claimed_cores: dict[str, int] = {}
        #: Committed-claim ledger: tenant id -> the claim its admission
        #: committed.  This is the federation's durable record of who
        #: lives where — re-admission after a pod loss replays it.
        self._ledger: dict[str, PodClaim] = {}

    # -- topology -----------------------------------------------------------

    def bind(self, pods: Mapping[str, object]) -> None:
        """Attach the placer to the federation's live pods.

        *pods* maps pod id to an object exposing ``system`` (a
        :class:`~repro.core.system.DisaggregatedSystem`) and ``plane``
        (its :class:`~repro.cluster.control_plane.ControlPlane`) — the
        federation's :class:`~repro.federation.controller.FederatedPod`
        records.
        """
        if not pods:
            raise FederationError("placer needs at least one pod")
        self._pods = pods

    @property
    def pod_ids(self) -> list[str]:
        """Every bound pod id, sorted (the canonical order).

        Deliberately includes failed pods: :meth:`home_pod` hashes over
        this list, and the home mapping of every *other* tenant must
        not shift when one pod dies.
        """
        return sorted(self._pods)

    @property
    def live_pod_ids(self) -> list[str]:
        """Bound pods currently alive (pods without an ``alive`` flag —
        plain test doubles — count as alive), sorted."""
        return [pod_id for pod_id in self.pod_ids
                if getattr(self._pods[pod_id], "alive", True)]

    def pod_alive(self, pod_id: str) -> bool:
        """True when *pod_id* is bound and currently alive."""
        pod = self._pods.get(pod_id)
        return pod is not None and getattr(pod, "alive", True)

    def pod_accepting(self, pod_id: str) -> bool:
        """True when *pod_id* may receive *new* tenants: alive and not
        under a rolling-maintenance drain.  A draining pod keeps
        serving its current tenants; it only leaves the admission
        pool."""
        pod = self._pods.get(pod_id)
        return (pod is not None and getattr(pod, "alive", True)
                and not getattr(pod, "draining", False))

    def home_pod(self, tenant_id: str) -> str:
        """The tenant's home pod: a stable hash over the pod set.

        CRC32-based so the mapping is deterministic across processes
        (unlike builtin ``hash``) and uniform enough to spread tenants.
        """
        pod_ids = self.pod_ids
        if not pod_ids:
            raise FederationError("placer is not bound to any pod")
        index = zlib.crc32(tenant_id.encode("utf-8")) % len(pod_ids)
        return pod_ids[index]

    # -- load snapshots ------------------------------------------------------

    def snapshot(self, pod_id: str) -> PodSnapshot:
        """Current load of *pod_id*.

        Pods exposing ``load_snapshot()`` (the federation's
        :class:`~repro.federation.controller.FederatedPod`, or the
        parallel federation's coordinator-side handles serving their
        last barrier status) are measured through it; plain test
        doubles fall back to direct registry/control-plane reads.
        """
        pod = self._pods.get(pod_id)
        if pod is None:
            raise FederationError(f"unknown pod {pod_id!r}")
        loader = getattr(pod, "load_snapshot", None)
        if loader is not None:
            status = loader()
            return PodSnapshot(
                pod_id=pod_id,
                free_memory_bytes=status.free_memory_bytes,
                free_cores=status.free_cores,
                queue_depth=status.queue_depth,
                fragmentation=status.fragmentation,
                claimed_bytes=self._claimed_bytes.get(pod_id, 0),
                claimed_cores=self._claimed_cores.get(pod_id, 0),
            )
        registry = pod.system.sdm.registry
        memory = registry.memory_availability()
        entries = [e for e in registry.memory_entries if not e.failed]
        fragmentation = (
            sum(e.allocator.fragmentation for e in entries) / len(entries)
            if entries else 0.0)
        plane = pod.plane
        return PodSnapshot(
            pod_id=pod_id,
            free_memory_bytes=sum(a.free_bytes for a in memory),
            free_cores=sum(c.free_cores
                           for c in registry.compute_availability()),
            queue_depth=(plane.admission.size
                         + plane.ctx.total_reservation_queue_depth),
            fragmentation=fragmentation,
            claimed_bytes=self._claimed_bytes.get(pod_id, 0),
            claimed_cores=self._claimed_cores.get(pod_id, 0),
        )

    def snapshots(self) -> list[PodSnapshot]:
        return [self.snapshot(pod_id) for pod_id in self.pod_ids]

    @staticmethod
    def fits(snapshot: PodSnapshot, ram_bytes: int, vcpus: int) -> bool:
        """Can the pod take the request, net of outstanding claims?"""
        return (snapshot.available_bytes >= ram_bytes
                and snapshot.available_cores >= vcpus)

    # -- placement -----------------------------------------------------------

    def place(self, tenant_id: str, ram_bytes: int, vcpus: int,
              home: Optional[str] = None) -> str:
        """Choose the pod that admits *tenant_id*.

        Locality first: the home pod wins whenever it fits (and always,
        under the ``never`` policy).  Otherwise the spill policy picks
        among the other pods that fit; when *no* pod fits, the home pod
        is returned anyway — its admission pipeline records the
        rejection, keeping accounting in one place.
        """
        home = home if home is not None else self.home_pod(tenant_id)
        if home not in self._pods:
            raise FederationError(f"unknown home pod {home!r}")
        if self.spill_policy == "never":
            return home  # pinned, even to a dead pod: the baseline
        conflicted = self._conflicted_pods(tenant_id)
        if (self.pod_accepting(home) and home not in conflicted
                and self.fits(self.snapshot(home), ram_bytes, vcpus)):
            return home
        fitting = [s for s in self.snapshots()
                   if s.pod_id != home and self.pod_accepting(s.pod_id)
                   and self.fits(s, ram_bytes, vcpus)]
        # Anti-affinity is soft: conflict-free pods win, but when every
        # fitting pod already hosts a group-mate, co-location beats
        # rejection.
        preferred = [s for s in fitting
                     if s.pod_id not in conflicted] or fitting
        if not preferred:
            return home
        if self.spill_policy == "first-fit":
            return preferred[0].pod_id  # snapshots() is in canonical order
        preferred.sort(key=lambda s: (-self.scoring(s), s.pod_id))
        return preferred[0].pod_id

    def place_for_readmission(self, tenant_id: str, ram_bytes: int,
                              vcpus: int) -> Optional[str]:
        """Emergency placement for a tenant whose pod died.

        Ignores the spill policy and home-pod preference (the home is
        gone); picks the best-scoring *live* pod that fits, preferring
        anti-affinity-clean pods.  Returns ``None`` when no surviving
        pod can take the tenant — the caller counts a re-admission
        failure and leaves the tenant parked until repair.
        """
        conflicted = self._conflicted_pods(tenant_id)
        fitting = [s for s in self.snapshots()
                   if self.pod_accepting(s.pod_id)
                   and self.fits(s, ram_bytes, vcpus)]
        preferred = [s for s in fitting
                     if s.pod_id not in conflicted] or fitting
        if not preferred:
            return None
        preferred.sort(key=lambda s: (-self.scoring(s), s.pod_id))
        return preferred[0].pod_id

    def _conflicted_pods(self, tenant_id: str) -> frozenset:
        """Pods whose committed ledger already hosts a member of
        *tenant_id*'s anti-affinity group (empty without grouping)."""
        if self.anti_affinity is None:
            return frozenset()
        group = self.anti_affinity(tenant_id)
        if not group:
            return frozenset()
        return frozenset(
            claim.pod_id for other, claim in self._ledger.items()
            if other != tenant_id and self.anti_affinity(other) == group)

    # -- two-phase claims ----------------------------------------------------

    @property
    def pending_claims(self) -> list[PodClaim]:
        """Claims reserved but not yet committed or released (normally
        empty outside an in-flight admission/migration)."""
        return list(self._claims.values())

    def reserve(self, pod_id: str, ram_bytes: int,
                vcpus: int, tenant_id: str = "") -> PodClaim:
        """Phase 1: record a tentative claim against *pod_id*'s ledger."""
        if pod_id not in self._pods:
            raise FederationError(f"unknown pod {pod_id!r}")
        claim = PodClaim(claim_id=next(self._claim_ids), pod_id=pod_id,
                         ram_bytes=ram_bytes, vcpus=vcpus,
                         tenant_id=tenant_id)
        self._claims[claim.claim_id] = claim
        self._claimed_bytes[pod_id] = (
            self._claimed_bytes.get(pod_id, 0) + ram_bytes)
        self._claimed_cores[pod_id] = (
            self._claimed_cores.get(pod_id, 0) + vcpus)
        return claim

    def commit(self, claim: PodClaim) -> None:
        """Phase 2 success: the pod-level reservation landed, so the
        capacity now shows in the pod's registry and the in-flight
        entry is redundant.  A claim carrying a tenant id is remembered
        in the committed ledger (re-admission source after pod loss)
        until :meth:`forget` or a later commit supersedes it."""
        self._drop(claim)
        if claim.tenant_id:
            self._ledger[claim.tenant_id] = claim

    def release(self, claim: PodClaim) -> None:
        """Phase 2 rejection: return the claimed capacity to the ledger."""
        self._drop(claim)

    def _drop(self, claim: PodClaim) -> None:
        if claim.claim_id not in self._claims:
            raise FederationError(
                f"claim {claim.claim_id} already committed or released")
        del self._claims[claim.claim_id]
        self._claimed_bytes[claim.pod_id] -= claim.ram_bytes
        self._claimed_cores[claim.pod_id] -= claim.vcpus

    # -- committed ledger ----------------------------------------------------

    def ledger_claim(self, tenant_id: str) -> Optional[PodClaim]:
        """The committed claim backing *tenant_id*, if any."""
        return self._ledger.get(tenant_id)

    def ledger_for_pod(self, pod_id: str) -> list[PodClaim]:
        """Committed claims homed on *pod_id*, in tenant-id order —
        the replay set a lost pod's re-admission works through."""
        return [self._ledger[tenant_id]
                for tenant_id in sorted(self._ledger)
                if self._ledger[tenant_id].pod_id == pod_id]

    def forget(self, tenant_id: str) -> Optional[PodClaim]:
        """Drop *tenant_id*'s committed ledger entry (tenant departed);
        returns the entry, or ``None`` when there was none."""
        return self._ledger.pop(tenant_id, None)
