"""The federation's cross-pod wire protocol: plain, picklable messages.

The serial :class:`~repro.federation.controller.FederationController`
reaches into its pods with direct object calls — ``pod.plane.submit``,
``pod.system.hosting``, registry walks.  The parallel federation
(:mod:`repro.federation.parallel`) cannot: each pod lives in its own OS
process, so **every** cross-pod interaction must be a message that
pickles cleanly and says everything the other side needs.  This module
is that protocol — the complete vocabulary the coordinator and the pod
logical processes exchange:

====================  =================================================
coordinator → pod     :class:`SubmitCmd` (boot/scale/migrate/depart
                      through the pod's admission pipeline),
                      :class:`DrainCmd` (settle a tenant's in-flight
                      work and report its footprint — migration phase
                      0), :class:`FenceCmd` (release a lost replica's
                      bookkeeping before re-admission),
                      :class:`FailPodCmd` / :class:`RestorePodCmd`
                      (pod-class fault injection).
pod → coordinator     :class:`CompletionReply` (one per SubmitCmd, the
                      request's full :class:`~repro.cluster.metrics.
                      RequestRecord` timing), :class:`DrainedReply`
                      (one per DrainCmd).
pod → coordinator,    :class:`PodStatus` — the pod's load snapshot,
at window barriers    attached to the barrier reply whenever the pod
                      processed events that window; the coordinator's
                      :class:`~repro.federation.placer.GlobalPlacer`
                      scores placements from the cached copies.
====================  =================================================

Everything here is a frozen dataclass of numbers and strings.  Sim
objects (:class:`~repro.sim.engine.Event`, simulators, control planes)
refuse pickling by design, so a protocol regression — someone slipping
a live object into a message — fails loudly at the pipe, not silently
in a worker.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SubmitCmd:
    """Coordinator → pod: push one request through the pod's admission
    pipeline (``plane.submit``) at the message's arrival time.

    ``ram_bytes``/``vcpus`` parameterize ``boot``; ``size_bytes``
    parameterizes ``scale_up``; the other kinds need no payload
    (``scale_down`` resolves its segment at serve time, exactly like
    the serial federation's lifecycle).
    """

    request_id: int
    kind: str
    tenant_id: str
    ram_bytes: int = 0
    vcpus: int = 0
    size_bytes: int = 0


@dataclass(frozen=True)
class DrainCmd:
    """Coordinator → pod: wait out the tenant's in-flight requests
    (``plane.tenant_tail``), then report the footprint an inter-pod
    move must copy — migration phase 0."""

    request_id: int
    tenant_id: str


@dataclass(frozen=True)
class FenceCmd:
    """Coordinator → pod: release a lost replica's bookkeeping
    (``system.terminate_vm``, errors ignored) so a later repair never
    double-books capacity the tenant's re-admission moved elsewhere.
    Fire-and-forget: no reply."""

    tenant_id: str


@dataclass(frozen=True)
class FailPodCmd:
    """Coordinator → pod: the whole pod goes down (fault injection) —
    pause the admission pipeline until :class:`RestorePodCmd`."""


@dataclass(frozen=True)
class RestorePodCmd:
    """Coordinator → pod: repair complete — resume serving."""


@dataclass(frozen=True)
class CompletionReply:
    """Pod → coordinator: one :class:`SubmitCmd`'s request finished
    (served or rejected — check ``ok``).  Carries the pod-local
    :class:`~repro.cluster.metrics.RequestRecord` timing so the
    coordinator can reconstruct the record exactly."""

    request_id: int
    tenant_id: str
    kind: str
    ok: bool
    note: str
    submitted_s: float
    started_s: float
    completed_s: float
    queue_depth_at_submit: int


@dataclass(frozen=True)
class DrainedReply:
    """Pod → coordinator: the tenant's in-flight work has settled.

    ``hosted`` is False when the tenant departed before the drain
    completed (the move is then abandoned, mirroring the serial
    migrator); otherwise ``ram_bytes`` is the full current footprint —
    boot RAM plus every runtime DIMM — the inter-pod link must carry.
    """

    request_id: int
    tenant_id: str
    hosted: bool
    ram_bytes: int = 0
    vcpus: int = 0


@dataclass(frozen=True)
class PodStatus:
    """One pod's load, measured at a window barrier.

    The same quantities :meth:`~repro.federation.placer.GlobalPlacer.
    snapshot` reads directly in the serial federation, plus the
    utilization/idleness the rebalancer's planning needs — everything
    coordinator-side policy consumes, so no policy ever needs a live
    object from another process.
    """

    free_memory_bytes: int
    free_cores: int
    queue_depth: int
    fragmentation: float
    #: Fraction of the pod's memory pool currently allocated (the
    #: rebalancer's hot/cold signal).
    utilization: float
    #: True when the pod's admission pipeline has nothing queued,
    #: in service, or detached (the rebalancer's idle-window gate).
    idle: bool
    alive: bool = True


def measure_pod(system, plane, alive: bool = True) -> PodStatus:
    """Compute a :class:`PodStatus` from direct reads of one pod.

    The one shared implementation of the load measurement: the serial
    federation's :meth:`~repro.federation.controller.FederatedPod.
    load_snapshot` and the parallel pod LP's barrier status both call
    this, so placement decisions see identical numbers on either
    backend.
    """
    registry = system.sdm.registry
    entries = [e for e in registry.memory_entries if not e.failed]
    fragmentation = (
        sum(e.allocator.fragmentation for e in entries) / len(entries)
        if entries else 0.0)
    allocated = sum(e.allocator.allocated_bytes for e in entries)
    free = sum(e.allocator.free_bytes for e in entries)
    return PodStatus(
        free_memory_bytes=sum(
            a.free_bytes for a in registry.memory_availability()),
        free_cores=sum(c.free_cores
                       for c in registry.compute_availability()),
        queue_depth=(plane.admission.size
                     + plane.ctx.total_reservation_queue_depth),
        fragmentation=fragmentation,
        utilization=allocated / (allocated + free)
        if allocated + free else 0.0,
        idle=plane.is_idle(),
        alive=alive,
    )
