"""Multi-pod federation: the control tier above the pod.

Where :mod:`repro.cluster` serves traffic against *one* pod,
this package federates many — each pod an independent
:class:`~repro.core.system.DisaggregatedSystem` with its own control
plane and sharded SDM controller — under a global placement tier:

* :mod:`repro.federation.placer` — locality-first tenant-to-pod
  placement with capacity spill (pluggable scoring);
* :mod:`repro.federation.controller` — the federation controller: N
  pods on one shared DES clock, request routing, tenant lifecycles;
* :mod:`repro.federation.migration` — two-phase inter-pod tenant
  migration (reserve in target, copy, commit/rollback);
* :mod:`repro.federation.rebalancer` — idle-window draining of
  overloaded pods.
"""

from repro.federation.controller import (
    DEFAULT_INTERPOD_LINK_BPS,
    FederatedPod,
    FederationController,
    FederationStats,
    build_federation,
)
from repro.federation.migration import InterPodMigrator, MigrationOutcome
from repro.federation.placer import (
    SPILL_POLICIES,
    GlobalPlacer,
    PodClaim,
    PodSnapshot,
    free_capacity_score,
    fragmentation_score,
    queue_depth_score,
)
from repro.federation.rebalancer import FederationRebalancer, RebalanceReport

__all__ = [
    "DEFAULT_INTERPOD_LINK_BPS",
    "FederatedPod",
    "FederationController",
    "FederationRebalancer",
    "FederationStats",
    "GlobalPlacer",
    "InterPodMigrator",
    "MigrationOutcome",
    "PodClaim",
    "PodSnapshot",
    "RebalanceReport",
    "SPILL_POLICIES",
    "build_federation",
    "free_capacity_score",
    "fragmentation_score",
    "queue_depth_score",
]
