"""Named S/M/L/XL design templates.

The Infrahub datacenter-flow exemplar (SNIPPETS.md §1) ships validated
S/M/L/XL design patterns a deployment picks by name and adjusts; these
templates are the same idea for the dReDBox federation.  Each is a
complete raw spec dict — :func:`template` validates it (optionally with
overrides merged in) into a :class:`~repro.topology.spec.TopologySpec`.

========  ====  ==========  ==================  =======================
template  pods  racks/pod   bricks per rack     operational surface
========  ====  ==========  ==================  =======================
``S``     2     1           2 CB + 2 MB (16G)   none (smoke/dev)
``M``     3     2           2 CB + 2 MB (16G)   rack-power + pod-network
                                                domains, pod0 drain @4s
``L``     4     2           8 CB + 4 MB (256G)  rack-power domains
``XL``    8     4           8 CB + 8 MB (512G)  both domain layers,
                                                3-pod rolling drain,
                                                3-replica groups
========  ====  ==========  ==================  =======================

``M`` is the experiments' workhorse: it compiles to exactly the
federation the ``federation``/``availability``/``maintenance`` drivers
used to hand-build (three ``PodBuilder`` pods, two racks each, per-rack
sharded controllers), which the compiler tests pin with a federation
fingerprint.  ``L`` is the parallel-scaling shape (wide pods, spread
placement, per-request dispatch, 24 ms sync window).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import TopologyError
from repro.topology.spec import TopologySpec, merge_spec

#: Raw template dicts, deliberately dict-shaped (not TopologySpec
#: instances) so ``template(name, overrides)`` merges before a single
#: validation pass — an override can therefore relax or tighten any
#: field and still get path-qualified errors.
TEMPLATES: dict[str, dict] = {
    "S": {
        "name": "S",
        "pods": 2,
        "racks_per_pod": 1,
        "rack": {
            "compute_bricks": 2,
            "compute_cores": 16,
            "local_memory_bytes": "1GiB",
            "memory_bricks": 2,
            "memory_modules": 2,
            "module_bytes": "4GiB",
        },
        "section_bytes": "256MiB",
        "placement": "pack",
        "spill_policy": "least-loaded",
    },
    "M": {
        "name": "M",
        "pods": 3,
        "racks_per_pod": 2,
        "rack": {
            "compute_bricks": 2,
            "compute_cores": 16,
            "local_memory_bytes": "1GiB",
            "memory_bricks": 2,
            "memory_modules": 2,
            "module_bytes": "4GiB",
        },
        "section_bytes": "256MiB",
        "placement": "pack",
        "spill_policy": "least-loaded",
        "domains": [
            {"kind": "rack-power", "mtbf_s": 60.0, "mttr_s": 4.0},
            {"kind": "pod-network", "mtbf_s": 60.0, "mttr_s": 4.0},
        ],
        "maintenance": {
            "windows": [{"pod": "pod0", "at_s": 4.0}],
        },
    },
    "L": {
        "name": "L",
        "pods": 4,
        "racks_per_pod": 2,
        "rack": {
            "compute_bricks": 8,
            "compute_cores": 16,
            "local_memory_bytes": "1GiB",
            "memory_bricks": 4,
            "memory_modules": 8,
            "module_bytes": "8GiB",
        },
        "section_bytes": "256MiB",
        "placement": "spread",
        "spill_policy": "least-loaded",
        "control": {"max_batch": 1},
        "fabric": {"sync_window_s": 24e-3},
        "domains": [
            {"kind": "rack-power", "mtbf_s": 300.0, "mttr_s": 15.0},
        ],
    },
    "XL": {
        "name": "XL",
        "pods": 8,
        "racks_per_pod": 4,
        "rack": {
            "compute_bricks": 8,
            "compute_cores": 16,
            "local_memory_bytes": "1GiB",
            "memory_bricks": 8,
            "memory_modules": 8,
            "module_bytes": "8GiB",
        },
        "section_bytes": "256MiB",
        "placement": "spread",
        "spill_policy": "least-loaded",
        "replica_groups": 3,
        "domains": [
            {"kind": "rack-power", "mtbf_s": 300.0, "mttr_s": 15.0},
            {"kind": "pod-network", "mtbf_s": 600.0, "mttr_s": 10.0},
        ],
        "maintenance": {
            "windows": [
                {"pod": "pod0", "at_s": 5.0},
                {"pod": "pod1", "at_s": 10.0},
                {"pod": "pod2", "at_s": 15.0},
            ],
        },
    },
}

TEMPLATE_NAMES = tuple(TEMPLATES)


def template(name: str,
             overrides: Optional[Mapping] = None) -> TopologySpec:
    """Validate template *name* (with optional *overrides* merged in,
    one mapping level deep) into a :class:`TopologySpec`."""
    if name not in TEMPLATES:
        raise TopologyError(
            f"unknown template {name!r}; known: "
            f"{', '.join(TEMPLATE_NAMES)}", path="template")
    raw = TEMPLATES[name]
    if overrides:
        raw = merge_spec(raw, overrides)
    return TopologySpec.from_dict(raw)
