"""Declarative topology specs: one dict describes a whole datacenter.

A :class:`TopologySpec` is the canonical, validated form of a
dict/YAML-shaped description of a federation deployment: how many pods,
how many racks per pod, each rack's brick population, the fabric's
bandwidths, the correlated failure domains layered over the hardware,
and the rolling-maintenance schedule.  Everything an experiment used to
hand-assemble — ``PodBuilder`` calls, :func:`~repro.faults.domains.
rack_power_domains` sets, drain timings — derives from this one spec,
so the operational surface can never drift from the hardware it
describes.

The raw (user-facing) dict is forgiving: sizes accept ints (bytes) or
``"4GiB"``/``"256MiB"`` strings, bandwidths accept bps floats or
``"100Gbps"``, and every field has a default.  Validation is strict:
unknown keys, zero-brick racks, overlapping failure domains, unknown
pods in maintenance windows and schedules that would drain the last
accepting pod are all rejected with a path-qualified
:class:`~repro.errors.TopologyError` (e.g. ``"domains[1].mtbf_s: must
be positive"``).

:meth:`TopologySpec.to_dict` emits the normalized canonical dict —
every default filled in, every size in bytes — and is a fixed point:
``TopologySpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.errors import TopologyError
from repro.fabric.pod import DEFAULT_UPLINKS_PER_RACK
from repro.faults.domains import coerce_hazard
from repro.federation.controller import DEFAULT_INTERPOD_LINK_BPS
from repro.federation.placer import SPILL_POLICIES
from repro.orchestration.placement import PLACEMENT_POLICIES
from repro.units import GIB, MIB, gib, mib

#: Failure-domain kinds the compiler knows how to emit (each maps to a
#: topology-derived builder in :mod:`repro.faults.domains`).
DOMAIN_KINDS = ("rack-power", "pod-network")

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(GiB|MiB)\s*$",
                      re.IGNORECASE)
_BPS_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*Gbps\s*$",
                     re.IGNORECASE)


def _fail(path: str, message: str) -> "TopologyError":
    raise TopologyError(message, path=path)


def _require_mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        _fail(path, f"expected a mapping, got {type(value).__name__}")
    return value


def _check_keys(raw: Mapping, allowed: tuple[str, ...],
                path: str) -> None:
    unknown = sorted(set(raw) - set(allowed))
    if unknown:
        _fail(f"{path}.{unknown[0]}" if path else unknown[0],
              f"unknown key (known: {', '.join(allowed)})")


def _coerce_int(value: Any, path: str, *, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(path, f"expected an integer, got {value!r}")
    if value < minimum:
        _fail(path, f"must be >= {minimum}, got {value}")
    return value


def _coerce_bytes(value: Any, path: str) -> int:
    if isinstance(value, str):
        match = _SIZE_RE.match(value)
        if match is None:
            _fail(path, f"malformed size {value!r} (want bytes or "
                        f"'<n>GiB'/'<n>MiB')")
        number = float(match.group(1))
        unit = GIB if match.group(2).lower() == "gib" else MIB
        value = int(number * unit)
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(path, f"expected a byte count, got {value!r}")
    if value <= 0:
        _fail(path, f"size must be positive, got {value}")
    return value


def _coerce_bps(value: Any, path: str) -> float:
    if isinstance(value, str):
        match = _BPS_RE.match(value)
        if match is None:
            _fail(path, f"malformed bandwidth {value!r} (want bps or "
                        f"'<n>Gbps')")
        value = float(match.group(1)) * 1e9
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected a bandwidth, got {value!r}")
    if value <= 0:
        _fail(path, f"bandwidth must be positive, got {value}")
    return float(value)


def _coerce_seconds(value: Any, path: str, *,
                    minimum: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"expected seconds, got {value!r}")
    if value < minimum:
        _fail(path, f"must be >= {minimum:g}, got {value}")
    return float(value)


# ---------------------------------------------------------------------------
# sub-specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RackSpec:
    """Per-rack brick population (every rack in a pod is identical)."""

    compute_bricks: int = 2
    compute_cores: int = 16
    local_memory_bytes: int = gib(1)
    memory_bricks: int = 2
    memory_modules: int = 2
    module_bytes: int = gib(4)

    _KEYS = ("compute_bricks", "compute_cores", "local_memory_bytes",
             "memory_bricks", "memory_modules", "module_bytes")

    @classmethod
    def from_dict(cls, raw: Mapping, path: str = "rack") -> "RackSpec":
        _check_keys(raw, cls._KEYS, path)
        defaults = cls()
        compute = raw.get("compute_bricks", defaults.compute_bricks)
        memory = raw.get("memory_bricks", defaults.memory_bricks)
        # Zero-brick racks are the canonical invalid spec: a rack with
        # no compute can host nothing, one with no memory serves
        # nothing, so both kinds are floored at one explicitly (the
        # builder enforces the same floor one layer down).
        return cls(
            compute_bricks=_coerce_int(
                compute, f"{path}.compute_bricks", minimum=1),
            compute_cores=_coerce_int(
                raw.get("compute_cores", defaults.compute_cores),
                f"{path}.compute_cores", minimum=1),
            local_memory_bytes=_coerce_bytes(
                raw.get("local_memory_bytes",
                        defaults.local_memory_bytes),
                f"{path}.local_memory_bytes"),
            memory_bricks=_coerce_int(
                memory, f"{path}.memory_bricks", minimum=1),
            memory_modules=_coerce_int(
                raw.get("memory_modules", defaults.memory_modules),
                f"{path}.memory_modules", minimum=1),
            module_bytes=_coerce_bytes(
                raw.get("module_bytes", defaults.module_bytes),
                f"{path}.module_bytes"),
        )

    def to_dict(self) -> dict:
        return {key: getattr(self, key) for key in self._KEYS}

    @property
    def pool_bytes(self) -> int:
        """Remote memory pool one rack contributes."""
        return (self.memory_bricks * self.memory_modules
                * self.module_bytes)


@dataclass(frozen=True)
class FabricSpec:
    """Interconnect shape: trunking and the inter-pod link."""

    uplinks_per_rack: int = DEFAULT_UPLINKS_PER_RACK
    interpod_link_bps: float = DEFAULT_INTERPOD_LINK_BPS
    #: Conservative lookahead for the parallel backend; ``None`` keeps
    #: that backend's default (the inter-pod link latency).
    sync_window_s: Optional[float] = None

    _KEYS = ("uplinks_per_rack", "interpod_link_bps", "sync_window_s")

    @classmethod
    def from_dict(cls, raw: Mapping,
                  path: str = "fabric") -> "FabricSpec":
        _check_keys(raw, cls._KEYS, path)
        defaults = cls()
        window = raw.get("sync_window_s", defaults.sync_window_s)
        if window is not None:
            window = _coerce_seconds(window, f"{path}.sync_window_s")
            if window <= 0:
                _fail(f"{path}.sync_window_s",
                      f"must be positive, got {window}")
        return cls(
            uplinks_per_rack=_coerce_int(
                raw.get("uplinks_per_rack", defaults.uplinks_per_rack),
                f"{path}.uplinks_per_rack", minimum=1),
            interpod_link_bps=_coerce_bps(
                raw.get("interpod_link_bps",
                        defaults.interpod_link_bps),
                f"{path}.interpod_link_bps"),
            sync_window_s=window,
        )

    def to_dict(self) -> dict:
        return {"uplinks_per_rack": self.uplinks_per_rack,
                "interpod_link_bps": self.interpod_link_bps,
                "sync_window_s": self.sync_window_s}


@dataclass(frozen=True)
class ControlSpec:
    """Per-pod control-plane dispatch knobs."""

    max_batch: int = 4
    batch_window_s: float = 0.001

    _KEYS = ("max_batch", "batch_window_s")

    @classmethod
    def from_dict(cls, raw: Mapping,
                  path: str = "control") -> "ControlSpec":
        _check_keys(raw, cls._KEYS, path)
        defaults = cls()
        return cls(
            max_batch=_coerce_int(
                raw.get("max_batch", defaults.max_batch),
                f"{path}.max_batch", minimum=1),
            batch_window_s=_coerce_seconds(
                raw.get("batch_window_s", defaults.batch_window_s),
                f"{path}.batch_window_s"),
        )

    def to_dict(self) -> dict:
        return {"max_batch": self.max_batch,
                "batch_window_s": self.batch_window_s}


@dataclass(frozen=True)
class DomainSpec:
    """One correlated failure-domain layer over the topology.

    ``kind`` picks the :mod:`repro.faults.domains` builder (one domain
    per rack for ``rack-power``, one per pod for ``pod-network``);
    ``pods`` optionally restricts the layer to a subset of pods
    (``None`` covers them all).  Two same-kind layers may never cover
    the same pod — the overlap validation.
    """

    kind: str
    mtbf_s: float
    mttr_s: float
    hazard: Optional[str] = None
    pods: Optional[tuple[str, ...]] = None

    _KEYS = ("kind", "mtbf_s", "mttr_s", "hazard", "pods")

    @classmethod
    def from_dict(cls, raw: Mapping, path: str) -> "DomainSpec":
        _check_keys(raw, cls._KEYS, path)
        kind = raw.get("kind")
        if kind not in DOMAIN_KINDS:
            _fail(f"{path}.kind",
                  f"unknown domain kind {kind!r}; known: "
                  f"{', '.join(DOMAIN_KINDS)}")
        if "mtbf_s" not in raw:
            _fail(f"{path}.mtbf_s", "required")
        if "mttr_s" not in raw:
            _fail(f"{path}.mttr_s", "required")
        mtbf_s = _coerce_seconds(raw["mtbf_s"], f"{path}.mtbf_s")
        mttr_s = _coerce_seconds(raw["mttr_s"], f"{path}.mttr_s")
        if mtbf_s <= 0:
            _fail(f"{path}.mtbf_s", "must be positive")
        if mttr_s <= 0:
            _fail(f"{path}.mttr_s", "must be positive")
        hazard = raw.get("hazard")
        if hazard is not None:
            if not isinstance(hazard, str):
                _fail(f"{path}.hazard",
                      f"expected a hazard spec string, got {hazard!r}")
            try:
                coerce_hazard(hazard)
            except Exception as exc:
                _fail(f"{path}.hazard", str(exc))
        pods = raw.get("pods")
        if pods is not None:
            if (not isinstance(pods, (list, tuple)) or not pods
                    or not all(isinstance(p, str) for p in pods)):
                _fail(f"{path}.pods",
                      f"expected a non-empty list of pod ids, got "
                      f"{pods!r}")
            pods = tuple(pods)
            if len(set(pods)) != len(pods):
                _fail(f"{path}.pods", f"duplicate pod ids in {pods}")
        return cls(kind=kind, mtbf_s=mtbf_s, mttr_s=mttr_s,
                   hazard=hazard, pods=pods)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "mtbf_s": self.mtbf_s,
                "mttr_s": self.mttr_s, "hazard": self.hazard,
                "pods": list(self.pods) if self.pods is not None
                else None}

    def covers(self, pod_ids: tuple[str, ...]) -> tuple[str, ...]:
        """The pods this layer spans, resolved against the topology."""
        return self.pods if self.pods is not None else pod_ids


@dataclass(frozen=True)
class MaintenanceWindow:
    """One rolling-drain slot: retire *pod* starting at *at_s*."""

    pod: str
    at_s: float

    _KEYS = ("pod", "at_s")

    @classmethod
    def from_dict(cls, raw: Mapping, path: str) -> "MaintenanceWindow":
        _check_keys(raw, cls._KEYS, path)
        pod = raw.get("pod")
        if not isinstance(pod, str) or not pod:
            _fail(f"{path}.pod", f"expected a pod id, got {pod!r}")
        if "at_s" not in raw:
            _fail(f"{path}.at_s", "required")
        return cls(pod=pod,
                   at_s=_coerce_seconds(raw["at_s"], f"{path}.at_s"))

    def to_dict(self) -> dict:
        return {"pod": self.pod, "at_s": self.at_s}


# ---------------------------------------------------------------------------
# the spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """The validated, canonical form of a declarative topology."""

    name: str = "custom"
    pods: int = 2
    racks_per_pod: int = 2
    rack: RackSpec = field(default_factory=RackSpec)
    section_bytes: int = mib(256)
    placement: str = "pack"
    spill_policy: str = "least-loaded"
    replica_groups: Optional[int] = None
    control: ControlSpec = field(default_factory=ControlSpec)
    fabric: FabricSpec = field(default_factory=FabricSpec)
    domains: tuple[DomainSpec, ...] = ()
    maintenance: tuple[MaintenanceWindow, ...] = ()

    _KEYS = ("name", "pods", "racks_per_pod", "rack", "section_bytes",
             "placement", "spill_policy", "replica_groups", "control",
             "fabric", "domains", "maintenance")

    @classmethod
    def from_dict(cls, raw: Mapping) -> "TopologySpec":
        """Validate a raw spec dict into its canonical form.

        Raises :class:`~repro.errors.TopologyError` with the offending
        spec path on the first violation.
        """
        _require_mapping(raw, "<spec>")
        _check_keys(raw, cls._KEYS, "")
        defaults = cls()
        name = raw.get("name", defaults.name)
        if not isinstance(name, str) or not name:
            _fail("name", f"expected a non-empty string, got {name!r}")
        pods = _coerce_int(raw.get("pods", defaults.pods), "pods",
                           minimum=1)
        racks = _coerce_int(
            raw.get("racks_per_pod", defaults.racks_per_pod),
            "racks_per_pod", minimum=1)
        rack = RackSpec.from_dict(
            _require_mapping(raw.get("rack", {}), "rack"), "rack")
        section_bytes = _coerce_bytes(
            raw.get("section_bytes", defaults.section_bytes),
            "section_bytes")
        placement = raw.get("placement", defaults.placement)
        if placement not in PLACEMENT_POLICIES:
            _fail("placement",
                  f"unknown placement policy {placement!r}; known: "
                  f"{', '.join(PLACEMENT_POLICIES)}")
        spill_policy = raw.get("spill_policy", defaults.spill_policy)
        if spill_policy not in SPILL_POLICIES:
            _fail("spill_policy",
                  f"unknown spill policy {spill_policy!r}; known: "
                  f"{', '.join(SPILL_POLICIES)}")
        replica_groups = raw.get("replica_groups")
        if replica_groups is not None:
            replica_groups = _coerce_int(
                replica_groups, "replica_groups", minimum=2)
        control = ControlSpec.from_dict(
            _require_mapping(raw.get("control", {}), "control"),
            "control")
        fabric = FabricSpec.from_dict(
            _require_mapping(raw.get("fabric", {}), "fabric"),
            "fabric")

        pod_ids = tuple(f"pod{index}" for index in range(pods))
        raw_domains = raw.get("domains", [])
        if not isinstance(raw_domains, (list, tuple)):
            _fail("domains",
                  f"expected a list, got {type(raw_domains).__name__}")
        domains = []
        for index, entry in enumerate(raw_domains):
            path = f"domains[{index}]"
            domain = DomainSpec.from_dict(
                _require_mapping(entry, path), path)
            for pod in domain.pods or ():
                if pod not in pod_ids:
                    _fail(f"{path}.pods",
                          f"unknown pod {pod!r} (topology has "
                          f"{pods} pods: pod0..pod{pods - 1})")
            for earlier_index, earlier in enumerate(domains):
                if earlier.kind != domain.kind:
                    continue
                shared = (set(earlier.covers(pod_ids))
                          & set(domain.covers(pod_ids)))
                if shared:
                    _fail(path,
                          f"overlaps domains[{earlier_index}]: both "
                          f"{domain.kind!r} layers cover "
                          f"{sorted(shared)}")
            domains.append(domain)

        raw_maintenance = _require_mapping(
            raw.get("maintenance", {}), "maintenance")
        _check_keys(raw_maintenance, ("windows",), "maintenance")
        raw_windows = raw_maintenance.get("windows", [])
        if not isinstance(raw_windows, (list, tuple)):
            _fail("maintenance.windows",
                  f"expected a list, got "
                  f"{type(raw_windows).__name__}")
        windows = []
        drained: set[str] = set()
        for index, entry in enumerate(raw_windows):
            path = f"maintenance.windows[{index}]"
            window = MaintenanceWindow.from_dict(
                _require_mapping(entry, path), path)
            if window.pod not in pod_ids:
                _fail(f"{path}.pod",
                      f"unknown pod {window.pod!r} (topology has "
                      f"{pods} pods: pod0..pod{pods - 1})")
            if window.pod in drained:
                _fail(f"{path}.pod",
                      f"pod {window.pod!r} already drained by an "
                      f"earlier window")
            if windows and window.at_s < windows[-1].at_s:
                _fail(f"{path}.at_s",
                      f"windows must be time-ordered "
                      f"({window.at_s:g} < {windows[-1].at_s:g})")
            drained.add(window.pod)
            windows.append(window)
        if windows and len(drained) >= pods:
            _fail(f"maintenance.windows[{len(windows) - 1}]",
                  "schedule drains every pod — the last window would "
                  "retire the last accepting pod")

        return cls(name=name, pods=pods, racks_per_pod=racks,
                   rack=rack, section_bytes=section_bytes,
                   placement=placement, spill_policy=spill_policy,
                   replica_groups=replica_groups, control=control,
                   fabric=fabric, domains=tuple(domains),
                   maintenance=tuple(windows))

    # -- canonical form -----------------------------------------------------

    def to_dict(self) -> dict:
        """The normalized canonical dict (a :meth:`from_dict` fixed
        point: re-validating it returns an equal spec)."""
        return {
            "name": self.name,
            "pods": self.pods,
            "racks_per_pod": self.racks_per_pod,
            "rack": self.rack.to_dict(),
            "section_bytes": self.section_bytes,
            "placement": self.placement,
            "spill_policy": self.spill_policy,
            "replica_groups": self.replica_groups,
            "control": self.control.to_dict(),
            "fabric": self.fabric.to_dict(),
            "domains": [domain.to_dict() for domain in self.domains],
            "maintenance": {
                "windows": [w.to_dict() for w in self.maintenance]},
        }

    def override(self, **overrides) -> "TopologySpec":
        """A new validated spec with top-level *overrides* applied.

        Nested dict values merge one level deep (``rack={"memory_
        bricks": 4}`` keeps the other rack fields), mirroring how the
        named templates take adjustments.
        """
        return TopologySpec.from_dict(
            merge_spec(self.to_dict(), overrides))

    # -- derived facts ------------------------------------------------------

    @property
    def pod_ids(self) -> tuple[str, ...]:
        return tuple(f"pod{index}" for index in range(self.pods))

    @property
    def bricks_per_rack(self) -> int:
        return self.rack.compute_bricks + self.rack.memory_bricks

    @property
    def total_bricks(self) -> int:
        return self.pods * self.racks_per_pod * self.bricks_per_rack

    @property
    def pool_bytes(self) -> int:
        """Total remote memory pool across the federation."""
        return self.pods * self.racks_per_pod * self.rack.pool_bytes


def merge_spec(base: Mapping, overrides: Mapping) -> dict:
    """Overlay *overrides* on *base*, merging mappings one level deep.

    ``None`` values in *overrides* are kept (they reset optional
    fields); unknown keys survive the merge and fail in validation,
    where the error message can name the path.
    """
    merged = dict(base)
    for key, value in overrides.items():
        if (isinstance(value, Mapping)
                and isinstance(merged.get(key), Mapping)):
            merged[key] = {**merged[key], **value}
        else:
            merged[key] = value
    return merged


def load_spec(source: Union[str, Path, Mapping,
                            "TopologySpec"]) -> "TopologySpec":
    """Resolve a CLI-shaped topology reference into a validated spec.

    Accepts a template name (``"M"``), a path to a ``.json`` (or, when
    PyYAML is importable, ``.yaml``/``.yml``) spec file, an already-
    parsed dict, or a :class:`TopologySpec` (returned as-is).
    """
    if isinstance(source, TopologySpec):
        return source
    if isinstance(source, Mapping):
        return TopologySpec.from_dict(source)
    from repro.topology.templates import TEMPLATE_NAMES, template
    text = str(source)
    if text in TEMPLATE_NAMES:
        return template(text)
    path = Path(text)
    if not path.exists():
        raise TopologyError(
            f"no template or spec file {text!r} (templates: "
            f"{', '.join(TEMPLATE_NAMES)})")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - env-dependent
            raise TopologyError(
                f"{path}: YAML specs need PyYAML; re-encode as JSON"
            ) from None
        raw = yaml.safe_load(path.read_text())
    else:
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise TopologyError(f"{path}: not valid JSON: {exc}") \
                from None
    if not isinstance(raw, Mapping):
        raise TopologyError(
            f"{path}: spec file must hold a mapping, got "
            f"{type(raw).__name__}")
    return TopologySpec.from_dict(raw)
