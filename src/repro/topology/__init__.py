"""Declarative topology compiler.

One spec — pods × racks × bricks, fabric, failure-domain layers,
maintenance windows — validated once and compiled into both the
hardware tier (a :class:`~repro.federation.controller.
FederationController` over :class:`~repro.core.builder.PodBuilder`
pods) and the canonical operational surface (``FaultInjector`` failure
domains, a ``MaintenanceSupervisor`` drain schedule) that the
experiment drivers previously hand-built in four different places.

>>> from repro.topology import compile_spec
>>> topo = compile_spec("M", sync_window_s=None)
>>> topo.federation.pods.keys()
dict_keys(['pod0', 'pod1', 'pod2'])
"""

from repro.topology.compiler import (
    CompiledTopology,
    compile_spec,
    validate_spec,
)
from repro.topology.spec import (
    ControlSpec,
    DomainSpec,
    FabricSpec,
    MaintenanceWindow,
    RackSpec,
    TopologySpec,
    load_spec,
    merge_spec,
)
from repro.topology.templates import TEMPLATE_NAMES, TEMPLATES, template

__all__ = [
    "CompiledTopology",
    "ControlSpec",
    "DomainSpec",
    "FabricSpec",
    "MaintenanceWindow",
    "RackSpec",
    "TEMPLATES",
    "TEMPLATE_NAMES",
    "TopologySpec",
    "compile_spec",
    "load_spec",
    "merge_spec",
    "template",
    "validate_spec",
]
