"""Compile a validated spec into a running federation plus its
canonical operational surface.

:func:`compile_spec` is the single door between the declarative world
(:mod:`repro.topology.spec`) and the built one: it routes every pod
through the existing :func:`~repro.federation.controller.
build_federation` / :func:`~repro.federation.parallel.
build_parallel_federation` assembly paths (so a compiled topology is
construction-for-construction identical to a hand-built one — the
fingerprint tests pin this), and the :class:`CompiledTopology` it
returns then **emits** what no hand-built experiment derived from one
source before:

* :meth:`CompiledTopology.failure_domains` — the spec's correlated
  failure-domain layers, realized against the actual built topology by
  the :mod:`repro.faults.domains` builders, ready for
  ``FaultInjector(domains=...)``;
* :meth:`CompiledTopology.supervisor` /
  :meth:`CompiledTopology.install_maintenance` — a
  :class:`~repro.maintenance.supervisor.MaintenanceSupervisor` plus
  the spec's rolling-drain schedule as DES processes on the
  federation's clock.

Runtime-only collaborators that cannot live in a serializable spec —
rebalancer instances, scoring callables, the worker-process count —
pass through as keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from repro.cluster.trace import replica_group_of
from repro.errors import TopologyError
from repro.faults.domains import (
    FailureDomain,
    Hazard,
    coerce_hazard,
    pod_network_domains,
    rack_power_domains,
)
from repro.federation.controller import build_federation
from repro.federation.rebalancer import FederationRebalancer
from repro.maintenance.supervisor import (
    DrainReport,
    MaintenanceSupervisor,
)
from repro.topology.spec import MaintenanceWindow, TopologySpec, load_spec

#: Maps a spec domain kind to its topology-derived builder.
_DOMAIN_BUILDERS = {
    "rack-power": rack_power_domains,
    "pod-network": pod_network_domains,
}


def _domain_pod(domain: FailureDomain) -> str:
    """The pod a built domain instance belongs to (from its name:
    ``power.<pod>.<rack>`` or ``net.<pod>``)."""
    return domain.name.split(".")[1]


@dataclass
class CompiledTopology:
    """A built federation plus the operational surface its spec emits."""

    spec: TopologySpec
    federation: object  # FederationController | ParallelFederationController
    #: ``None`` = the direct-call serial backend; an int = the parallel
    #: backend's worker-process count (0 = its in-process fleet).
    workers: Optional[int] = None
    _domain_cache: dict = field(default_factory=dict, repr=False)

    # -- canonical form -----------------------------------------------------

    def describe(self) -> dict:
        """The normalized spec dict this topology was compiled from.

        Re-compiling the description reproduces the topology: compile →
        describe → re-compile is a fixed point (property-tested).
        """
        return self.spec.to_dict()

    # -- failure domains ----------------------------------------------------

    def failure_domains(self,
                        kinds: Optional[Sequence[str]] = None,
                        hazard: Optional[Union[str, Hazard]] = None
                        ) -> list[FailureDomain]:
        """The spec's correlated failure domains, built against the
        compiled federation.

        *kinds* filters to a subset of the spec's domain layers (e.g.
        ``("rack-power",)``); *hazard* (a spec string or a
        :class:`~repro.faults.domains.Hazard`) overrides every
        emitted domain's inter-arrival distribution — the CLI
        ``--hazard`` axis.  Only the serial backend exposes pod
        internals to the domain builders, so this raises on a
        parallel-compiled topology.
        """
        if self.workers is not None:
            raise TopologyError(
                "failure domains need the serial federation backend "
                "(pod internals are process-local under workers=N)",
                path="domains")
        if kinds is not None:
            unknown = sorted(set(kinds)
                             - set(_DOMAIN_BUILDERS))
            if unknown:
                raise TopologyError(
                    f"unknown domain kind {unknown[0]!r}; known: "
                    f"{', '.join(_DOMAIN_BUILDERS)}", path="domains")
        if isinstance(hazard, str):
            hazard = coerce_hazard(hazard)
        key = (tuple(kinds) if kinds is not None else None, hazard)
        if key in self._domain_cache:
            return list(self._domain_cache[key])
        domains: list[FailureDomain] = []
        for dspec in self.spec.domains:
            if kinds is not None and dspec.kind not in kinds:
                continue
            effective = hazard
            if effective is None and dspec.hazard is not None:
                effective = coerce_hazard(dspec.hazard)
            built = _DOMAIN_BUILDERS[dspec.kind](
                self.federation, mtbf_s=dspec.mtbf_s,
                mttr_s=dspec.mttr_s, hazard=effective)
            scope = set(dspec.covers(self.spec.pod_ids))
            domains.extend(d for d in built
                           if _domain_pod(d) in scope)
        self._domain_cache[key] = list(domains)
        return domains

    # -- maintenance --------------------------------------------------------

    @property
    def maintenance_windows(self) -> tuple[MaintenanceWindow, ...]:
        """The spec's rolling-drain schedule (possibly empty)."""
        return self.spec.maintenance

    def supervisor(self, injector=None) -> MaintenanceSupervisor:
        """A maintenance supervisor over the compiled federation,
        optionally fenced against *injector*."""
        if self.workers is not None:
            raise TopologyError(
                "maintenance drains need the serial federation "
                "backend (the supervisor reaches into pod internals)",
                path="maintenance")
        return MaintenanceSupervisor(self.federation,
                                     injector=injector)

    def install_maintenance(self, supervisor: MaintenanceSupervisor,
                            ) -> list[DrainReport]:
        """Schedule every maintenance window as a DES process.

        Each window waits until its ``at_s`` and then runs a full pod
        drain; completed windows append their
        :class:`~repro.maintenance.supervisor.DrainReport` to the
        returned list (and to ``supervisor.reports``) as the clock
        reaches them.
        """
        reports: list[DrainReport] = []
        sim = self.federation.sim

        def drain_at(window: MaintenanceWindow):
            yield sim.timeout(window.at_s)
            report = yield from supervisor.drain_pod_process(window.pod)
            reports.append(report)

        for window in self.spec.maintenance:
            sim.process(drain_at(window))
        return reports

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (the parallel fleet's processes);
        a no-op on the serial backend."""
        close = getattr(self.federation, "close", None)
        if close is not None:
            close()


def compile_spec(source: Union[str, Mapping, TopologySpec], *,
                 workers: Optional[int] = None,
                 sync_window_s: Optional[float] = None,
                 rebalancer: Optional[FederationRebalancer] = None,
                 scoring=None,
                 anti_affinity=None) -> CompiledTopology:
    """Validate *source* (template name, spec file path, dict or
    :class:`TopologySpec`) and build it.

    ``workers=None`` compiles onto the direct-call serial
    :class:`~repro.federation.controller.FederationController`;
    ``workers>=0`` compiles onto the message-passing parallel backend
    (0 = its in-process fleet), with *sync_window_s* overriding the
    spec's ``fabric.sync_window_s`` lookahead.  *rebalancer*,
    *scoring* and *anti_affinity* are runtime collaborators a
    serializable spec cannot carry; when the spec sets
    ``replica_groups`` the placer's replica-group anti-affinity is
    wired in automatically.
    """
    spec = load_spec(source)
    if anti_affinity is None and spec.replica_groups is not None:
        anti_affinity = replica_group_of
    pod_kwargs = dict(
        racks_per_pod=spec.racks_per_pod,
        uplinks_per_rack=spec.fabric.uplinks_per_rack,
        compute_bricks=spec.rack.compute_bricks,
        compute_cores=spec.rack.compute_cores,
        local_memory=spec.rack.local_memory_bytes,
        memory_bricks=spec.rack.memory_bricks,
        memory_modules=spec.rack.memory_modules,
        module_size=spec.rack.module_bytes,
        section_bytes=spec.section_bytes,
        placement=spec.placement,
        spill_policy=spec.spill_policy,
        scoring=scoring,
        anti_affinity=anti_affinity,
        rebalancer=rebalancer,
        interpod_link_bps=spec.fabric.interpod_link_bps,
        max_batch=spec.control.max_batch,
        batch_window_s=spec.control.batch_window_s,
    )
    if workers is None:
        federation: object = build_federation(spec.pods, **pod_kwargs)
    else:
        from repro.federation.parallel import (
            DEFAULT_SYNC_WINDOW_S,
            build_parallel_federation,
        )
        window = sync_window_s
        if window is None:
            window = spec.fabric.sync_window_s
        if window is None:
            window = DEFAULT_SYNC_WINDOW_S
        federation = build_parallel_federation(
            spec.pods, workers=workers, sync_window_s=window,
            **pod_kwargs)
    return CompiledTopology(spec=spec, federation=federation,
                            workers=workers)


def validate_spec(source: Union[str, Mapping,
                                TopologySpec]) -> TopologySpec:
    """Validation without construction: resolve and validate *source*,
    returning the canonical spec (the CLI ``topology validate`` path).
    """
    return load_spec(source)
