"""The per-compute-brick data mover: cache + granularity + prefetch.

This is the subsystem facade the software layer routes remote reads and
writes through (instead of driving
:class:`~repro.memory.path.CircuitAccessPath` directly).  Per access:

1. The RMST identifies the backing segment; the
   :class:`~repro.datamover.granularity.AdaptiveGranularitySelector`
   records the reference for its locality tracking.
2. The :class:`~repro.datamover.cache.RemotePageCache` is probed.  A hit
   is served on-brick for :attr:`MoverConfig.hit_latency_s` — no optical
   round trip (DaeMon's compute-side caching).
3. A miss fetches the enclosing block — line or page, per the
   selector's current decision — over the access path resolved for the
   backing dMEMBRICK, fills the cache (write-allocate; writes dirty the
   block) and hands dirty evictions to the write-back ledger.
4. The prefetcher predicts follow-on blocks from the miss stream; they
   are brought in off the demand path and accounted as bulk traffic.

This synchronous model charges demand misses the full access-path
round trip and keeps prefetch/write-back traffic off the demand
latency, i.e. an ideally decoupled link; the queueing truth of that
decoupling (what happens when bulk and demand *contend*) is simulated
by :class:`~repro.datamover.scheduler.LinkScheduler` and
:class:`~repro.datamover.traffic.MoverTrafficSim` on the DES kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.datamover.cache import (
    DEFAULT_CACHE_CAPACITY,
    LINE_BYTES,
    CacheBlock,
    RemotePageCache,
)
from repro.datamover.granularity import (
    AdaptiveGranularitySelector,
    FetchGranularity,
    FixedGranularitySelector,
    GranularityConfig,
)
from repro.datamover.prefetcher import PREFETCHERS
from repro.errors import DataMoverError
from repro.hardware.bricks import ComputeBrick
from repro.memory.transactions import (
    MemoryTransaction,
    TransactionResult,
)
from repro.network.latency import LatencyBreakdown
from repro.units import nanoseconds


class AccessPath(Protocol):
    """What the mover needs from a resolved data path."""

    def access(self, txn: MemoryTransaction,
               now: Optional[float] = None) -> TransactionResult:
        ...


#: Resolves the access path toward a dMEMBRICK at call time (circuits
#: may be swung by migration or repair between accesses).
PathResolver = Callable[[str], AccessPath]


@dataclass(frozen=True)
class MoverConfig:
    """Configuration of one brick's data mover."""

    cache_capacity_bytes: int = DEFAULT_CACHE_CAPACITY
    eviction: str = "lru"
    #: ``"adaptive"`` (DaeMon), ``"line"`` or ``"page"``.
    granularity: str = "adaptive"
    granularity_config: Optional[GranularityConfig] = None
    #: ``"stride"``, ``"sequential"`` or ``"none"``.
    prefetch: str = "stride"
    prefetch_depth: int = 4
    #: Service time of a cache hit (on-brick SRAM/DRAM, no optics).
    hit_latency_s: float = nanoseconds(80)

    def make_selector(self):
        if self.granularity == "adaptive":
            return AdaptiveGranularitySelector(self.granularity_config)
        if self.granularity == "line":
            return FixedGranularitySelector(FetchGranularity.LINE)
        if self.granularity == "page":
            return FixedGranularitySelector(FetchGranularity.PAGE)
        raise DataMoverError(
            f"unknown granularity policy {self.granularity!r}; "
            f"known: adaptive, line, page")

    def make_prefetcher(self):
        try:
            factory = PREFETCHERS[self.prefetch]
        except KeyError:
            raise DataMoverError(
                f"unknown prefetcher {self.prefetch!r}; "
                f"known: {', '.join(PREFETCHERS)}") from None
        if self.prefetch == "none":
            return factory()
        return factory(depth=self.prefetch_depth)


DEFAULT_MOVER_CONFIG = MoverConfig()


@dataclass(frozen=True)
class MoverAccessResult:
    """Outcome of one access routed through the data mover."""

    transaction: MemoryTransaction
    breakdown: LatencyBreakdown
    hit: bool
    fetched_bytes: int
    remote_brick_id: str

    @property
    def latency_s(self) -> float:
        return self.breakdown.total_s

    @property
    def latency_ns(self) -> float:
        return self.breakdown.total_ns


@dataclass
class DataMoverStats:
    """Running accounting of one mover instance."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    demand_latency_s: float = 0.0
    demand_latencies_s: list[float] = field(default_factory=list)
    demand_bytes: int = 0
    #: Bytes misses pulled over the fabric (block fills, not payloads).
    demand_fill_bytes: int = 0
    prefetch_fills: int = 0
    prefetch_bytes: int = 0
    prefetch_latency_s: float = 0.0
    writebacks: int = 0
    writeback_bytes: int = 0
    writeback_latency_s: float = 0.0
    flushes: int = 0

    @property
    def hit_ratio(self) -> float:
        return (self.demand_hits / self.demand_accesses
                if self.demand_accesses else 0.0)

    @property
    def mean_latency_s(self) -> float:
        return (self.demand_latency_s / self.demand_accesses
                if self.demand_accesses else 0.0)


@dataclass
class _RegisteredSegment:
    """Mover-side record of one attached segment's local window."""

    segment_id: str
    window_base: int
    window_size: int
    accesses: int = 0


class DataMover:
    """The remote-memory data-movement engine of one compute brick."""

    def __init__(self, brick: ComputeBrick, path_resolver: PathResolver,
                 config: MoverConfig = DEFAULT_MOVER_CONFIG) -> None:
        self.brick = brick
        self.path_resolver = path_resolver
        self.config = config
        self.cache = RemotePageCache(config.cache_capacity_bytes,
                                     policy=config.eviction)
        self.selector = config.make_selector()
        self.prefetcher = config.make_prefetcher()
        self.stats = DataMoverStats()
        self._segments: dict[str, _RegisteredSegment] = {}

    # -- segment lifecycle --------------------------------------------------

    def register_segment(self, segment_id: str, window_base: int,
                         window_size: int) -> None:
        """Start tracking an attached segment's local window."""
        self._segments[segment_id] = _RegisteredSegment(
            segment_id, window_base, window_size)

    def flush_segment(self, segment_id: str) -> float:
        """Write back and invalidate a segment's cached blocks.

        Called on detach, *before* the RMST entry is evicted (the
        write-backs still need the mapping and the circuit).  Returns
        the accumulated write-back latency.
        """
        record = self._segments.pop(segment_id, None)
        self.selector.forget(segment_id)
        self.prefetcher.forget(segment_id)
        if record is None:
            return 0.0
        latency = 0.0
        for block in self.cache.invalidate_range(record.window_base,
                                                 record.window_size):
            if block.dirty:
                latency += self._write_back(block)
        self.stats.writeback_latency_s += latency
        self.stats.flushes += 1
        return latency

    def registered_segments(self) -> list[str]:
        return list(self._segments)

    def segment_accesses(self, segment_id: str) -> int:
        record = self._segments.get(segment_id)
        return record.accesses if record else 0

    def hot_memory_bricks(self, min_accesses: int = 1024) -> set[str]:
        """dMEMBRICKs backing segments this mover hammers.

        Feeds the placement layer's hot-segment co-location knob (see
        :class:`~repro.orchestration.placement.PowerAwarePackingPolicy`).
        """
        hot: set[str] = set()
        for record in self._segments.values():
            if record.accesses < min_accesses:
                continue
            entry = self.brick.rmst.lookup_or_none(record.window_base)
            if entry is not None:
                hot.add(entry.remote_brick_id)
        return hot

    # -- the data path ------------------------------------------------------

    def read(self, address: int, size_bytes: int = LINE_BYTES,
             now: Optional[float] = None) -> MoverAccessResult:
        return self.access(MemoryTransaction.read(address, size_bytes), now)

    def write(self, address: int, size_bytes: int = LINE_BYTES,
              now: Optional[float] = None) -> MoverAccessResult:
        return self.access(MemoryTransaction.write(address, size_bytes), now)

    def access(self, txn: MemoryTransaction,
               now: Optional[float] = None) -> MoverAccessResult:
        """Serve one transaction; cache hits skip the optical path."""
        entry = self.brick.rmst.lookup(txn.address)
        segment = self._segments.get(entry.segment_id)
        if segment is None:
            # Accessed before anyone registered it (e.g. a mover bound
            # after attach): adopt the window from the RMST entry.
            segment = _RegisteredSegment(entry.segment_id, entry.base,
                                         entry.size)
            self._segments[entry.segment_id] = segment
        segment.accesses += 1
        self.stats.demand_accesses += 1
        self.selector.record_access(entry.segment_id, txn.address)

        block = self.cache.lookup(txn.address)
        if block is not None:
            if txn.is_write:
                block.dirty = True
            self.stats.demand_hits += 1
            breakdown = LatencyBreakdown()
            breakdown.add("tgl", self.brick.glue.timings.lookup_latency_s,
                          "dCOMPUBRICK")
            breakdown.add("datamover.cache", self.config.hit_latency_s,
                          "dCOMPUBRICK")
            self._note_demand(breakdown.total_s, txn.size_bytes)
            return MoverAccessResult(
                transaction=txn,
                breakdown=breakdown,
                hit=True,
                fetched_bytes=0,
                remote_brick_id=entry.remote_brick_id,
            )

        # Miss: fetch the enclosing block at the selector's granularity
        # (write-allocate — writes fetch then dirty the block).
        self.stats.demand_misses += 1
        fetch_bytes = self.selector.fetch_bytes(entry.segment_id)
        block_base = self._block_base(txn.address, fetch_bytes, entry)
        if block_base is None:
            fetch_bytes = LINE_BYTES
            block_base = txn.address - txn.address % LINE_BYTES
        self.stats.demand_fill_bytes += fetch_bytes
        path = self.path_resolver(entry.remote_brick_id)
        result = path.access(
            MemoryTransaction.read(block_base, fetch_bytes), now)
        for evicted in self.cache.fill(block_base, fetch_bytes,
                                       dirty=txn.is_write):
            if evicted.dirty:
                self.stats.writeback_latency_s += self._write_back(evicted)
        self._prefetch_after_miss(entry, block_base, fetch_bytes, now)
        self._note_demand(result.breakdown.total_s, txn.size_bytes)
        return MoverAccessResult(
            transaction=txn,
            breakdown=result.breakdown,
            hit=False,
            fetched_bytes=fetch_bytes,
            remote_brick_id=entry.remote_brick_id,
        )

    def _note_demand(self, latency_s: float, size_bytes: int) -> None:
        self.stats.demand_latency_s += latency_s
        self.stats.demand_latencies_s.append(latency_s)
        self.stats.demand_bytes += size_bytes

    @staticmethod
    def _block_base(address: int, fetch_bytes: int, entry) -> Optional[int]:
        """Aligned block base, or ``None`` if it escapes the window."""
        base = address - address % fetch_bytes
        if base < entry.base or base + fetch_bytes > entry.base + entry.size:
            return None
        return base

    def _prefetch_after_miss(self, entry, block_base: int,
                             fetch_bytes: int,
                             now: Optional[float]) -> None:
        """Bring predicted blocks in off the demand path.

        Prefetch fills are charged to the bulk ledgers, not to demand
        latency: they ride the low-priority queue of an ideally
        decoupled link.  The DES traffic model quantifies what that
        costs when the link is contended.
        """
        predictions = self.prefetcher.observe(entry.segment_id, block_base,
                                              fetch_bytes)
        window_end = entry.base + entry.size
        for base in predictions:
            if base % fetch_bytes:
                # A stride learned at line granularity can survive a
                # flip to page mode; page-misaligned predictions are
                # not fetchable blocks.
                continue
            if base < entry.base or base + fetch_bytes > window_end:
                continue
            if self.cache.block_for(base) is not None:
                continue
            path = self.path_resolver(entry.remote_brick_id)
            result = path.access(
                MemoryTransaction.read(base, fetch_bytes), now)
            self.stats.prefetch_latency_s += result.breakdown.total_s
            self.stats.prefetch_fills += 1
            self.stats.prefetch_bytes += fetch_bytes
            for evicted in self.cache.fill(base, fetch_bytes):
                if evicted.dirty:
                    self.stats.writeback_latency_s += self._write_back(
                        evicted)

    def _write_back(self, block: CacheBlock) -> float:
        """Push a dirty block to its dMEMBRICK; returns the latency.

        The backing segment may already be unmapped (flushing races a
        teardown); such blocks are dropped — the prototype has no
        stable storage behind a detached segment.
        """
        entry = self.brick.rmst.lookup_or_none(block.base)
        if entry is None:
            return 0.0
        path = self.path_resolver(entry.remote_brick_id)
        result = path.access(
            MemoryTransaction.write(block.base, block.size))
        self.cache.clean(block)
        self.stats.writebacks += 1
        self.stats.writeback_bytes += block.size
        return result.breakdown.total_s

    def __repr__(self) -> str:
        return (f"DataMover({self.brick.brick_id!r}, "
                f"{self.config.granularity}/{self.config.prefetch}, "
                f"hit ratio {self.stats.hit_ratio:.2f}, "
                f"{len(self._segments)} segments)")
