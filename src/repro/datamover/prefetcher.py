"""Miss-triggered prefetchers feeding the low-priority link queue.

The mover's prefetchers predict the next remote blocks from the demand
miss stream and hand them to the bulk (low-priority) traffic class, so
predicted data crosses the fabric *behind* demand misses — never in
front of them (the DaeMon decoupling property enforced by
:class:`~repro.datamover.scheduler.LinkScheduler`).

Two classic predictors are provided:

* :class:`SequentialPrefetcher` — next-N-blocks, the streaming case.
* :class:`StridePrefetcher` — per-segment stride detection with a
  confidence counter; degenerates to sequential for unit strides and
  stays silent on random streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataMoverError


class NullPrefetcher:
    """Prefetching disabled (the ablation baseline)."""

    def observe(self, segment_id: str, block_base: int,
                block_size: int) -> list[int]:
        return []

    def forget(self, segment_id: str) -> None:
        pass


class SequentialPrefetcher:
    """Predict the next *depth* consecutive blocks after every miss."""

    def __init__(self, depth: int = 4) -> None:
        if depth < 1:
            raise DataMoverError(f"prefetch depth must be >= 1, got {depth}")
        self.depth = depth

    def observe(self, segment_id: str, block_base: int,
                block_size: int) -> list[int]:
        """Block bases predicted from a miss on ``block_base``."""
        return [block_base + i * block_size
                for i in range(1, self.depth + 1)]

    def forget(self, segment_id: str) -> None:
        pass


@dataclass
class _StrideState:
    last_base: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-segment stride detector with a confidence threshold.

    A prediction is only issued once the same inter-miss stride has been
    seen ``confidence_threshold`` times in a row, so a random stream
    never floods the bulk queue with useless traffic.
    """

    def __init__(self, depth: int = 4, confidence_threshold: int = 2) -> None:
        if depth < 1:
            raise DataMoverError(f"prefetch depth must be >= 1, got {depth}")
        if confidence_threshold < 1:
            raise DataMoverError("confidence threshold must be >= 1")
        self.depth = depth
        self.confidence_threshold = confidence_threshold
        self._segments: dict[str, _StrideState] = {}

    def observe(self, segment_id: str, block_base: int,
                block_size: int) -> list[int]:
        """Update the stride state with a miss; return predictions."""
        state = self._segments.get(segment_id)
        if state is None:
            self._segments[segment_id] = _StrideState(last_base=block_base)
            return []
        stride = block_base - state.last_base
        state.last_base = block_base
        if stride == 0:
            return []
        if stride == state.stride:
            state.confidence += 1
        else:
            state.stride = stride
            state.confidence = 1
        if state.confidence < self.confidence_threshold:
            return []
        return [block_base + i * state.stride
                for i in range(1, self.depth + 1)
                if block_base + i * state.stride >= 0]

    def forget(self, segment_id: str) -> None:
        self._segments.pop(segment_id, None)


#: Prefetcher factory keyed by the mover-config name.
PREFETCHERS = {
    "none": NullPrefetcher,
    "sequential": SequentialPrefetcher,
    "stride": StridePrefetcher,
}
