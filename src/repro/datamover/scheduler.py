"""Multi-queue link scheduling on the DES kernel (DaeMon mechanism 1).

DaeMon's first mechanism decouples data movement into multiple link
queues so that latency-critical demand misses are never serialized
behind page-sized prefetch or write-back transfers.
:class:`LinkScheduler` reproduces that arbiter over one fabric link: it
keeps one FIFO per :class:`TransferClass`, serves them in strict
priority order (demand > write-back > prefetch) and models the wire with
the fabric's per-hop budget — serialization at the hop path's
bottleneck bandwidth, delivery after its composed one-way propagation
delay.  Serialization is non-preemptive (a frame on the wire finishes),
but a demand miss always claims the very next serialization slot ahead
of any queued bulk transfer.

``discipline="fifo"`` collapses the queues into arrival order — the
undecoupled baseline the benchmarks contrast against.
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DataMoverError
from repro.fabric.interconnect import HopPath, Interconnect
from repro.memory.path import link_one_way_s
from repro.sim.engine import Event, Simulator
from repro.units import gbps, transfer_time

#: Request/response header bytes accompanying every transfer.
HEADER_BYTES = 16

#: Supported queue disciplines.
DISCIPLINES = ("priority", "fifo")


class TransferClass(enum.Enum):
    """Traffic classes of the decoupled link queues."""

    DEMAND = "demand"
    WRITEBACK = "writeback"
    PREFETCH = "prefetch"


#: Strict service order under the priority discipline.
PRIORITY_ORDER = (TransferClass.DEMAND, TransferClass.WRITEBACK,
                  TransferClass.PREFETCH)


@dataclass
class LinkTransfer:
    """One transfer riding the scheduled link."""

    transfer_id: int
    klass: TransferClass
    size_bytes: int
    enqueued_s: float
    done: Event
    started_s: Optional[float] = None
    delivered_s: Optional[float] = None

    @property
    def wait_s(self) -> float:
        """Time spent queued before serialization began."""
        if self.started_s is None:
            raise DataMoverError(
                f"transfer {self.transfer_id} has not started")
        return self.started_s - self.enqueued_s


@dataclass
class LinkSchedulerStats:
    """Aggregate accounting of one scheduler instance."""

    served: dict[TransferClass, int] = field(
        default_factory=lambda: {klass: 0 for klass in TransferClass})
    bytes_moved: dict[TransferClass, int] = field(
        default_factory=lambda: {klass: 0 for klass in TransferClass})
    total_wait_s: dict[TransferClass, float] = field(
        default_factory=lambda: {klass: 0.0 for klass in TransferClass})
    busy_s: float = 0.0
    #: Pending transfers parked by a link failure (fault injection).
    failed_transfers: int = 0
    #: Parked transfers re-queued after the link repaired.
    requeued_transfers: int = 0

    def mean_wait_s(self, klass: TransferClass) -> float:
        count = self.served[klass]
        return self.total_wait_s[klass] / count if count else 0.0


class LinkScheduler:
    """Priority arbiter over one fabric link's serialization slot."""

    def __init__(self, sim: Simulator,
                 hop_path: Optional[HopPath] = None,
                 link_rate_bps: float = gbps(10),
                 discipline: str = "priority") -> None:
        if discipline not in DISCIPLINES:
            raise DataMoverError(
                f"unknown discipline {discipline!r}; "
                f"known: {', '.join(DISCIPLINES)}")
        if link_rate_bps <= 0:
            raise DataMoverError(
                f"link rate must be positive, got {link_rate_bps}")
        self.sim = sim
        self.hop_path = hop_path or Interconnect().intra_rack_path()
        #: Wire rate: the configured line rate, capped by the slowest
        #: hop of the composed path (the fabric's per-hop model).
        self.link_rate_bps = min(link_rate_bps, self.hop_path.bottleneck_bps)
        #: Flight time plus a transceiver at each end — the same
        #: composition the contention sim and access paths charge.
        self.one_way_s = link_one_way_s(self.hop_path)
        self.discipline = discipline
        self._queues: dict[TransferClass, list[LinkTransfer]] = {
            klass: [] for klass in TransferClass}
        self._ids = itertools.count()
        self._wakeup: Optional[Event] = None
        #: False while the link is failed: queued work parks and the
        #: server idles until :meth:`repair_link`.
        self.link_up = True
        #: Transfers stranded by a link failure, awaiting re-queue.
        self._parked: list[LinkTransfer] = []
        self.stats = LinkSchedulerStats()
        #: Transfers in the order their serialization started.
        self.service_log: list[LinkTransfer] = []
        sim.process(self._server())

    # -- submission ---------------------------------------------------------

    def submit(self, klass: TransferClass,
               size_bytes: int) -> LinkTransfer:
        """Enqueue a transfer; its ``done`` event fires at delivery."""
        if size_bytes < 1:
            raise DataMoverError(
                f"transfer size must be >= 1 byte, got {size_bytes}")
        transfer = LinkTransfer(
            transfer_id=next(self._ids),
            klass=klass,
            size_bytes=size_bytes,
            enqueued_s=self.sim.now,
            done=self.sim.event(),
        )
        if not self.link_up:
            # Down link: the transfer parks and rides the repair
            # re-queue; its ``done`` simply fires late.
            self._parked.append(transfer)
            return transfer
        self._queues[klass].append(transfer)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return transfer

    def queue_depth(self, klass: TransferClass) -> int:
        return len(self._queues[klass])

    # -- link failure -------------------------------------------------------

    @property
    def parked_count(self) -> int:
        """Transfers stranded by the current link failure."""
        return len(self._parked)

    def fail_link(self) -> list[LinkTransfer]:
        """Take the link down (fault injection); returns the transfers
        parked.

        Every queued transfer parks until :meth:`repair_link`; a frame
        already mid-serialization finishes (the wire is non-preemptive)
        and its completion delivers normally.  Parked transfers are
        never dropped — their ``done`` events fire after the repair
        re-queue, so waiting processes observe a stall, not an error.
        """
        if not self.link_up:
            raise DataMoverError("link is already failed")
        self.link_up = False
        stranded: list[LinkTransfer] = []
        for klass in PRIORITY_ORDER:
            stranded.extend(self._queues[klass])
            self._queues[klass].clear()
        stranded.sort(key=lambda t: t.transfer_id)
        self._parked.extend(stranded)
        self.stats.failed_transfers += len(stranded)
        return stranded

    def repair_link(self) -> int:
        """Bring the link back; re-queues parked transfers in original
        submission order and wakes the server.  Returns the count."""
        if self.link_up:
            raise DataMoverError("link is not failed")
        self.link_up = True
        requeued = sorted(self._parked, key=lambda t: t.transfer_id)
        self._parked.clear()
        for transfer in requeued:
            self._queues[transfer.klass].append(transfer)
        self.stats.requeued_transfers += len(requeued)
        if (requeued and self._wakeup is not None
                and not self._wakeup.triggered):
            self._wakeup.succeed()
        return len(requeued)

    # -- arbitration --------------------------------------------------------

    def _pick(self) -> Optional[LinkTransfer]:
        if self.discipline == "priority":
            for klass in PRIORITY_ORDER:
                queue = self._queues[klass]
                if queue:
                    return queue.pop(0)
            return None
        # FIFO: global arrival order across every class.
        heads = [queue[0] for queue in self._queues.values() if queue]
        if not heads:
            return None
        winner = min(heads, key=lambda t: t.transfer_id)
        self._queues[winner.klass].pop(0)
        return winner

    def _server(self):
        while True:
            # A failed link looks like an empty queue: _pick finds
            # nothing (fail_link parked it all) and the server sleeps
            # on _wakeup until the repair re-queue fires it.
            transfer = self._pick()
            if transfer is None:
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None
                continue
            transfer.started_s = self.sim.now
            self.service_log.append(transfer)
            serialization = transfer_time(transfer.size_bytes,
                                          self.link_rate_bps)
            yield self.sim.timeout(serialization)
            # The wire frees once the last bit is on the fibre; the
            # transfer completes one flight time later (pipelining).
            transfer.delivered_s = self.sim.now + self.one_way_s
            transfer.done.succeed(transfer, delay=self.one_way_s)
            stats = self.stats
            stats.served[transfer.klass] += 1
            stats.bytes_moved[transfer.klass] += transfer.size_bytes
            stats.total_wait_s[transfer.klass] += transfer.wait_s
            stats.busy_s += serialization

    # -- invariants ---------------------------------------------------------

    def demand_blocked_by_bulk(self) -> int:
        """Demand transfers that queued while the arbiter *started* a
        bulk transfer — the priority inversion the multi-queue design
        exists to eliminate.

        A bulk frame already mid-serialization when the demand arrives
        does not count (serialization is non-preemptive in any real
        link); choosing to begin a prefetch or write-back while a
        demand waits does.  Always 0 under the priority discipline, by
        construction of :meth:`_pick`.
        """
        # The service log is ordered by start time (a single server), so
        # the bulk start times are a sorted array to bisect against.
        bulk_starts = [t.started_s for t in self.service_log
                       if t.klass is not TransferClass.DEMAND]
        inversions = 0
        for transfer in self.service_log:
            if transfer.klass is not TransferClass.DEMAND:
                continue
            # Strictly after the demand queued (a bulk pick at the
            # exact submission timestamp happened causally first in the
            # same DES timestep) and strictly before it started.
            lo = bisect.bisect_right(bulk_starts, transfer.enqueued_s)
            hi = bisect.bisect_left(bulk_starts, transfer.started_s)
            if hi > lo:
                inversions += 1
        return inversions

    def __repr__(self) -> str:
        served = ", ".join(f"{k.value}:{v}"
                           for k, v in self.stats.served.items())
        return (f"LinkScheduler({self.discipline}, "
                f"{self.link_rate_bps / 1e9:g} Gb/s, {served})")
