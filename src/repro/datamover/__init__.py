"""Remote-memory data-movement subsystem (the DaeMon layer).

Sits between the software stacks and the optical fabric: a per-brick
:class:`~repro.datamover.cache.RemotePageCache`, DaeMon-style
:class:`~repro.datamover.granularity.AdaptiveGranularitySelector`,
miss-triggered prefetchers, and a decoupled multi-queue
:class:`~repro.datamover.scheduler.LinkScheduler` over the fabric's
per-hop budgets — composed by the
:class:`~repro.datamover.mover.DataMover` facade and stress-tested by
:class:`~repro.datamover.traffic.MoverTrafficSim`.
"""

from repro.datamover.cache import (
    LINE_BYTES,
    PAGE_BYTES,
    CacheBlock,
    RemotePageCache,
)
from repro.datamover.granularity import (
    AdaptiveGranularitySelector,
    FetchGranularity,
    FixedGranularitySelector,
    GranularityConfig,
)
from repro.datamover.mover import (
    DataMover,
    DataMoverStats,
    MoverAccessResult,
    MoverConfig,
)
from repro.datamover.prefetcher import (
    NullPrefetcher,
    SequentialPrefetcher,
    StridePrefetcher,
)
from repro.datamover.scheduler import (
    LinkScheduler,
    LinkTransfer,
    TransferClass,
)
from repro.datamover.traffic import MoverTrafficResult, MoverTrafficSim

__all__ = [
    "AdaptiveGranularitySelector",
    "CacheBlock",
    "DataMover",
    "DataMoverStats",
    "FetchGranularity",
    "FixedGranularitySelector",
    "GranularityConfig",
    "LINE_BYTES",
    "LinkScheduler",
    "LinkTransfer",
    "MoverAccessResult",
    "MoverConfig",
    "MoverTrafficResult",
    "MoverTrafficSim",
    "NullPrefetcher",
    "PAGE_BYTES",
    "RemotePageCache",
    "SequentialPrefetcher",
    "StridePrefetcher",
    "TransferClass",
]
