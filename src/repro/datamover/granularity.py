"""Adaptive fetch-granularity selection (DaeMon mechanism 2).

DaeMon's second mechanism selects the data-movement granularity — cache
line or page — *per region, at runtime*, from observed spatial locality:
dense regions amortize the link round trip over a whole page, sparse
regions avoid moving 4 KiB to use 64 B.
:class:`AdaptiveGranularitySelector` reproduces that decision logic per
remote segment: it tracks how many distinct lines of each recently
touched page are actually referenced and switches the segment between
:attr:`FetchGranularity.LINE` and :attr:`FetchGranularity.PAGE` with
hysteresis, so the mover fetches pages only while locality pays for
them.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.datamover.cache import LINE_BYTES, PAGE_BYTES
from repro.errors import DataMoverError


class FetchGranularity(enum.Enum):
    """Fetch size the mover uses for a segment's misses."""

    LINE = LINE_BYTES
    PAGE = PAGE_BYTES

    @property
    def bytes(self) -> int:
        return self.value


@dataclass(frozen=True)
class GranularityConfig:
    """Tuning knobs of the locality tracker.

    Attributes:
        window_pages: Recently touched pages tracked per segment.
        promote_lines: Mean distinct lines per tracked page at (or
            above) which fetches switch to page granularity.
        demote_lines: Mean at (or below) which they fall back to lines.
        min_accesses: Accesses observed before any switch (warm-up).
    """

    window_pages: int = 16
    promote_lines: float = 8.0
    demote_lines: float = 2.0
    min_accesses: int = 16

    def __post_init__(self) -> None:
        if self.window_pages < 1:
            raise DataMoverError("need to track at least one page")
        if not 0 < self.demote_lines < self.promote_lines:
            raise DataMoverError(
                "thresholds must satisfy 0 < demote < promote "
                f"(got demote={self.demote_lines}, "
                f"promote={self.promote_lines})")
        if self.min_accesses < 1:
            raise DataMoverError("min_accesses must be >= 1")


@dataclass
class _SegmentLocality:
    """Per-segment tracking state."""

    mode: FetchGranularity
    #: page number -> distinct line indices touched, recency-ordered.
    pages: "OrderedDict[int, set[int]]" = field(default_factory=OrderedDict)
    accesses: int = 0
    flips: int = 0


class AdaptiveGranularitySelector:
    """Per-segment line/page fetch decision from spatial locality."""

    def __init__(self, config: GranularityConfig | None = None,
                 initial: FetchGranularity = FetchGranularity.LINE) -> None:
        self.config = config or GranularityConfig()
        self.initial = initial
        self._segments: dict[str, _SegmentLocality] = {}

    def _state(self, segment_id: str) -> _SegmentLocality:
        state = self._segments.get(segment_id)
        if state is None:
            state = _SegmentLocality(mode=self.initial)
            self._segments[segment_id] = state
        return state

    # -- observation --------------------------------------------------------

    def record_access(self, segment_id: str, address: int) -> None:
        """Note one access; may flip the segment's fetch granularity."""
        if address < 0:
            raise DataMoverError(f"address must be >= 0, got {address:#x}")
        state = self._state(segment_id)
        state.accesses += 1
        page = address // PAGE_BYTES
        line = (address % PAGE_BYTES) // LINE_BYTES
        lines = state.pages.get(page)
        if lines is None:
            lines = set()
            state.pages[page] = lines
            while len(state.pages) > self.config.window_pages:
                state.pages.popitem(last=False)
        else:
            state.pages.move_to_end(page)
        lines.add(line)
        self._evaluate(state)

    def _evaluate(self, state: _SegmentLocality) -> None:
        if state.accesses < self.config.min_accesses or not state.pages:
            return
        mean_lines = (sum(len(lines) for lines in state.pages.values())
                      / len(state.pages))
        if (state.mode is FetchGranularity.LINE
                and mean_lines >= self.config.promote_lines):
            state.mode = FetchGranularity.PAGE
            state.flips += 1
        elif (state.mode is FetchGranularity.PAGE
                and mean_lines <= self.config.demote_lines):
            state.mode = FetchGranularity.LINE
            state.flips += 1

    # -- decisions ----------------------------------------------------------

    def mode(self, segment_id: str) -> FetchGranularity:
        """The segment's current fetch granularity."""
        return self._state(segment_id).mode

    def fetch_bytes(self, segment_id: str) -> int:
        """Fetch size for the segment's next miss, in bytes."""
        return self.mode(segment_id).bytes

    def flips(self, segment_id: str) -> int:
        """How many times the segment has switched granularity."""
        return self._state(segment_id).flips

    def forget(self, segment_id: str) -> None:
        """Drop all tracking state for a detached segment."""
        self._segments.pop(segment_id, None)


class FixedGranularitySelector:
    """Degenerate selector pinning every segment to one granularity.

    The ablation baseline: DaeMon's adaptive decision contrasted with
    always-line and always-page policies.
    """

    def __init__(self, granularity: FetchGranularity) -> None:
        self.granularity = granularity

    def record_access(self, segment_id: str, address: int) -> None:
        pass

    def mode(self, segment_id: str) -> FetchGranularity:
        return self.granularity

    def fetch_bytes(self, segment_id: str) -> int:
        return self.granularity.bytes

    def flips(self, segment_id: str) -> int:
        return 0

    def forget(self, segment_id: str) -> None:
        pass
