"""Per-compute-brick cache of remote-memory blocks.

dReDBox pays the full optical round trip on every remote transaction
(Fig. 8: propagation and transceiver blocks dominate).  DaeMon
(Giannoula et al., 2023) shows that a small compute-side cache in front
of the link removes that round trip for re-referenced data.
:class:`RemotePageCache` reproduces DaeMon's *data caching on the
compute side* mechanism: it holds recently fetched remote blocks — at
cache-line or page granularity, mixed freely — and short-circuits the
circuit/packet access paths on a hit.

Blocks are keyed by ``(aligned base address, size)`` so a line block and
the page block covering it never collide; filling a page absorbs any
line blocks it covers (their dirty bits are inherited).  Two eviction
policies are provided: exact LRU and the CLOCK second-chance
approximation real TGL hardware would implement.  Dirty blocks are
returned to the caller on eviction and invalidation so the
:class:`~repro.datamover.mover.DataMover` can schedule write-backs on
the low-priority queue.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import DataMoverError
from repro.memory.transactions import CACHE_LINE_BYTES
from repro.units import kib

#: Fetch granularities the data mover works in (DaeMon's two levels).
LINE_BYTES = CACHE_LINE_BYTES
PAGE_BYTES = 4096

#: Default cache capacity: a modest on-brick SRAM/DRAM slice.
DEFAULT_CACHE_CAPACITY = kib(256)

#: Supported eviction policies.
EVICTION_POLICIES = ("lru", "clock")


@dataclass
class CacheBlock:
    """One cached remote block.

    Attributes:
        base: Local physical address of the block (aligned to ``size``).
        size: Block length — :data:`LINE_BYTES` or :data:`PAGE_BYTES`.
        dirty: True when the block holds writes not yet on the dMEMBRICK.
        referenced: CLOCK second-chance bit.
    """

    base: int
    size: int
    dirty: bool = False
    referenced: bool = True

    @property
    def end(self) -> int:
        return self.base + self.size

    def covers(self, address: int) -> bool:
        return self.base <= address < self.end


class RemotePageCache:
    """Compute-side cache of remote blocks with dirty write-back."""

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_CAPACITY,
                 policy: str = "lru") -> None:
        if capacity_bytes < PAGE_BYTES:
            raise DataMoverError(
                f"cache capacity must hold at least one page "
                f"({PAGE_BYTES} bytes), got {capacity_bytes}")
        if policy not in EVICTION_POLICIES:
            raise DataMoverError(
                f"unknown eviction policy {policy!r}; "
                f"known: {', '.join(EVICTION_POLICIES)}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        #: (base, size) -> block, in insertion/recency order.
        self._blocks: "OrderedDict[tuple[int, int], CacheBlock]" = OrderedDict()
        self._occupancy = 0
        self._hand = 0  # CLOCK hand (index into the key order)
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # -- introspection ------------------------------------------------------

    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def blocks(self) -> list[CacheBlock]:
        return list(self._blocks.values())

    # -- lookup -------------------------------------------------------------

    def block_for(self, address: int) -> CacheBlock | None:
        """The cached block covering *address*, without touching stats."""
        line_key = (address - address % LINE_BYTES, LINE_BYTES)
        page_key = (address - address % PAGE_BYTES, PAGE_BYTES)
        block = self._blocks.get(page_key)
        if block is None:
            block = self._blocks.get(line_key)
        return block

    def lookup(self, address: int) -> CacheBlock | None:
        """Probe the cache for *address*; updates hit/miss accounting."""
        block = self.block_for(address)
        if block is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(block)
        return block

    def _touch(self, block: CacheBlock) -> None:
        block.referenced = True
        if self.policy == "lru":
            self._blocks.move_to_end((block.base, block.size))

    # -- fill / eviction -----------------------------------------------------

    def fill(self, base: int, size: int,
             dirty: bool = False) -> list[CacheBlock]:
        """Install the block ``[base, base+size)``; returns evicted blocks.

        A page fill absorbs line blocks it covers (inheriting their
        dirty bits); filling a block that is already cached just marks
        recency (and dirtiness).  Evicted *dirty* blocks must be written
        back by the caller — the cache only tracks them.
        """
        if size not in (LINE_BYTES, PAGE_BYTES):
            raise DataMoverError(
                f"block size must be {LINE_BYTES} or {PAGE_BYTES}, got {size}")
        if base < 0 or base % size:
            raise DataMoverError(
                f"block base {base:#x} is not {size}-byte aligned")

        existing = self._blocks.get((base, size))
        if existing is None and size == LINE_BYTES:
            page = self._blocks.get((base - base % PAGE_BYTES, PAGE_BYTES))
            if page is not None:
                existing = page  # the covering page already caches the line
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            self._touch(existing)
            return []

        block = CacheBlock(base=base, size=size, dirty=dirty)
        if size == PAGE_BYTES:
            for key in [k for k in self._blocks
                        if k[1] == LINE_BYTES and base <= k[0] < base + size]:
                absorbed = self._blocks.pop(key)
                self._occupancy -= absorbed.size
                block.dirty = block.dirty or absorbed.dirty

        evicted: list[CacheBlock] = []
        while self._occupancy + size > self.capacity_bytes:
            evicted.append(self._evict_one())
        self._blocks[(base, size)] = block
        self._occupancy += size
        self.fills += 1
        return evicted

    def _evict_one(self) -> CacheBlock:
        if not self._blocks:
            raise DataMoverError("cannot evict from an empty cache")
        if self.policy == "lru":
            _key, victim = self._blocks.popitem(last=False)
        else:
            victim = self._clock_victim()
        self._occupancy -= victim.size
        self.evictions += 1
        if victim.dirty:
            self.dirty_evictions += 1
        return victim

    def _clock_victim(self) -> CacheBlock:
        """Sweep the hand, clearing reference bits, until one is clear."""
        keys = list(self._blocks)
        while True:
            self._hand %= len(keys)
            key = keys[self._hand]
            block = self._blocks[key]
            if block.referenced:
                block.referenced = False
                self._hand += 1
                continue
            del self._blocks[key]
            return block

    # -- writes / invalidation ------------------------------------------------

    def mark_dirty(self, address: int) -> bool:
        """Set the dirty bit of the block covering *address* (if cached)."""
        block = self.block_for(address)
        if block is None:
            return False
        block.dirty = True
        self._touch(block)
        return True

    def invalidate_range(self, base: int, size: int) -> list[CacheBlock]:
        """Drop every block overlapping ``[base, base+size)``.

        Returns the dropped blocks; dirty ones still hold unwritten data
        and must be flushed to the dMEMBRICK by the caller.
        """
        if size <= 0:
            raise DataMoverError(f"range size must be positive, got {size}")
        dropped: list[CacheBlock] = []
        for key in [k for k in self._blocks
                    if k[0] < base + size and k[0] + k[1] > base]:
            block = self._blocks.pop(key)
            self._occupancy -= block.size
            dropped.append(block)
        return dropped

    def clean(self, block: CacheBlock) -> None:
        """Clear a block's dirty bit after its write-back completed."""
        block.dirty = False

    def __repr__(self) -> str:
        return (f"RemotePageCache({self.policy}, "
                f"{self._occupancy}/{self.capacity_bytes} B, "
                f"{len(self._blocks)} blocks, hit ratio "
                f"{self.hit_ratio:.2f})")
