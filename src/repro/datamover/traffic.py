"""Timed data-mover traffic simulation on the DES kernel.

The synchronous :class:`~repro.datamover.mover.DataMover` charges
demand misses the unloaded access path and assumes bulk traffic never
steals link time.  :class:`MoverTrafficSim` drops that assumption: it
runs closed-loop clients through a shared
:class:`~repro.datamover.cache.RemotePageCache` whose misses,
prefetches and write-backs all contend for one
:class:`~repro.datamover.scheduler.LinkScheduler` link, so queue
discipline becomes measurable — the DaeMon claim that decoupled
priority queues protect demand tail latency from page-sized bulk
transfers is exactly what ``discipline="priority"`` vs ``"fifo"``
quantifies here.

Clients generate a locality-tunable address stream (sequential walk
with random page jumps); every remote round trip is request header out,
memory service, data back, each direction arbitrated by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.datamover.cache import LINE_BYTES, RemotePageCache
from repro.datamover.granularity import AdaptiveGranularitySelector
from repro.datamover.prefetcher import StridePrefetcher
from repro.datamover.scheduler import (
    HEADER_BYTES,
    LinkScheduler,
    TransferClass,
)
from repro.errors import DataMoverError
from repro.fabric.interconnect import HopPath
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.units import gbps, kib, nanoseconds


@dataclass
class MoverTrafficResult:
    """Outcome of one timed mover-traffic run."""

    discipline: str
    client_count: int
    accesses: int
    hit_ratio: float
    demand_latencies_s: list[float] = field(default_factory=list)
    served: dict[TransferClass, int] = field(default_factory=dict)
    demand_mean_wait_s: float = 0.0
    bulk_mean_wait_s: float = 0.0
    priority_inversions: int = 0
    duration_s: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        if not self.demand_latencies_s:
            return 0.0
        return float(np.mean(self.demand_latencies_s))

    def latency_percentile(self, percentile: float) -> float:
        if not self.demand_latencies_s:
            return 0.0
        return float(np.percentile(self.demand_latencies_s, percentile))


class MoverTrafficSim:
    """Closed-loop clients through cache + prefetcher + link scheduler."""

    def __init__(self, hop_path: Optional[HopPath] = None,
                 link_rate_bps: float = gbps(10),
                 discipline: str = "priority",
                 cache_capacity_bytes: int = kib(512),
                 eviction: str = "lru",
                 prefetch_depth: int = 2,
                 memory_service_s: float = nanoseconds(50),
                 hit_latency_s: float = nanoseconds(80),
                 write_fraction: float = 0.2,
                 seed: int = 2018) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise DataMoverError(
                f"write fraction must be in [0, 1], got {write_fraction}")
        self.hop_path = hop_path
        self.link_rate_bps = link_rate_bps
        self.discipline = discipline
        self.cache_capacity_bytes = cache_capacity_bytes
        self.eviction = eviction
        self.prefetch_depth = prefetch_depth
        self.memory_service_s = memory_service_s
        self.hit_latency_s = hit_latency_s
        self.write_fraction = write_fraction
        self.seed = seed

    # -- workload -----------------------------------------------------------

    def _address_stream(self, client_index: int, accesses: int,
                        locality: float, rng) -> list[int]:
        """Sequential walk with ``1 - locality`` random page jumps.

        Each client owns a disjoint 256-page region (distinct segment
        ids in the shared cache's address space).
        """
        region_base = (client_index + 1) << 32
        region_pages = 256
        address = region_base
        stream: list[int] = []
        for _ in range(accesses):
            stream.append(address)
            if rng.random() < locality:
                address += LINE_BYTES
                if address >= region_base + region_pages * 4096:
                    address = region_base
            else:
                page = int(rng.integers(0, region_pages))
                address = region_base + page * 4096
        return stream

    # -- the run ------------------------------------------------------------

    def run(self, client_count: int = 2, accesses_per_client: int = 2048,
            locality: float = 0.9) -> MoverTrafficResult:
        """Drive the clients to completion; returns latency statistics."""
        if client_count < 1:
            raise DataMoverError("need >= 1 client")
        if accesses_per_client < 1:
            raise DataMoverError("need >= 1 access per client")
        if not 0.0 <= locality <= 1.0:
            raise DataMoverError(
                f"locality must be in [0, 1], got {locality}")

        sim = Simulator()
        scheduler = LinkScheduler(sim, hop_path=self.hop_path,
                                  link_rate_bps=self.link_rate_bps,
                                  discipline=self.discipline)
        cache = RemotePageCache(self.cache_capacity_bytes,
                                policy=self.eviction)
        selector = AdaptiveGranularitySelector()
        prefetcher = StridePrefetcher(depth=self.prefetch_depth)
        rngs = RngRegistry(self.seed)
        result = MoverTrafficResult(
            discipline=self.discipline,
            client_count=client_count,
            accesses=client_count * accesses_per_client,
            hit_ratio=0.0,
        )
        in_flight_prefetch: set[int] = set()

        def round_trip(klass: TransferClass, payload_bytes: int):
            """Request out, memory service, data back — one traffic class."""
            request = scheduler.submit(klass, HEADER_BYTES)
            yield request.done
            yield sim.timeout(self.memory_service_s)
            response = scheduler.submit(klass, payload_bytes + HEADER_BYTES)
            yield response.done

        def write_back(block):
            yield from round_trip(TransferClass.WRITEBACK, block.size)

        def handle_evictions(evicted):
            for block in evicted:
                if block.dirty:
                    sim.process(write_back(block))

        def prefetch(segment_id: str, base: int, size: int):
            in_flight_prefetch.add(base)
            try:
                yield from round_trip(TransferClass.PREFETCH, size)
            finally:
                in_flight_prefetch.discard(base)
            handle_evictions(cache.fill(base, size))

        def issue_prefetches(segment_id: str, block_base: int, size: int):
            for base in prefetcher.observe(segment_id, block_base, size):
                if base % size or base < 0 or base in in_flight_prefetch:
                    # Strides learned at line granularity may predict
                    # page-misaligned bases after a granularity flip.
                    continue
                if cache.block_for(base) is not None:
                    continue
                sim.process(prefetch(segment_id, base, size))

        def client(index: int):
            rng = rngs.stream(f"datamover.client{index}")
            stream = self._address_stream(index, accesses_per_client,
                                          locality, rng)
            segment_id = f"client-{index}"
            for address in stream:
                is_write = rng.random() < self.write_fraction
                selector.record_access(segment_id, address)
                start = sim.now
                block = cache.lookup(address)
                if block is not None:
                    if is_write:
                        block.dirty = True
                    yield sim.timeout(self.hit_latency_s)
                    result.demand_latencies_s.append(sim.now - start)
                    continue
                fetch = selector.fetch_bytes(segment_id)
                base = address - address % fetch
                yield from round_trip(TransferClass.DEMAND, fetch)
                handle_evictions(cache.fill(base, fetch, dirty=is_write))
                result.demand_latencies_s.append(sim.now - start)
                issue_prefetches(segment_id, base, fetch)

        for index in range(client_count):
            sim.process(client(index))
        sim.run()

        result.hit_ratio = cache.hit_ratio
        result.served = dict(scheduler.stats.served)
        result.demand_mean_wait_s = scheduler.stats.mean_wait_s(
            TransferClass.DEMAND)
        bulk_served = (scheduler.stats.served[TransferClass.PREFETCH]
                       + scheduler.stats.served[TransferClass.WRITEBACK])
        bulk_wait = (scheduler.stats.total_wait_s[TransferClass.PREFETCH]
                     + scheduler.stats.total_wait_s[TransferClass.WRITEBACK])
        result.bulk_mean_wait_s = bulk_wait / bulk_served if bulk_served else 0.0
        result.priority_inversions = scheduler.demand_blocked_by_bulk()
        result.duration_s = sim.now
        return result
