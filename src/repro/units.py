"""Unit helpers shared across the library.

The simulation kernel keeps time as a ``float`` number of **seconds** and
capacities as ``int`` **bytes**.  These helpers make call sites read like the
paper ("a 128 MiB hotplug section", "-3.7 dBm launch power", "1 dB per hop")
instead of forcing raw multipliers everywhere.

Optical power is handled in both linear (milliwatt) and logarithmic (dBm)
form; the conversion functions are exact inverses of each other.
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# Time (seconds)
# --------------------------------------------------------------------------

#: One nanosecond, in seconds.
NANOSECOND = 1e-9
#: One microsecond, in seconds.
MICROSECOND = 1e-6
#: One millisecond, in seconds.
MILLISECOND = 1e-3
#: One second.
SECOND = 1.0
#: One minute, in seconds.
MINUTE = 60.0
#: One hour, in seconds.
HOUR = 3600.0


def nanoseconds(value: float) -> float:
    """Return *value* nanoseconds expressed in seconds."""
    return value * NANOSECOND


def microseconds(value: float) -> float:
    """Return *value* microseconds expressed in seconds."""
    return value * MICROSECOND


def milliseconds(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return value * MILLISECOND


def to_nanoseconds(seconds: float) -> float:
    """Express *seconds* in nanoseconds."""
    return seconds / NANOSECOND


def to_microseconds(seconds: float) -> float:
    """Express *seconds* in microseconds."""
    return seconds / MICROSECOND


def to_milliseconds(seconds: float) -> float:
    """Express *seconds* in milliseconds."""
    return seconds / MILLISECOND


# --------------------------------------------------------------------------
# Capacity (bytes)
# --------------------------------------------------------------------------

#: One kibibyte in bytes.
KIB = 1024
#: One mebibyte in bytes.
MIB = 1024 * KIB
#: One gibibyte in bytes.
GIB = 1024 * MIB
#: One tebibyte in bytes.
TIB = 1024 * GIB


def kib(value: float) -> int:
    """Return *value* KiB as an integer byte count."""
    return int(value * KIB)


def mib(value: float) -> int:
    """Return *value* MiB as an integer byte count."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Return *value* GiB as an integer byte count."""
    return int(value * GIB)


def to_gib(num_bytes: int) -> float:
    """Express a byte count in GiB."""
    return num_bytes / GIB


def to_mib(num_bytes: int) -> float:
    """Express a byte count in MiB."""
    return num_bytes / MIB


# --------------------------------------------------------------------------
# Data rate (bits per second)
# --------------------------------------------------------------------------

#: One gigabit per second, in bits per second.
GBPS = 1e9


def gbps(value: float) -> float:
    """Return *value* Gb/s expressed in bits per second."""
    return value * GBPS


def transfer_time(num_bytes: int, rate_bps: float) -> float:
    """Serialization time in seconds for *num_bytes* at *rate_bps*.

    Raises :class:`ValueError` for a non-positive rate.
    """
    if rate_bps <= 0:
        raise ValueError(f"data rate must be positive, got {rate_bps}")
    return (num_bytes * 8) / rate_bps


# --------------------------------------------------------------------------
# Optical power (dBm <-> mW) and attenuation (dB)
# --------------------------------------------------------------------------


def dbm_to_mw(power_dbm: float) -> float:
    """Convert optical power from dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert optical power from milliwatts to dBm.

    Raises :class:`ValueError` for non-positive linear power, which has no
    logarithmic representation.
    """
    if power_mw <= 0:
        raise ValueError(f"linear power must be positive, got {power_mw} mW")
    return 10.0 * math.log10(power_mw)


def apply_loss_db(power_dbm: float, loss_db: float) -> float:
    """Attenuate a dBm power figure by *loss_db* decibels."""
    return power_dbm - loss_db


def db_ratio(value: float) -> float:
    """Convert a dB figure to a linear power ratio."""
    return 10.0 ** (value / 10.0)


def ratio_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


# --------------------------------------------------------------------------
# Physical constants
# --------------------------------------------------------------------------

#: Speed of light in vacuum, metres per second.
SPEED_OF_LIGHT_VACUUM = 299_792_458.0

#: Group index of standard single-mode fibre at 1310 nm.
FIBRE_GROUP_INDEX = 1.4677

#: Propagation speed of light in standard single-mode fibre (m/s).
FIBRE_LIGHT_SPEED = SPEED_OF_LIGHT_VACUUM / FIBRE_GROUP_INDEX


def fibre_propagation_delay(length_m: float) -> float:
    """One-way propagation delay in seconds over *length_m* metres of fibre."""
    if length_m < 0:
        raise ValueError(f"fibre length must be non-negative, got {length_m}")
    return length_m / FIBRE_LIGHT_SPEED
