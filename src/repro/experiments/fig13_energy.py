"""Figure 13: estimated power consumption, normalized to conventional.

"The opportunity to power down resources may translate into almost 50%
energy savings depending on the workload.  Such levels of power savings
can be achieved when the VM workloads have diverse and unbalanced
resource requirements."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.figures import render_grouped_bars
from repro.analysis.tables import render_table
from repro.tco.energy import PowerModel
from repro.tco.study import TcoResult, TcoStudy


@dataclass
class Fig13Result:
    """Normalized power per workload configuration."""

    results: list[TcoResult] = field(default_factory=list)

    @property
    def best_savings(self) -> float:
        """Largest fractional energy saving across workloads."""
        return max(r.energy_savings for r in self.results)

    def savings_for(self, config_name: str) -> float:
        for result in self.results:
            if result.config_name == config_name:
                return result.energy_savings
        raise KeyError(f"no result for {config_name!r}")

    def rows(self) -> list[tuple]:
        return [
            (r.config_name,
             round(r.conventional_power_w / 1000.0, 2),
             round(r.disaggregated_power_w / 1000.0, 2),
             f"{r.normalized_power:.1%}",
             f"{r.energy_savings:.1%}")
            for r in self.results
        ]

    def render(self) -> str:
        table = render_table(
            ["workload", "conventional (kW)", "dReDBox (kW)",
             "normalized power", "savings"],
            self.rows(),
            title="Fig. 13: estimated power consumption, normalized to a "
                  "conventional datacenter")
        chart = render_grouped_bars(
            [r.config_name for r in self.results],
            {
                "conventional": [1.0 for _ in self.results],
                "dReDBox": [r.normalized_power for r in self.results],
            },
            title="Power normalized to conventional (1.0 = parity)")
        headline = (f"best energy saving: {self.best_savings:.0%} "
                    f"(paper: almost 50% on unbalanced workloads)")
        return table + "\n" + chart + "\n" + headline


def run_fig13(node_count: int = 64, demand_fraction: float = 0.85,
              power_model: PowerModel | None = None,
              seed: int = 2018) -> Fig13Result:
    """Run the §VI energy study across every Table I configuration."""
    study = TcoStudy(node_count=node_count,
                     demand_fraction=demand_fraction,
                     power_model=power_model, seed=seed)
    return Fig13Result(results=study.run_all())
