"""Figure 8: round-trip remote-memory latency breakdown (packet path).

"Figure 8 shows a preliminary break down of (hardware-level) measured
remote memory round-trip access latency using this exploratory
[packet-switched] approach.  These latency results refer to
contributions of the on-brick switch and the MAC/PHY blocks on both the
dMEMBRICK and the dCOMPUBRICK, as well as the optical path propagation
delay."

The driver builds the full packet data path, issues a cache-line read,
and reports every block's contribution, grouped as in the figure.  It
also quantifies the FEC penalty (the paper's reason for requiring
FEC-free interfaces) and the circuit-switched path as the mainline
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import render_table
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.rmst import SegmentEntry
from repro.memory.path import (
    CircuitAccessPath,
    PacketAccessPath,
    PacketPathBlocks,
)
from repro.memory.transactions import MemoryTransaction
from repro.network.optical.topology import OpticalFabric
from repro.units import gib


@dataclass
class Fig8Result:
    """Per-block latency rows plus headline totals (nanoseconds)."""

    #: ``(group, block, ns)`` in path order — the figure's segments.
    breakdown_rows: list[tuple[str, str, float]] = field(default_factory=list)
    #: Aggregated ns per block name (summing request+response traversals).
    by_block: dict[str, float] = field(default_factory=dict)
    #: Aggregated ns per brick/path group.
    by_group: dict[str, float] = field(default_factory=dict)
    packet_total_ns: float = 0.0
    packet_fec_total_ns: float = 0.0
    circuit_total_ns: float = 0.0

    @property
    def fec_penalty_ns(self) -> float:
        """Round-trip latency FEC would add (>100 ns per direction)."""
        return self.packet_fec_total_ns - self.packet_total_ns

    def rows(self) -> list[tuple]:
        return [(group, name, round(ns, 1))
                for group, name, ns in self.breakdown_rows]

    def render(self) -> str:
        table = render_table(
            ["group", "block", "latency (ns)"], self.rows(),
            title="Fig. 8: round-trip remote-memory latency breakdown "
                  "(packet-switched path, 64 B read)")
        groups = render_table(
            ["group", "total (ns)", "share"],
            [(g, round(ns, 1), f"{ns / self.packet_total_ns:.1%}")
             for g, ns in self.by_group.items()],
            title="Per-group totals")
        summary = (
            f"packet-path round trip: {self.packet_total_ns:.0f} ns\n"
            f"with FEC enabled:       {self.packet_fec_total_ns:.0f} ns "
            f"(+{self.fec_penalty_ns:.0f} ns, why dReDBox requires "
            f"FEC-free links)\n"
            f"circuit-path reference: {self.circuit_total_ns:.0f} ns")
        return table + "\n" + groups + "\n" + summary


def run_fig8(transaction_bytes: int = 64, seed: int = 2018) -> Fig8Result:
    """Build the two data paths and break down one read's round trip.

    *seed* is accepted for runner-interface uniformity; the latency
    breakdown is fully deterministic.
    """
    compute = ComputeBrick("fig8.cb")
    memory = MemoryBrick("fig8.mb")
    fabric = OpticalFabric()
    fabric.attach_brick(compute)
    fabric.attach_brick(memory)
    circuit = fabric.connect(compute, memory)

    segment = SegmentEntry(
        segment_id="fig8-seg",
        base=compute.local_memory_bytes,
        size=gib(1),
        remote_brick_id=memory.brick_id,
        remote_offset=0,
        egress_port_id=circuit.port_toward(compute).port_id,
    )
    compute.rmst.install(segment)
    txn = MemoryTransaction.read(compute.local_memory_bytes,
                                 transaction_bytes)

    packet_path = PacketAccessPath(compute, memory)
    packet_path.ensure_routes()
    packet_result = packet_path.access(txn)

    fec_path = PacketAccessPath(
        compute, memory,
        compute_blocks=PacketPathBlocks.for_brick(
            compute.brick_id, fec_enabled=True),
        memory_blocks=PacketPathBlocks.for_brick(
            memory.brick_id, fec_enabled=True))
    fec_path.ensure_routes()
    fec_result = fec_path.access(txn)

    circuit_path = CircuitAccessPath(compute, memory, circuit)
    circuit_result = circuit_path.access(txn)

    breakdown = packet_result.breakdown
    return Fig8Result(
        breakdown_rows=breakdown.rows(),
        by_block={name: seconds * 1e9
                  for name, seconds in breakdown.by_name().items()},
        by_group={group: seconds * 1e9
                  for group, seconds in breakdown.by_group().items()},
        packet_total_ns=breakdown.total_ns,
        packet_fec_total_ns=fec_result.breakdown.total_ns,
        circuit_total_ns=circuit_result.breakdown.total_ns,
    )
