"""Admission availability and p99 during a full-pod rolling drain.

The availability sweep measures unplanned failures; this driver
measures the dominant *planned* availability consumer — rolling
maintenance — and its interaction with correlated failures.  The same
multi-tenant Poisson traffic as the availability sweep (identical
trace, identical skewed home-pod distribution) runs three times:

* **baseline** — no drain, no faults: the availability reference;
* **drain** — a :class:`~repro.maintenance.supervisor.
  MaintenanceSupervisor` rolls the hot pod out of service mid-trace
  (rack by rack, verified delta migration); the placer spills new
  arrivals to the surviving pods, so the headline is **zero admission
  unavailability**: the admitted fraction holds >= 99.9 % of the
  baseline cell's, with bounded p99 inflation;
* **drain+faults** — the same drain while correlated rack power
  domains (:func:`~repro.faults.domains.rack_power_domains`) fail on
  their own MTBF clock *and* a scripted domain outage lands inside
  the drain scope mid-drain: the fence aborts the drain, in-flight
  moves roll back, and the conservation check (allocated bytes ==
  live segments, no leaked holds or claims) still passes.

Every cell is deterministic per seed: the drain schedule is fixed,
domain draws come from dedicated ``faults.domain.*`` RNG streams, and
the conservation audit runs after the clock drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.cluster.trace import poisson_trace
from repro.errors import ConfigurationError
from repro.experiments.availability import (
    ARRIVAL_RATE_HZ,
    POD_COUNT,
    SPILL_POLICY,
    TENANT_COUNT,
)
from repro.experiments.federation import (
    HOT_POD_SHARE,
    MEAN_LIFETIME_S,
    TENANT_RAM_BYTES,
    TENANT_VCPUS,
    _home_of,
)
from repro.faults import FaultInjector
from repro.faults.domains import (
    Hazard,
    coerce_hazard,
    pod_network_domains,
    rack_power_domains,
)
from repro.federation.controller import build_federation
from repro.maintenance import DrainReport, MaintenanceSupervisor
from repro.units import to_milliseconds

#: The pod the rolling drain retires: the hot pod (HOT_POD_SHARE of
#: tenants call it home), the hardest case for zero-downtime claims.
DRAIN_POD = "pod0"

#: When the drain starts — mid-ramp, with the hot pod well populated.
DRAIN_AT_S = 4.0

#: The scripted correlated outage of the drain+faults cell: the drain
#: pod's first rack's power domain trips this long after the drain
#: starts (mid-evacuation), and stays down this long.
OUTAGE_AFTER_S = 0.2
OUTAGE_DURATION_S = 5.0

#: Background correlated-failure schedule of the drain+faults cell.
DOMAIN_MTBF_S = 60.0
DOMAIN_MTTR_S = 4.0

#: The headline floor: the drain cell's admitted fraction must hold at
#: least this share of the baseline cell's.
AVAILABILITY_FLOOR = 0.999


@dataclass
class MaintenanceCell:
    """Measurements of one (drain schedule, fault schedule) run."""

    label: str
    drained: bool
    faults_enabled: bool
    admitted: int
    rejected: int
    spills: int
    p50_boot_ms: float
    p99_boot_ms: float
    duration_s: float
    drain_committed: bool = False
    drain_aborted: bool = False
    abort_reason: str = ""
    segments_moved: int = 0
    bytes_moved: int = 0
    tenants_migrated: int = 0
    rollback_moves: int = 0
    verify_failures: int = 0
    racks_retired: int = 0
    drain_duration_s: float = 0.0
    fault_count: int = 0
    domain_outages: int = 0
    conserved: bool = True

    @property
    def admitted_fraction(self) -> float:
        total = self.admitted + self.rejected
        return self.admitted / total if total else 0.0


@dataclass
class MaintenanceResult:
    """The three-cell drain study."""

    tenant_count: int
    arrival_rate_hz: float
    drain_pod: str
    cells: list[MaintenanceCell] = field(default_factory=list)

    def cell(self, label: str) -> MaintenanceCell:
        for candidate in self.cells:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no cell {label!r}")

    def availability_ratio(self, label: str) -> float:
        """*label*'s admitted fraction over the baseline's."""
        base = self.cell("baseline").admitted_fraction
        if base == 0.0:
            return 1.0
        return self.cell(label).admitted_fraction / base

    def p99_inflation(self, label: str) -> float:
        """*label*'s p99 admission latency over the baseline's."""
        base = self.cell("baseline").p99_boot_ms
        if base == 0.0:
            return 1.0
        return self.cell(label).p99_boot_ms / base

    def rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            if not cell.drained:
                drain = "-"
            elif cell.drain_committed:
                drain = f"committed/{cell.racks_retired}r"
            elif cell.drain_aborted:
                drain = "rolled back"
            else:
                drain = "incomplete"
            rows.append((
                cell.label,
                cell.admitted,
                cell.rejected,
                f"{cell.admitted_fraction:.1%}",
                f"{cell.p99_boot_ms:.1f}",
                drain,
                cell.tenants_migrated,
                cell.segments_moved,
                cell.rollback_moves,
                cell.fault_count,
                "yes" if cell.conserved else "NO",
            ))
        return rows

    def render(self) -> str:
        table = render_table(
            ["cell", "ok", "rej", "admit", "p99 (ms)", "drain",
             "migr", "segs", "rolled", "faults", "conserved"],
            self.rows(),
            title=f"Rolling maintenance: full drain of {self.drain_pod} "
                  f"({self.tenant_count} tenants at "
                  f"{self.arrival_rate_hz:g}/s over {POD_COUNT} pods, "
                  f"drain at t={DRAIN_AT_S:g}s)")
        lines = [table]
        try:
            drain = self.cell("drain")
        except KeyError:
            drain = None
        if drain is not None and drain.drained:
            ratio = self.availability_ratio("drain")
            lines.append(
                f"drain vs baseline: admission availability "
                f"{ratio:.2%} of no-drain"
                + (f" (>= {AVAILABILITY_FLOOR:.1%} floor)"
                   if ratio >= AVAILABILITY_FLOOR else
                   f" (BELOW the {AVAILABILITY_FLOOR:.1%} floor)")
                + f", p99 {self.p99_inflation('drain'):.2f}x, "
                f"{drain.tenants_migrated} tenants and "
                f"{drain.segments_moved} segments moved in "
                f"{drain.drain_duration_s:.1f}s")
        try:
            faulted = self.cell("drain+faults")
        except KeyError:
            faulted = None
        if faulted is not None:
            verdict = ("rolled back cleanly" if faulted.drain_aborted
                       else "committed despite faults"
                       if faulted.drain_committed else "incomplete")
            lines.append(
                f"drain+faults: {faulted.fault_count} fault(s) across "
                f"{faulted.domain_outages} correlated domain outage(s); "
                f"drain {verdict} ({faulted.rollback_moves} moves "
                f"unwound); conservation "
                f"{'holds' if faulted.conserved else 'VIOLATED'}")
        lines.append(
            "(a draining pod leaves the admission pool but keeps "
            "serving; the placer spills newcomers to its peers, so "
            "planned maintenance consumes zero admission availability)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def _conserved(federation) -> bool:
    """Post-run conservation audit: allocator state matches the live
    segment set everywhere, and no hold or claim leaked."""
    try:
        for pod in federation.pods.values():
            entries = pod.system.sdm.registry.memory_entries
            allocated = sum(e.allocator.allocated_bytes for e in entries)
            live = sum(s.size for s in pod.system.sdm.live_segments)
            if allocated != live:
                return False
            for entry in entries:
                entry.allocator.check_invariants()
            if getattr(pod.system.sdm, "pending_holds", []) != []:
                return False
        return federation.placer.pending_claims == []
    except Exception:
        return False


def _build_domains(federation, domains: str, hazard: Optional[Hazard]):
    if domains == "rack-power":
        return rack_power_domains(federation, mtbf_s=DOMAIN_MTBF_S,
                                  mttr_s=DOMAIN_MTTR_S, hazard=hazard)
    if domains == "pod-network":
        return pod_network_domains(federation, mtbf_s=DOMAIN_MTBF_S,
                                   mttr_s=DOMAIN_MTTR_S, hazard=hazard)
    if domains == "both":
        return (rack_power_domains(federation, mtbf_s=DOMAIN_MTBF_S,
                                   mttr_s=DOMAIN_MTTR_S, hazard=hazard)
                + pod_network_domains(federation, mtbf_s=DOMAIN_MTBF_S,
                                      mttr_s=DOMAIN_MTTR_S,
                                      hazard=hazard))
    raise ConfigurationError(
        f"unknown domain set {domains!r}; known: rack-power, "
        f"pod-network, both")


def _run_cell(label: str, seed: int, *,
              drain_pod: Optional[str] = None,
              faults: bool = False,
              domains: str = "rack-power",
              hazard: Optional[Hazard] = None) -> MaintenanceCell:
    federation = build_federation(POD_COUNT, spill_policy=SPILL_POLICY)
    supervisor = MaintenanceSupervisor(federation)
    injector: Optional[FaultInjector] = None
    if faults:
        injector = FaultInjector(
            federation, classes=(), seed=seed, self_heal=True,
            domains=_build_domains(federation, domains, hazard),
        ).install()
        supervisor.install_fence(injector)

    report_box: dict[str, DrainReport] = {}
    if drain_pod is not None:
        def drain_proc():
            yield federation.sim.timeout(DRAIN_AT_S)
            report_box["report"] = yield from (
                supervisor.drain_pod_process(drain_pod))
        federation.sim.process(drain_proc())
        if injector is not None:
            # The guaranteed in-scope outage: the drain pod's first
            # rack's power domain trips while that rack evacuates.
            registry = federation.pods[drain_pod].system.sdm.registry
            first_rack = min(e.rack_id
                             for e in registry.memory_entries)

            def outage_proc():
                yield federation.sim.timeout(DRAIN_AT_S + OUTAGE_AFTER_S)
                injector.fire_domain(
                    f"power.{drain_pod}.{first_rack}",
                    repair_after_s=OUTAGE_DURATION_S, scripted=True)
            federation.sim.process(outage_proc())

    trace = poisson_trace(
        TENANT_COUNT, ARRIVAL_RATE_HZ, vcpus=TENANT_VCPUS,
        ram_bytes=TENANT_RAM_BYTES, mean_lifetime_s=MEAN_LIFETIME_S,
        scale_fraction=0.0, seed=seed, name=f"fed-a{ARRIVAL_RATE_HZ:g}")
    stats = federation.serve_trace(
        trace, home_of=_home_of(sorted(federation.pods), HOT_POD_SHARE))
    # Let the drain, repairs and domain clears finish on the same
    # clock (the MTBF loops exit at their next wake-up once stopped).
    if injector is not None:
        injector.stop()
    federation.sim.run()

    report = report_box.get("report")
    cell = MaintenanceCell(
        label=label,
        drained=drain_pod is not None,
        faults_enabled=faults,
        admitted=stats.boots_admitted,
        rejected=stats.boots_rejected,
        spills=stats.spills,
        p50_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(50)),
        p99_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(99)),
        duration_s=stats.duration_s,
        conserved=_conserved(federation),
    )
    if report is not None:
        cell.drain_committed = report.committed
        cell.drain_aborted = report.aborted
        cell.abort_reason = report.abort_reason
        cell.segments_moved = report.segments_moved
        cell.bytes_moved = report.bytes_moved
        cell.tenants_migrated = report.tenants_migrated
        cell.rollback_moves = report.rollback_moves
        cell.verify_failures = report.verify_failures
        cell.racks_retired = len(report.racks_retired)
        cell.drain_duration_s = report.duration_s
    if injector is not None:
        cell.fault_count = injector.metrics.fault_count()
        cell.domain_outages = injector.domain_outages_fired
    return cell


def run_maintenance(seed: int = 2018,
                    drain: Optional[str] = None,
                    hazard: Optional[str] = None,
                    domains: Optional[str] = None,
                    workers: Optional[int] = None,
                    sync_window: Optional[float] = None
                    ) -> MaintenanceResult:
    """Baseline vs drain vs drain-under-correlated-faults.

    *drain* (the CLI ``--drain`` flag) names the pod to drain (default
    ``pod0``, the hot pod); *hazard* (``--hazard``,
    ``weibull:<scale>:<shape>`` or ``exponential:<mean>``) overrides
    the background domains' inter-arrival distribution; *domains*
    (``--domains``: ``rack-power``, ``pod-network`` or ``both``) picks
    which correlated domain set fails in the drain+faults cell.
    """
    if workers is not None or sync_window is not None:
        raise ConfigurationError(
            "the maintenance study only runs on the serial federation "
            "backend: the drain supervisor and domain faults reach "
            "into pod internals that are process-local under "
            "--workers; drop --workers/--sync-window here")
    drain_pod = drain if drain is not None else DRAIN_POD
    if not drain_pod.startswith("pod"):
        raise ConfigurationError(
            f"--drain must name a pod (pod0..pod{POD_COUNT - 1}), "
            f"got {drain_pod!r}")
    domain_set = domains if domains is not None else "rack-power"
    hazard_fn = coerce_hazard(hazard) if hazard is not None else None
    result = MaintenanceResult(
        tenant_count=TENANT_COUNT,
        arrival_rate_hz=ARRIVAL_RATE_HZ,
        drain_pod=drain_pod,
    )
    result.cells.append(_run_cell("baseline", seed))
    result.cells.append(_run_cell("drain", seed, drain_pod=drain_pod))
    result.cells.append(_run_cell(
        "drain+faults", seed, drain_pod=drain_pod, faults=True,
        domains=domain_set, hazard=hazard_fn))
    return result
