"""Admission availability and p99 during a full-pod rolling drain.

The availability sweep measures unplanned failures; this driver
measures the dominant *planned* availability consumer — rolling
maintenance — and its interaction with correlated failures.  The same
multi-tenant Poisson traffic as the availability sweep (identical
trace, identical skewed home-pod distribution) runs three times:

* **baseline** — no drain, no faults: the availability reference;
* **drain** — a :class:`~repro.maintenance.supervisor.
  MaintenanceSupervisor` rolls the hot pod out of service mid-trace
  (rack by rack, verified delta migration); the placer spills new
  arrivals to the surviving pods, so the headline is **zero admission
  unavailability**: the admitted fraction holds >= 99.9 % of the
  baseline cell's, with bounded p99 inflation;
* **drain+faults** — the same drain while correlated rack power
  domains (:func:`~repro.faults.domains.rack_power_domains`) fail on
  their own MTBF clock *and* a scripted domain outage lands inside
  the drain scope mid-drain: the fence aborts the drain, in-flight
  moves roll back, and the conservation check (allocated bytes ==
  live segments, no leaked holds or claims) still passes.

Every cell is deterministic per seed: the drain schedule is fixed,
domain draws come from dedicated ``faults.domain.*`` RNG streams, and
the conservation audit runs after the clock drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.cluster.trace import poisson_trace
from repro.errors import ConfigurationError
from repro.experiments.availability import (
    ARRIVAL_RATE_HZ,
    POD_COUNT,
    TENANT_COUNT,
)
from repro.experiments.federation import (
    HOT_POD_SHARE,
    MEAN_LIFETIME_S,
    TENANT_RAM_BYTES,
    TENANT_VCPUS,
    _home_of,
)
from repro.faults import FaultInjector
from repro.faults.domains import Hazard, coerce_hazard
from repro.maintenance import DrainReport
from repro.topology import TopologySpec, compile_spec, load_spec
from repro.units import to_milliseconds

#: The compiled topology of every cell when ``--topology`` is absent.
#: Template ``M`` carries this study's whole shape declaratively: the
#: federation the driver used to hand-build, the rack-power and
#: pod-network domain layers (60 s MTBF / 4 s MTTR), and the rolling
#: drain schedule (``pod0`` — the hot pod, the hardest case for
#: zero-downtime claims — at t=4 s, mid-ramp with the pod well
#: populated).
DEFAULT_TOPOLOGY = "M"

#: Fallback drain schedule when a ``--topology`` spec declares no
#: maintenance windows: drain the hot pod at the template ``M`` time.
DRAIN_POD = "pod0"
DRAIN_AT_S = 4.0

#: The scripted correlated outage of the drain+faults cell: the drain
#: pod's first rack's power domain trips this long after the drain
#: starts (mid-evacuation), and stays down this long.
OUTAGE_AFTER_S = 0.2
OUTAGE_DURATION_S = 5.0

#: Domain-layer choices of the ``--domains`` flag (``both`` = every
#: layer the spec declares).
DOMAIN_SETS = ("rack-power", "pod-network", "both")

#: The headline floor: the drain cell's admitted fraction must hold at
#: least this share of the baseline cell's.
AVAILABILITY_FLOOR = 0.999


@dataclass
class MaintenanceCell:
    """Measurements of one (drain schedule, fault schedule) run."""

    label: str
    drained: bool
    faults_enabled: bool
    admitted: int
    rejected: int
    spills: int
    p50_boot_ms: float
    p99_boot_ms: float
    duration_s: float
    drain_committed: bool = False
    drain_aborted: bool = False
    abort_reason: str = ""
    segments_moved: int = 0
    bytes_moved: int = 0
    tenants_migrated: int = 0
    rollback_moves: int = 0
    verify_failures: int = 0
    racks_retired: int = 0
    drain_duration_s: float = 0.0
    fault_count: int = 0
    domain_outages: int = 0
    conserved: bool = True

    @property
    def admitted_fraction(self) -> float:
        total = self.admitted + self.rejected
        return self.admitted / total if total else 0.0


@dataclass
class MaintenanceResult:
    """The three-cell drain study."""

    tenant_count: int
    arrival_rate_hz: float
    drain_pod: str
    pod_count: int = POD_COUNT
    drain_at_s: float = DRAIN_AT_S
    cells: list[MaintenanceCell] = field(default_factory=list)

    def cell(self, label: str) -> MaintenanceCell:
        for candidate in self.cells:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no cell {label!r}")

    def availability_ratio(self, label: str) -> float:
        """*label*'s admitted fraction over the baseline's."""
        base = self.cell("baseline").admitted_fraction
        if base == 0.0:
            return 1.0
        return self.cell(label).admitted_fraction / base

    def p99_inflation(self, label: str) -> float:
        """*label*'s p99 admission latency over the baseline's."""
        base = self.cell("baseline").p99_boot_ms
        if base == 0.0:
            return 1.0
        return self.cell(label).p99_boot_ms / base

    def rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            if not cell.drained:
                drain = "-"
            elif cell.drain_committed:
                drain = f"committed/{cell.racks_retired}r"
            elif cell.drain_aborted:
                drain = "rolled back"
            else:
                drain = "incomplete"
            rows.append((
                cell.label,
                cell.admitted,
                cell.rejected,
                f"{cell.admitted_fraction:.1%}",
                f"{cell.p99_boot_ms:.1f}",
                drain,
                cell.tenants_migrated,
                cell.segments_moved,
                cell.rollback_moves,
                cell.fault_count,
                "yes" if cell.conserved else "NO",
            ))
        return rows

    def render(self) -> str:
        table = render_table(
            ["cell", "ok", "rej", "admit", "p99 (ms)", "drain",
             "migr", "segs", "rolled", "faults", "conserved"],
            self.rows(),
            title=f"Rolling maintenance: full drain of {self.drain_pod} "
                  f"({self.tenant_count} tenants at "
                  f"{self.arrival_rate_hz:g}/s over {self.pod_count} "
                  f"pods, drain at t={self.drain_at_s:g}s)")
        lines = [table]
        try:
            drain = self.cell("drain")
        except KeyError:
            drain = None
        if drain is not None and drain.drained:
            ratio = self.availability_ratio("drain")
            lines.append(
                f"drain vs baseline: admission availability "
                f"{ratio:.2%} of no-drain"
                + (f" (>= {AVAILABILITY_FLOOR:.1%} floor)"
                   if ratio >= AVAILABILITY_FLOOR else
                   f" (BELOW the {AVAILABILITY_FLOOR:.1%} floor)")
                + f", p99 {self.p99_inflation('drain'):.2f}x, "
                f"{drain.tenants_migrated} tenants and "
                f"{drain.segments_moved} segments moved in "
                f"{drain.drain_duration_s:.1f}s")
        try:
            faulted = self.cell("drain+faults")
        except KeyError:
            faulted = None
        if faulted is not None:
            verdict = ("rolled back cleanly" if faulted.drain_aborted
                       else "committed despite faults"
                       if faulted.drain_committed else "incomplete")
            lines.append(
                f"drain+faults: {faulted.fault_count} fault(s) across "
                f"{faulted.domain_outages} correlated domain outage(s); "
                f"drain {verdict} ({faulted.rollback_moves} moves "
                f"unwound); conservation "
                f"{'holds' if faulted.conserved else 'VIOLATED'}")
        lines.append(
            "(a draining pod leaves the admission pool but keeps "
            "serving; the placer spills newcomers to its peers, so "
            "planned maintenance consumes zero admission availability)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def _conserved(federation) -> bool:
    """Post-run conservation audit: allocator state matches the live
    segment set everywhere, and no hold or claim leaked."""
    try:
        for pod in federation.pods.values():
            entries = pod.system.sdm.registry.memory_entries
            allocated = sum(e.allocator.allocated_bytes for e in entries)
            live = sum(s.size for s in pod.system.sdm.live_segments)
            if allocated != live:
                return False
            for entry in entries:
                entry.allocator.check_invariants()
            if getattr(pod.system.sdm, "pending_holds", []) != []:
                return False
        return federation.placer.pending_claims == []
    except Exception:
        return False


def _run_cell(spec: TopologySpec, label: str, seed: int, *,
              drain: bool = False,
              faults: bool = False,
              kinds: Optional[tuple[str, ...]] = ("rack-power",),
              hazard: Optional[Hazard] = None) -> MaintenanceCell:
    topo = compile_spec(spec)
    federation = topo.federation
    supervisor = topo.supervisor()
    injector: Optional[FaultInjector] = None
    if faults:
        injector = FaultInjector(
            federation, classes=(), seed=seed, self_heal=True,
            domains=topo.failure_domains(kinds=kinds, hazard=hazard),
        ).install()
        supervisor.install_fence(injector)

    reports: list[DrainReport] = []
    if drain:
        reports = topo.install_maintenance(supervisor)
        if injector is not None:
            # The guaranteed in-scope outage: the first drained pod's
            # first rack's power domain trips while it evacuates.
            window = topo.maintenance_windows[0]
            registry = federation.pods[window.pod].system.sdm.registry
            first_rack = min(e.rack_id
                             for e in registry.memory_entries)

            def outage_proc():
                yield federation.sim.timeout(
                    window.at_s + OUTAGE_AFTER_S)
                injector.fire_domain(
                    f"power.{window.pod}.{first_rack}",
                    repair_after_s=OUTAGE_DURATION_S, scripted=True)
            federation.sim.process(outage_proc())

    trace = poisson_trace(
        TENANT_COUNT, ARRIVAL_RATE_HZ, vcpus=TENANT_VCPUS,
        ram_bytes=TENANT_RAM_BYTES, mean_lifetime_s=MEAN_LIFETIME_S,
        scale_fraction=0.0, seed=seed, name=f"fed-a{ARRIVAL_RATE_HZ:g}")
    stats = federation.serve_trace(
        trace, home_of=_home_of(sorted(federation.pods), HOT_POD_SHARE))
    # Let the drain, repairs and domain clears finish on the same
    # clock (the MTBF loops exit at their next wake-up once stopped).
    if injector is not None:
        injector.stop()
    federation.sim.run()

    cell = MaintenanceCell(
        label=label,
        drained=drain,
        faults_enabled=faults,
        admitted=stats.boots_admitted,
        rejected=stats.boots_rejected,
        spills=stats.spills,
        p50_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(50)),
        p99_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(99)),
        duration_s=stats.duration_s,
        conserved=_conserved(federation),
    )
    if reports:
        cell.drain_committed = all(r.committed for r in reports)
        cell.drain_aborted = any(r.aborted for r in reports)
        cell.abort_reason = next(
            (r.abort_reason for r in reports if r.aborted), "")
        cell.segments_moved = sum(r.segments_moved for r in reports)
        cell.bytes_moved = sum(r.bytes_moved for r in reports)
        cell.tenants_migrated = sum(r.tenants_migrated for r in reports)
        cell.rollback_moves = sum(r.rollback_moves for r in reports)
        cell.verify_failures = sum(r.verify_failures for r in reports)
        cell.racks_retired = sum(len(r.racks_retired) for r in reports)
        cell.drain_duration_s = sum(r.duration_s for r in reports)
    if injector is not None:
        cell.fault_count = injector.metrics.fault_count()
        cell.domain_outages = injector.domain_outages_fired
    return cell


def run_maintenance(seed: int = 2018,
                    drain: Optional[str] = None,
                    hazard: Optional[str] = None,
                    domains: Optional[str] = None,
                    workers: Optional[int] = None,
                    sync_window: Optional[float] = None,
                    topology: Optional[str] = None
                    ) -> MaintenanceResult:
    """Baseline vs drain vs drain-under-correlated-faults.

    The topology, the correlated domain layers and the rolling-drain
    schedule all come compiled from one spec (*topology*, the CLI
    ``--topology`` flag; default template ``M``).  *drain* (``--drain``)
    overrides the schedule to a single drain of the named pod at the
    spec's first window time; *hazard* (``--hazard``,
    ``weibull:<scale>:<shape>`` or ``exponential:<mean>``) overrides
    the background domains' inter-arrival distribution; *domains*
    (``--domains``: ``rack-power``, ``pod-network`` or ``both``)
    filters which of the spec's domain layers fail in the drain+faults
    cell.
    """
    if workers is not None or sync_window is not None:
        raise ConfigurationError(
            "the maintenance study only runs on the serial federation "
            "backend: the drain supervisor and domain faults reach "
            "into pod internals that are process-local under "
            "--workers; drop --workers/--sync-window here")
    spec = load_spec(topology if topology is not None
                     else DEFAULT_TOPOLOGY)
    domain_set = domains if domains is not None else "rack-power"
    if domain_set not in DOMAIN_SETS:
        raise ConfigurationError(
            f"unknown domain set {domain_set!r}; known: "
            f"{', '.join(DOMAIN_SETS)}")
    kinds = None if domain_set == "both" else (domain_set,)
    hazard_fn = coerce_hazard(hazard) if hazard is not None else None

    # The drain schedule is the spec's; --drain (or a spec with no
    # windows) replaces it with a single drain of the named pod.
    drain_at_s = (spec.maintenance[0].at_s if spec.maintenance
                  else DRAIN_AT_S)
    drain_pod = drain if drain is not None else (
        spec.maintenance[0].pod if spec.maintenance else DRAIN_POD)
    if not drain_pod.startswith("pod"):
        raise ConfigurationError(
            f"--drain must name a pod (pod0..pod{spec.pods - 1}), "
            f"got {drain_pod!r}")
    if drain is not None or not spec.maintenance:
        spec = spec.override(maintenance={"windows": [
            {"pod": drain_pod, "at_s": drain_at_s}]})

    result = MaintenanceResult(
        tenant_count=TENANT_COUNT,
        arrival_rate_hz=ARRIVAL_RATE_HZ,
        drain_pod=drain_pod,
        pod_count=spec.pods,
        drain_at_s=drain_at_s,
    )
    result.cells.append(_run_cell(spec, "baseline", seed))
    result.cells.append(_run_cell(spec, "drain", seed, drain=True))
    result.cells.append(_run_cell(
        spec, "drain+faults", seed, drain=True, faults=True,
        kinds=kinds, hazard=hazard_fn))
    return result
