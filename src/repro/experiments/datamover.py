"""Data-mover sweep: cache, granularity and queue discipline vs. latency.

The paper's Fig. 8 shows propagation and transceiver blocks dominating
every remote transaction; DaeMon's answer is to stop paying them per
access.  This driver quantifies that answer on top of the pod fabric,
for pod sizes 1..8 racks:

* **Granularity policy** — a locality-heavy page walk is driven through
  the uncached :class:`~repro.memory.path.CircuitAccessPath` and then
  through :class:`~repro.datamover.mover.DataMover` instances pinned to
  line, page and adaptive fetch granularity.  Reported: hit ratio,
  mean/p99 demand latency, speedup over uncached, bytes moved.
  Multi-rack cells measure a segment whose circuit crosses the pod
  switch, so the mover is hiding the *worst* interconnect tier.
* **Queue discipline** — the timed
  :class:`~repro.datamover.traffic.MoverTrafficSim` contends demand,
  prefetch and write-back traffic on one scheduled link over the same
  hop path, under the decoupled priority discipline vs. a single FIFO.
  Reported: demand mean/p99 and priority inversions (demand transfers
  served after later-enqueued bulk) — zero, by construction, under the
  priority discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import render_table
from repro.core.builder import PodBuilder
from repro.core.system import DisaggregatedSystem
from repro.datamover.cache import LINE_BYTES, PAGE_BYTES
from repro.datamover.mover import MoverConfig
from repro.datamover.scheduler import TransferClass
from repro.datamover.traffic import MoverTrafficSim
from repro.errors import ReproError
from repro.memory.path import CircuitAccessPath
from repro.memory.transactions import MemoryTransaction
from repro.orchestration.requests import VmAllocationRequest
from repro.units import MIB, gbps, gib, to_nanoseconds

#: Safety valve on the VM packing loop.
MAX_BOOTS = 64

#: Workload shape: a dense page walk (the spatial locality the
#: granularity selector exists to exploit).
WORKLOAD_PAGES = 48
LINES_PER_PAGE = 48

#: Granularity policies contrasted per pod size.
POLICIES = ("line", "page", "adaptive")


@dataclass
class PolicyCell:
    """One granularity policy measured at one pod size."""

    policy: str
    hit_ratio: float
    mean_ns: float
    p99_ns: float
    speedup: float
    moved_mib: float


@dataclass
class DisciplineCell:
    """One queue discipline measured at one pod size."""

    discipline: str
    mean_ns: float
    p99_ns: float
    bulk_served: int
    inversions: int


@dataclass
class DataMoverCell:
    """All measurements of one pod size."""

    rack_count: int
    cross_rack: bool
    uncached_mean_ns: float
    uncached_p99_ns: float
    policies: list[PolicyCell] = field(default_factory=list)
    disciplines: list[DisciplineCell] = field(default_factory=list)

    def policy(self, name: str) -> PolicyCell:
        for cell in self.policies:
            if cell.policy == name:
                return cell
        raise KeyError(f"no policy cell {name!r}")

    def discipline(self, name: str) -> DisciplineCell:
        for cell in self.disciplines:
            if cell.discipline == name:
                return cell
        raise KeyError(f"no discipline cell {name!r}")


@dataclass
class DataMoverResult:
    """The sweep: one cell per pod size."""

    cells: list[DataMoverCell] = field(default_factory=list)

    @property
    def rack_counts(self) -> list[int]:
        return [cell.rack_count for cell in self.cells]

    def cell(self, rack_count: int) -> DataMoverCell:
        for cell in self.cells:
            if cell.rack_count == rack_count:
                return cell
        raise KeyError(f"no cell for pod size {rack_count}")

    def render(self) -> str:
        policy_rows = []
        for cell in self.cells:
            scope = "pod" if cell.cross_rack else "rack"
            policy_rows.append((
                cell.rack_count, scope, "uncached", "-",
                f"{cell.uncached_mean_ns:.0f}",
                f"{cell.uncached_p99_ns:.0f}",
                "1.00x", "-",
            ))
            for pol in cell.policies:
                policy_rows.append((
                    cell.rack_count, scope, pol.policy,
                    f"{pol.hit_ratio:.0%}",
                    f"{pol.mean_ns:.0f}",
                    f"{pol.p99_ns:.0f}",
                    f"{pol.speedup:.2f}x",
                    f"{pol.moved_mib:.2f}",
                ))
        policy_table = render_table(
            ["racks", "scope", "policy", "hit ratio", "mean (ns)",
             "p99 (ns)", "speedup", "moved (MiB)"],
            policy_rows,
            title="Data mover: fetch-granularity policy vs. demand latency "
                  "(dense page walk through the measured segment)")

        discipline_rows = []
        for cell in self.cells:
            for disc in cell.disciplines:
                discipline_rows.append((
                    cell.rack_count,
                    disc.discipline,
                    f"{disc.mean_ns:.0f}",
                    f"{disc.p99_ns:.0f}",
                    disc.bulk_served,
                    disc.inversions,
                ))
        discipline_table = render_table(
            ["racks", "discipline", "demand mean (ns)", "demand p99 (ns)",
             "bulk served", "inversions"],
            discipline_rows,
            title="Link scheduler: decoupled priority queues vs. one FIFO "
                  "(timed contention of demand, prefetch and write-back)")
        return (f"{policy_table}\n\n{discipline_table}\n"
                f"(inversions = demand transfers served after a "
                f"later-enqueued bulk transfer; the decoupled multi-queue "
                f"scheduler shows 0)")


def _build_system(rack_count: int) -> DisaggregatedSystem:
    """A deliberately memory-poor pod so VM RAM spills across racks."""
    return (PodBuilder(f"dm{rack_count}")
            .with_racks(rack_count)
            .with_compute_bricks(2, cores=8, local_memory=gib(2))
            .with_memory_bricks(1, modules=1, module_size=gib(8))
            .build())


def _boot_until_target(system: DisaggregatedSystem, want_cross_rack: bool):
    """Boot VMs until a (cross-rack, when asked) segment exists.

    Returns the target ``(segment, record)`` pair; falls back to the
    first live segment when no boot produces the wanted scope.
    """
    for index in range(MAX_BOOTS):
        try:
            system.boot_vm(VmAllocationRequest(
                f"dm-vm-{index}", vcpus=1, ram_bytes=gib(4)))
        except ReproError:
            break
        for segment in system.sdm.live_segments:
            record = system.sdm.segment_record(segment.segment_id)
            hop_path = record.circuit.hop_path
            crosses = hop_path is not None and hop_path.crosses_racks
            if crosses == want_cross_rack:
                return segment, record
    segment = system.sdm.live_segments[0]
    return segment, system.sdm.segment_record(segment.segment_id)


def _workload(entry) -> list[int]:
    """Dense page walk over the segment's local window."""
    return [entry.base + page * PAGE_BYTES + line * LINE_BYTES
            for page in range(WORKLOAD_PAGES)
            for line in range(LINES_PER_PAGE)]


def run_datamover(rack_counts: tuple[int, ...] = (1, 2, 4, 8),
                  traffic_accesses: int = 1536,
                  traffic_clients: int = 4,
                  traffic_locality: float = 0.85,
                  seed: int = 2018) -> DataMoverResult:
    """Sweep pod sizes; measure granularity policies and disciplines."""
    result = DataMoverResult()
    for rack_count in rack_counts:
        system = _build_system(rack_count)
        segment, record = _boot_until_target(
            system, want_cross_rack=rack_count > 1)
        entry = record.entry
        addresses = _workload(entry)

        compute = system.stack(segment.compute_brick_id).brick
        memory = system.sdm.registry.memory(segment.memory_brick_id).brick
        uncached_path = CircuitAccessPath(compute, memory, record.circuit)
        uncached = [
            uncached_path.access(MemoryTransaction.read(address)).round_trip_s
            for address in addresses]
        uncached_mean = float(np.mean(uncached))
        hop_path = record.circuit.hop_path
        cell = DataMoverCell(
            rack_count=rack_count,
            cross_rack=bool(hop_path is not None and hop_path.crosses_racks),
            uncached_mean_ns=to_nanoseconds(uncached_mean),
            uncached_p99_ns=to_nanoseconds(
                float(np.percentile(uncached, 99))),
        )

        for policy in POLICIES:
            # Re-attaching replaces the brick's mover: each policy
            # starts from a cold cache.
            mover = system.attach_data_mover(
                segment.compute_brick_id,
                MoverConfig(granularity=policy, prefetch="stride",
                            prefetch_depth=4))
            latencies = [mover.read(address).latency_s
                         for address in addresses]
            mean = float(np.mean(latencies))
            moved = (mover.stats.demand_fill_bytes
                     + mover.stats.prefetch_bytes
                     + mover.stats.writeback_bytes)
            cell.policies.append(PolicyCell(
                policy=policy,
                hit_ratio=mover.stats.hit_ratio,
                mean_ns=to_nanoseconds(mean),
                p99_ns=to_nanoseconds(float(np.percentile(latencies, 99))),
                speedup=uncached_mean / mean if mean else 0.0,
                moved_mib=moved / MIB,
            ))

        for discipline in ("priority", "fifo"):
            sim = MoverTrafficSim(hop_path=hop_path,
                                  link_rate_bps=gbps(10),
                                  discipline=discipline,
                                  prefetch_depth=4,
                                  seed=seed)
            run = sim.run(client_count=traffic_clients,
                          accesses_per_client=traffic_accesses,
                          locality=traffic_locality)
            bulk = (run.served.get(TransferClass.PREFETCH, 0)
                    + run.served.get(TransferClass.WRITEBACK, 0))
            cell.disciplines.append(DisciplineCell(
                discipline=discipline,
                mean_ns=to_nanoseconds(run.mean_latency_s),
                p99_ns=to_nanoseconds(run.latency_percentile(99)),
                bulk_served=bulk,
                inversions=run.priority_inversions,
            ))
        result.cells.append(cell)
    return result
