"""Cluster-scale control-plane sweep: arrival rate × pod size × shards.

The SDM controller is the rack's serialization point: every allocation
passes through its inspect/reserve/configure service (§IV.C), and
Fig. 10 measures that service's agility one request at a time.  This
driver measures it under *traffic*: an open-loop stream of memory
allocation requests (the Fig. 10 operation) at a swept arrival rate is
driven through the event-driven
:class:`~repro.cluster.control_plane.ControlPlane`, against pods of
1..N racks, in two dispatch modes:

* ``per-request`` — the baseline single-threaded SDM-C: one
  configuration generated and pushed per request (``max_batch=1``);
* ``batched`` — reservations still serialize one at a time, but one
  amortized configuration push covers a whole batch.

The third axis is **controller shards**
(:class:`~repro.orchestration.sharding.ShardedSdmController`): each
pod size runs with a single reservation domain (``shards=1``, the
centralized baseline), with one shard per rack, and — on pods of four
racks and up — with an intermediate **half-rack shard count** (racks
grouped two per shard), locating where cross-shard two-phase traffic
starts eating the sharding win.  The control plane runs with
brick-side completion offload, so dispatcher workers free their slots
at reservation commit and the shard critical sections are the only
serialization left.

Reported per cell: p50/p99 allocation latency, admission-queue depth,
dispatcher utilization, pool fragmentation and rejections.  Three
shapes matter: latency and queue depth **rise with arrival rate** (the
critical section saturates — contention is really modeled); at the
highest rate the **batched plane beats the per-request baseline** on
p99 (amortizing ``config_generation_s`` moves the saturation point);
and with per-rack shards the **saturation point moves with shard
count** — the 2-rack pod at the top rate drops from seconds of
per-request p99 under one domain to well under a second with two,
because locality-first placements only take their home shard's lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.cluster.control_plane import ControlPlane
from repro.core.builder import PodBuilder
from repro.core.system import DisaggregatedSystem
from repro.orchestration.requests import VmAllocationRequest
from repro.orchestration.sdm_controller import SdmTimings
from repro.sim.rng import RngRegistry
from repro.units import gib, mib, milliseconds, to_milliseconds

#: Dispatcher workers: enough to overlap every brick-side pipeline, so
#: the SDM-C critical section — not worker count — is what saturates.
WORKER_COUNT = 32

#: Requests per batch in batched mode.
BATCH_SIZE = 8

#: How long a batched worker holds the door for stragglers.
BATCH_WINDOW_S = 0.002

#: Segment sizes drawn per allocation (mixed sizes fragment the pool).
SEGMENT_SIZES = (mib(128), mib(256), mib(512))

#: How long each allocation is held before its paired scale-down.
HOLD_S = 0.4

#: SDM-C timings for the sweep.  Reservation matches the default; the
#: configuration push is modeled at pod scale, where role (d) fans an
#: RPC out to every involved device (glue logic, switch tiers, agents)
#: and dominates the controller's per-request service — exactly the
#: share a batched push amortizes.
POD_SDM_TIMINGS = SdmTimings(reservation_s=milliseconds(5),
                             config_generation_s=milliseconds(10),
                             power_on_s=milliseconds(500))


@dataclass
class ClusterScaleCell:
    """Measurements of one (racks, shards, arrival rate, mode) run."""

    rack_count: int
    shards: int
    arrival_rate_hz: float
    mode: str
    completed: int
    rejected: int
    p50_ms: float
    p99_ms: float
    p50_wait_ms: float
    mean_queue_depth: float
    max_queue_depth: int
    utilization: float
    peak_fragmentation: float
    final_fragmentation: float


@dataclass
class ClusterScaleResult:
    """The sweep: one cell per (racks, shards, rate, mode)."""

    allocation_count: int
    cells: list[ClusterScaleCell] = field(default_factory=list)

    def cell(self, rack_count: int, rate_hz: float, mode: str,
             shards: Optional[int] = None) -> ClusterScaleCell:
        """Look a cell up; ``shards=None`` means the single-domain
        (shards=1) controller baseline."""
        wanted = 1 if shards is None else shards
        for candidate in self.cells:
            if (candidate.rack_count == rack_count
                    and candidate.arrival_rate_hz == rate_hz
                    and candidate.mode == mode
                    and candidate.shards == wanted):
                return candidate
        raise KeyError(
            f"no cell for ({rack_count}, {rate_hz}, {mode!r}, "
            f"shards={wanted})")

    @property
    def rates(self) -> list[float]:
        return sorted({cell.arrival_rate_hz for cell in self.cells})

    @property
    def rack_counts(self) -> list[int]:
        return sorted({cell.rack_count for cell in self.cells})

    def shard_counts(self, rack_count: int) -> list[int]:
        return sorted({cell.shards for cell in self.cells
                       if cell.rack_count == rack_count})

    def rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            rows.append((
                cell.rack_count,
                cell.shards,
                f"{cell.arrival_rate_hz:.0f}",
                cell.mode,
                cell.completed,
                cell.rejected,
                f"{cell.p50_ms:.1f}",
                f"{cell.p99_ms:.1f}",
                f"{cell.p50_wait_ms:.1f}",
                f"{cell.mean_queue_depth:.1f}",
                cell.max_queue_depth,
                f"{cell.utilization:.0%}",
                f"{cell.peak_fragmentation:.2f}",
            ))
        return rows

    def render(self) -> str:
        table = render_table(
            ["racks", "shards", "rate (/s)", "mode", "ok", "rej",
             "p50 (ms)", "p99 (ms)", "wait p50 (ms)", "queue",
             "queue max", "util", "frag peak"],
            self.rows(),
            title=f"Cluster control plane: {self.allocation_count} "
                  f"open-loop allocations per cell, "
                  f"batch={BATCH_SIZE} vs per-request dispatch, "
                  f"sharded SDM-C vs single reservation domain")
        lines = [table]
        top = max(self.rates)
        for racks in self.rack_counts:
            for shards in self.shard_counts(racks):
                base = self.cell(racks, top, "per-request", shards)
                batched = self.cell(racks, top, "batched", shards)
                gain = (base.p99_ms / batched.p99_ms
                        if batched.p99_ms else float("inf"))
                lines.append(
                    f"{racks}-rack pod / {shards} shard(s) at "
                    f"{top:.0f}/s: p99 {base.p99_ms:.0f} ms per-request "
                    f"vs {batched.p99_ms:.0f} ms batched "
                    f"({gain:.1f}x tail win from amortized config push)")
            shard_axis = self.shard_counts(racks)
            if len(shard_axis) > 1:
                single = self.cell(racks, top, "per-request",
                                   shard_axis[0])
                sharded = self.cell(racks, top, "per-request",
                                    shard_axis[-1])
                gain = (single.p99_ms / sharded.p99_ms
                        if sharded.p99_ms else float("inf"))
                lines.append(
                    f"{racks}-rack pod at {top:.0f}/s per-request: "
                    f"sharding {shard_axis[0]} -> {shard_axis[-1]} "
                    f"domains cuts p99 {single.p99_ms:.0f} ms -> "
                    f"{sharded.p99_ms:.0f} ms ({gain:.1f}x: the "
                    f"saturation point moves with shard count)")
        lines.append(
            "(per-rack reservation shards + brick-side completion "
            "offload: adding racks now adds controller capacity too)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def _build_system(rack_count: int,
                  shard_count: int) -> DisaggregatedSystem:
    """A deliberately controller-bound pod.

    The controller is always the sharded facade so the comparison is
    apples-to-apples: ``shard_count=1`` is the centralized baseline
    (one reservation domain), ``shard_count=rack_count`` is per-rack
    sharding.
    """
    return (PodBuilder(f"cluster{rack_count}")
            .with_racks(rack_count)
            .with_compute_bricks(4, cores=16, local_memory=gib(4))
            .with_memory_bricks(3, modules=4, module_size=gib(4))
            .with_section_size(mib(128))
            .with_sdm_timings(POD_SDM_TIMINGS)
            .with_controller_shards(shard_count)
            .build())


def _boot_population(system: DisaggregatedSystem,
                     vm_count: int) -> list[str]:
    """Boot the resident VMs the allocation traffic will target.

    Their RAM fits local DRAM, so the open-loop traffic measures pure
    runtime allocation (the Fig. 10 operation), not boot attachment.
    The population is large (same-tenant operations are serialized, so
    few VMs would bottleneck on per-VM chains instead of the SDM-C) and
    core-sized to fill every compute brick, spreading traffic over all
    RMSTs instead of capping at one brick's 32 entries.
    """
    vm_ids = []
    for index in range(vm_count):
        vm_id = f"vm-{index}"
        system.boot_vm(VmAllocationRequest(
            vm_id=vm_id, vcpus=1, ram_bytes=mib(256)))
        vm_ids.append(vm_id)
    return vm_ids


def _run_cell(rack_count: int, shard_count: int, rate_hz: float,
              mode: str, allocation_count: int,
              seed: int) -> ClusterScaleCell:
    system = _build_system(rack_count, shard_count)
    vm_ids = _boot_population(system, vm_count=64 * rack_count)
    batched = mode == "batched"
    plane = ControlPlane(
        system,
        max_batch=BATCH_SIZE if batched else 1,
        batch_window_s=BATCH_WINDOW_S if batched else 0.0,
        workers=WORKER_COUNT,
        offload=True)

    rng = RngRegistry(seed).stream(
        f"cluster_scale.r{rack_count}.s{shard_count}"
        f".a{rate_hz:g}.{mode}")
    gaps = rng.exponential(1.0 / rate_hz, size=allocation_count)
    sizes = rng.choice(SEGMENT_SIZES, size=allocation_count)

    clients = []

    def client(index: int):
        vm_id = vm_ids[index % len(vm_ids)]
        up = plane.submit("scale_up", vm_id,
                          size_bytes=int(sizes[index]))
        yield up.done
        if up.record.ok:
            yield plane.sim.timeout(HOLD_S)
            down = plane.submit(
                "scale_down", vm_id,
                segment_id=up.result.segment.segment_id)
            yield down.done

    def supervisor():
        for index in range(allocation_count):
            yield plane.sim.timeout(float(gaps[index]))
            clients.append(plane.sim.process(client(index)))
        yield plane.sim.all_of(clients)

    plane.sim.run(until=plane.sim.process(supervisor()))
    stats = plane.stats
    stats.duration_s = plane.sim.now

    return ClusterScaleCell(
        rack_count=rack_count,
        shards=shard_count,
        arrival_rate_hz=rate_hz,
        mode=mode,
        completed=len(stats.completed("scale_up")),
        rejected=len(stats.rejected()),
        p50_ms=to_milliseconds(stats.latency_percentile(50, "scale_up")),
        p99_ms=to_milliseconds(stats.latency_percentile(99, "scale_up")),
        p50_wait_ms=to_milliseconds(
            stats.wait_percentile(50, "scale_up")),
        mean_queue_depth=stats.mean_queue_depth,
        max_queue_depth=stats.max_queue_depth,
        utilization=stats.utilization,
        peak_fragmentation=stats.peak_fragmentation,
        final_fragmentation=stats.final_fragmentation,
    )


def run_cluster_scale(rack_counts: tuple[int, ...] = (1, 2, 4, 8),
                      arrival_rates_hz: tuple[float, ...] = (30, 50, 70),
                      allocation_count: int = 400,
                      seed: int = 2018,
                      shards: Optional[int] = None) -> ClusterScaleResult:
    """Sweep arrival rate × pod size × shard count in both modes.

    By default every pod size runs with one reservation domain
    (``shards=1``, the centralized baseline), with one shard per rack,
    and — on pods of 4+ racks — with a half-rack intermediate count
    (e.g. an 8-rack pod sweeps 1, 4 and 8 shards), so the sweep shows
    where between centralized and fully sharded the two-phase
    cross-shard traffic starts to matter.  An explicit *shards* (the
    CLI ``--shards`` flag) pins the axis to that single count instead.
    """
    result = ClusterScaleResult(allocation_count=allocation_count)
    for rack_count in rack_counts:
        shard_axis = ((shards,) if shards is not None
                      else tuple(sorted({1, max(1, rack_count // 2),
                                         rack_count})))
        for shard_count in shard_axis:
            for rate_hz in arrival_rates_hz:
                for mode in ("per-request", "batched"):
                    result.cells.append(_run_cell(
                        rack_count, shard_count, float(rate_hz), mode,
                        allocation_count, seed))
    return result
