"""Federation sweep: pods × aggregate arrival rate × spill policy.

The pod tier's capacity wall is physical: once a pod's memory pool is
exhausted, its control plane can only reject.  The federation tier adds
a placement degree of freedom — spill the tenant to another pod — and
this driver measures what that buys: multi-tenant Poisson traffic with
a **skewed home-pod distribution** (a configurable share of tenants
call the first pod home, the capacity-planning worst case) is driven
through a :class:`~repro.federation.controller.FederationController`
at a swept aggregate arrival rate, once **pinned to the home pod**
(``spill_policy="never"``: the per-pod baseline, where the hot pod's
rejections are the story) and once with **spill enabled**
(``least-loaded`` scoring, plus the idle-window rebalancer draining the
hot pod between bursts).

Reported per cell: admitted/rejected tenants, spills, inter-pod
migrations (with rollbacks), and p50/p99 admission latency.  The
summary derives each configuration's **sustained rate** — the highest
swept rate at which at least 99 % of offered tenants were admitted —
and the expected shape is that spill-enabled federation sustains a
higher aggregate rate than pinned placement at equal pod count, because
the hot pod's overflow lands on pods with free capacity instead of on
the rejection path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.cluster.trace import (
    TenantSpec,
    poisson_trace,
    with_replica_groups,
)
from repro.errors import ConfigurationError
from repro.federation.placer import SPILL_POLICIES
from repro.federation.rebalancer import FederationRebalancer
from repro.topology import TopologySpec, compile_spec, load_spec
from repro.units import gib, to_milliseconds

#: The template every cell's topology derives from when ``--topology``
#: is absent: compiled ``M`` is construction-identical to the
#: hand-built ``build_federation(pods)`` this sweep used before PR 10.
DEFAULT_TOPOLOGY = "M"

#: Share of tenants whose home is the first pod (locality skew).
HOT_POD_SHARE = 0.75

#: Tenant shape: small-VM multi-tenant traffic whose RAM exceeds the
#: compute brick's local DRAM, so every boot draws on the remote pool.
TENANT_VCPUS = 1
TENANT_RAM_BYTES = gib(2)
MEAN_LIFETIME_S = 1.2

#: Admitted fraction a configuration must hold to count as sustaining
#: a rate (the summary's "sustained rate" derivation).
SUSTAIN_FRACTION = 0.99

#: Policies the sweep compares by default.
DEFAULT_POLICIES = ("never", "least-loaded")


@dataclass
class FederationCell:
    """Measurements of one (pods, rate, spill policy) run."""

    pod_count: int
    arrival_rate_hz: float
    spill_policy: str
    admitted: int
    rejected: int
    spills: int
    migrations: int
    rollbacks: int
    p50_boot_ms: float
    p99_boot_ms: float
    duration_s: float

    @property
    def admitted_fraction(self) -> float:
        total = self.admitted + self.rejected
        return self.admitted / total if total else 0.0


@dataclass
class FederationResult:
    """The sweep: one cell per (pods, rate, policy)."""

    tenant_count: int
    cells: list[FederationCell] = field(default_factory=list)

    def cell(self, pod_count: int, rate_hz: float,
             policy: str) -> FederationCell:
        for candidate in self.cells:
            if (candidate.pod_count == pod_count
                    and candidate.arrival_rate_hz == rate_hz
                    and candidate.spill_policy == policy):
                return candidate
        raise KeyError(
            f"no cell for ({pod_count} pods, {rate_hz}/s, {policy!r})")

    @property
    def rates(self) -> list[float]:
        return sorted({cell.arrival_rate_hz for cell in self.cells})

    @property
    def pod_counts(self) -> list[int]:
        return sorted({cell.pod_count for cell in self.cells})

    @property
    def policies(self) -> list[str]:
        return sorted({cell.spill_policy for cell in self.cells})

    def sustained_rate(self, pod_count: int, policy: str) -> float:
        """Highest swept rate at which >= 99 % of tenants were admitted
        (0.0 when even the lowest rate overloads the configuration)."""
        sustained = 0.0
        for rate in self.rates:
            try:
                cell = self.cell(pod_count, rate, policy)
            except KeyError:
                continue
            if cell.admitted_fraction >= SUSTAIN_FRACTION:
                sustained = max(sustained, rate)
        return sustained

    def rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            rows.append((
                cell.pod_count,
                f"{cell.arrival_rate_hz:.0f}",
                cell.spill_policy,
                cell.admitted,
                cell.rejected,
                f"{cell.admitted_fraction:.0%}",
                cell.spills,
                cell.migrations,
                cell.rollbacks,
                f"{cell.p50_boot_ms:.1f}",
                f"{cell.p99_boot_ms:.1f}",
            ))
        return rows

    def render(self) -> str:
        table = render_table(
            ["pods", "rate (/s)", "spill", "ok", "rej", "admit",
             "spills", "migr", "rolled", "p50 (ms)", "p99 (ms)"],
            self.rows(),
            title=f"Multi-pod federation: {self.tenant_count} tenants "
                  f"per cell, {HOT_POD_SHARE:.0%} homed on pod0, "
                  f"pinned-to-home vs spill placement")
        lines = [table]
        top = max(self.rates)
        for pods in self.pod_counts:
            for policy in self.policies:
                rate = self.sustained_rate(pods, policy)
                lines.append(
                    f"{pods} pod(s) / {policy}: sustains "
                    f"{rate:.0f}/s aggregate "
                    f"(>= {SUSTAIN_FRACTION:.0%} admitted)")
            if len(self.policies) > 1 and "never" in self.policies:
                spill_policies = [p for p in self.policies
                                  if p != "never"]
                # Quote the admitted counts of the policy that actually
                # achieves the best sustained rate, not an arbitrary one.
                best_policy = max(
                    spill_policies,
                    key=lambda p: (self.sustained_rate(pods, p), p))
                best = self.sustained_rate(pods, best_policy)
                pinned = self.sustained_rate(pods, "never")
                pinned_cell = self.cell(pods, top, "never")
                spill_cell = self.cell(pods, top, best_policy)
                lines.append(
                    f"{pods} pod(s) at {top:.0f}/s: pinned admits "
                    f"{pinned_cell.admitted}/{pinned_cell.admitted + pinned_cell.rejected}"
                    f" vs {spill_cell.admitted}/"
                    f"{spill_cell.admitted + spill_cell.rejected} with "
                    f"spill — sustained rate {pinned:.0f}/s -> "
                    f"{best:.0f}/s (the hot pod's overflow lands on "
                    f"free capacity instead of the rejection path)")
        lines.append(
            "(global placer: locality-first with least-loaded spill; "
            "idle-window rebalancer drains the hot pod between bursts)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def _home_of(pod_ids: list[str], hot_share: float):
    """Skewed home assignment: *hot_share* of tenants (by a stable hash
    of their id) call the first pod home; the rest spread uniformly
    over the remaining pods (or the first again, with one pod)."""
    def choose(spec: TenantSpec) -> str:
        digest = zlib.crc32(spec.tenant_id.encode("utf-8"))
        if len(pod_ids) == 1 or (digest % 10_000) < hot_share * 10_000:
            return pod_ids[0]
        alternates = pod_ids[1:]
        return alternates[(digest // 10_000) % len(alternates)]
    return choose


def _run_cell(base: TopologySpec, pod_count: int, rate_hz: float,
              policy: str, tenant_count: int, seed: int,
              workers: Optional[int] = None,
              sync_window: Optional[float] = None,
              replica_groups: Optional[int] = None) -> FederationCell:
    rebalancer = (FederationRebalancer(interval_s=0.25,
                                       imbalance_threshold=0.2)
                  if policy != "never" else None)
    # The cell's topology is the base spec with the swept axes applied;
    # the operational surface (domains, maintenance windows) belongs to
    # the availability/maintenance drivers, so the sweep strips it —
    # which also keeps any pod-count override valid against schedules
    # written for the base pod count.
    spec = base.override(
        pods=pod_count, spill_policy=policy,
        replica_groups=replica_groups,
        domains=[], maintenance={"windows": []})
    topo = compile_spec(spec, workers=workers,
                        sync_window_s=sync_window,
                        rebalancer=rebalancer)
    federation = topo.federation
    pod_ids = sorted(federation.pods if workers is None
                     else federation.handles)
    close = topo.close
    # One trace per (rate, seed): every policy/pod-count cell at a rate
    # faces literally the same offered load.
    trace = poisson_trace(
        tenant_count, rate_hz, vcpus=TENANT_VCPUS,
        ram_bytes=TENANT_RAM_BYTES, mean_lifetime_s=MEAN_LIFETIME_S,
        scale_fraction=0.0, seed=seed, name=f"fed-a{rate_hz:g}")
    if replica_groups is not None:
        # Same arrivals and shapes; ids gain a ~gNNNN suffix so the
        # placer's anti-affinity spreads each group over distinct pods.
        trace = with_replica_groups(trace, replica_groups)
    try:
        stats = federation.serve_trace(
            trace, home_of=_home_of(pod_ids, HOT_POD_SHARE))
    finally:
        close()
    return FederationCell(
        pod_count=pod_count,
        arrival_rate_hz=rate_hz,
        spill_policy=policy,
        admitted=stats.boots_admitted,
        rejected=stats.boots_rejected,
        spills=stats.spills,
        migrations=stats.migrations,
        rollbacks=stats.migration_rollbacks,
        p50_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(50)),
        p99_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(99)),
        duration_s=stats.duration_s,
    )


def run_federation(pod_counts: tuple[int, ...] = (2, 3),
                   arrival_rates_hz: tuple[float, ...] = (5, 8, 14, 20),
                   tenant_count: int = 120,
                   seed: int = 2018,
                   pods: Optional[int] = None,
                   spill_policy: Optional[str] = None,
                   workers: Optional[int] = None,
                   sync_window: Optional[float] = None,
                   replica_groups: Optional[int] = None,
                   topology: Optional[str] = None
                   ) -> FederationResult:
    """Sweep pod count × aggregate arrival rate × spill policy.

    *pods* (the CLI ``--pods`` flag) pins the pod-count axis to one
    value; *spill_policy* (``--spill-policy``) pins the policy axis —
    by default ``never`` (pinned-to-home baseline) and ``least-loaded``
    are compared.  *workers* (``--workers``) switches every cell to the
    message-passing parallel federation backend — ``0`` runs its
    in-process serial reference, ``N >= 1`` spreads the pods over *N*
    OS processes; *sync_window* (``--sync-window``, seconds) overrides
    its conservative lookahead.  The parallel backend is deterministic
    across worker counts but models explicit coordinator↔pod link
    latency, so its cells differ (physically, not numerically) from
    the direct-call serial sweep's.

    *replica_groups* (``--replica-groups``, an int >= 2) groups every
    *N* consecutive tenants into a replica set and turns on the
    placer's anti-affinity so group members land on distinct pods —
    one pod (or failure-domain) loss then never takes a whole group
    down.  Serial backend only.

    *topology* (``--topology``: a template name like ``M`` or a spec
    file path) names the compiled topology every cell derives from.
    Without it the sweep compiles the :data:`DEFAULT_TOPOLOGY`
    template over the usual pod-count axis; with it the pod axis pins
    to the spec's own pod count (``--pods`` still overrides), and the
    spec's replica-group policy takes effect unless
    ``--replica-groups`` is passed.
    """
    if pods is not None and pods < 1:
        raise ConfigurationError(f"need >= 1 pod, got {pods}")
    base = load_spec(topology if topology is not None
                     else DEFAULT_TOPOLOGY)
    if replica_groups is None:
        replica_groups = base.replica_groups
    if spill_policy is not None and spill_policy not in SPILL_POLICIES:
        raise ConfigurationError(
            f"unknown spill policy {spill_policy!r}; known: "
            f"{', '.join(SPILL_POLICIES)}")
    if workers is not None and workers < 0:
        raise ConfigurationError(
            f"--workers must be >= 0 (0 = in-process parallel "
            f"backend), got {workers}")
    if sync_window is not None:
        if workers is None:
            raise ConfigurationError(
                "--sync-window only applies to the parallel backend; "
                "pass --workers as well (0 for its in-process mode)")
        if not sync_window > 0:
            raise ConfigurationError(
                f"--sync-window must be positive seconds, got "
                f"{sync_window}")
    if replica_groups is not None:
        if replica_groups < 2:
            raise ConfigurationError(
                f"--replica-groups needs groups of >= 2 replicas for "
                f"anti-affinity to mean anything, got {replica_groups}")
        if workers is not None:
            raise ConfigurationError(
                "--replica-groups only runs on the serial federation "
                "backend: the anti-affinity ledger is coordinator-"
                "local; drop --workers")
    if pods is not None:
        pod_axis: tuple[int, ...] = (pods,)
    elif topology is not None:
        pod_axis = (base.pods,)
    else:
        pod_axis = pod_counts
    policy_axis = ((spill_policy,) if spill_policy is not None
                   else DEFAULT_POLICIES)
    result = FederationResult(tenant_count=tenant_count)
    for pod_count in pod_axis:
        for rate_hz in arrival_rates_hz:
            for policy in policy_axis:
                result.cells.append(_run_cell(
                    base, pod_count, float(rate_hz), policy,
                    tenant_count, seed, workers=workers,
                    sync_window=sync_window,
                    replica_groups=replica_groups))
    return result
