"""Table I: VM workloads with different types of resource requirements.

Regenerates the table and validates, by sampling, that every generated
demand falls inside its configured range and that sample means approach
the range midpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import render_table
from repro.tco.workloads import TABLE_I, generate_vms, table_rows


@dataclass
class Table1Result:
    """The regenerated Table I plus sampling statistics."""

    rows_: list[tuple[str, str, str]] = field(default_factory=list)
    sample_stats: dict[str, dict[str, float]] = field(default_factory=dict)

    def rows(self) -> list[tuple[str, str, str]]:
        """``(Configuration, vCPUs, RAM)`` — exactly the paper's table."""
        return list(self.rows_)

    def render(self) -> str:
        table = render_table(
            ["Configuration", "vCPUs", "RAM"], self.rows_,
            title="TABLE I: VM workloads with different types of resource "
                  "requirements used for the TCO studies")
        stat_rows = [
            (name,
             f"{stats['mean_vcpus']:.2f}",
             f"{stats['mean_ram_gib']:.2f}")
            for name, stats in self.sample_stats.items()
        ]
        stats_table = render_table(
            ["Configuration", "sampled mean vCPUs", "sampled mean RAM (GB)"],
            stat_rows, title="Sampled demand statistics")
        return table + "\n\n" + stats_table


def run_table1(sample_count: int = 2000, seed: int = 2018) -> Table1Result:
    """Regenerate Table I and sample each configuration."""
    result = Table1Result(rows_=table_rows())
    for name, config in TABLE_I.items():
        rng = np.random.default_rng((seed, len(name)))
        vms = generate_vms(config, sample_count, rng)
        result.sample_stats[name] = {
            "mean_vcpus": float(np.mean([vm.vcpus for vm in vms])),
            "mean_ram_gib": float(np.mean([vm.ram_gib for vm in vms])),
            "min_vcpus": float(min(vm.vcpus for vm in vms)),
            "max_vcpus": float(max(vm.vcpus for vm in vms)),
            "min_ram_gib": float(min(vm.ram_gib for vm in vms)),
            "max_ram_gib": float(max(vm.ram_gib for vm in vms)),
        }
    return result
