"""Pod-scale sweep: VM density and remote-memory latency vs. pod size.

The paper prototypes one rack; its architecture section (§II) composes
racks into pods behind a second switching tier.  This driver quantifies
what that tier costs and buys: for pod sizes 1..8 racks it packs VMs
until the memory pool is exhausted, then reports

* **VM capacity** — how density scales with racks (the DRackSim-style
  capacity question);
* **remote-segment fraction** — how much traffic the power-aware,
  locality-first placement pushes across the pod switch;
* **end-to-end 64 B read latency** over an intra-rack circuit vs. an
  inter-rack circuit spanning the
  :class:`~repro.fabric.pod.InterRackSwitch` — the interconnect
  hierarchy as the dominant remote-memory latency term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.core.builder import PodBuilder
from repro.core.system import DisaggregatedSystem
from repro.errors import ReproError
from repro.memory.path import CircuitAccessPath
from repro.memory.transactions import MemoryTransaction
from repro.orchestration.requests import VmAllocationRequest
from repro.units import gib

#: Safety valve on the boot loop (cores bound capacity long before this).
MAX_VMS_PER_SWEEP = 512


@dataclass
class PodScaleCell:
    """Measurements of one pod size."""

    rack_count: int
    vm_capacity: int
    segment_count: int
    remote_segment_count: int
    intra_rack_read_ns: float
    inter_rack_read_ns: Optional[float]
    uplinks_in_use: int
    total_power_w: float

    @property
    def remote_fraction(self) -> float:
        if self.segment_count == 0:
            return 0.0
        return self.remote_segment_count / self.segment_count

    @property
    def inter_over_intra(self) -> Optional[float]:
        """Latency penalty of crossing the pod switch."""
        if self.inter_rack_read_ns is None or self.intra_rack_read_ns == 0:
            return None
        return self.inter_rack_read_ns / self.intra_rack_read_ns


@dataclass
class PodScaleResult:
    """The sweep: one cell per pod size."""

    vm_ram_gib: int
    cells: list[PodScaleCell] = field(default_factory=list)

    @property
    def rack_counts(self) -> list[int]:
        return [cell.rack_count for cell in self.cells]

    def cell(self, rack_count: int) -> PodScaleCell:
        for candidate in self.cells:
            if candidate.rack_count == rack_count:
                return candidate
        raise KeyError(f"no cell for pod size {rack_count}")

    def rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            inter = (f"{cell.inter_rack_read_ns:.0f}"
                     if cell.inter_rack_read_ns is not None else "-")
            ratio = (f"{cell.inter_over_intra:.2f}x"
                     if cell.inter_over_intra is not None else "-")
            rows.append((
                cell.rack_count,
                cell.vm_capacity,
                cell.segment_count,
                f"{cell.remote_fraction:.0%}",
                f"{cell.intra_rack_read_ns:.0f}",
                inter,
                ratio,
                cell.uplinks_in_use,
                f"{cell.total_power_w:.0f}",
            ))
        return rows

    def render(self) -> str:
        table = render_table(
            ["racks", "VMs", "segments", "remote segs",
             "intra read (ns)", "inter read (ns)", "penalty",
             "uplinks", "power (W)"],
            self.rows(),
            title=f"Pod-scale sweep: {self.vm_ram_gib} GiB VMs packed "
                  f"until the disaggregated pool is exhausted")
        capacity = " -> ".join(
            f"{cell.rack_count}r:{cell.vm_capacity}" for cell in self.cells)
        return (f"{table}\n"
                f"VM capacity by pod size: {capacity}\n"
                f"(inter-rack reads cross the pod switch tier: "
                f"2 extra fibre runs + 2 extra switch traversals each way)")


def _pack_vms(system: DisaggregatedSystem, vm_ram_bytes: int,
              vcpus: int) -> int:
    """Boot VMs until placement fails; returns the count that fit."""
    booted = 0
    while booted < MAX_VMS_PER_SWEEP:
        request = VmAllocationRequest(
            f"sweep-vm-{booted}", vcpus=vcpus, ram_bytes=vm_ram_bytes)
        try:
            system.boot_vm(request)
        except ReproError:
            break
        booted += 1
    return booted


def _sample_read_ns(system: DisaggregatedSystem,
                    cross_rack: bool) -> Optional[float]:
    """64 B read latency over the first (intra|inter)-rack segment."""
    sdm = system.sdm
    for segment in sdm.live_segments:
        record = sdm.segment_record(segment.segment_id)
        hop_path = record.circuit.hop_path
        if hop_path is None or hop_path.crosses_racks != cross_rack:
            continue
        compute = system.stack(segment.compute_brick_id).brick
        memory = sdm.registry.memory(segment.memory_brick_id).brick
        path = CircuitAccessPath(compute, memory, record.circuit)
        result = path.access(MemoryTransaction.read(record.entry.base, 64))
        return result.breakdown.total_ns
    return None


def run_pod_scale(rack_counts: tuple[int, ...] = (1, 2, 4, 8),
                  vm_ram_gib: int = 4,
                  compute_bricks_per_rack: int = 2,
                  cores_per_brick: int = 8,
                  local_memory_gib: int = 2,
                  memory_bricks_per_rack: int = 1,
                  module_gib: int = 8,
                  seed: int = 2018) -> PodScaleResult:
    """Sweep pod sizes; each rack is deliberately memory-poor so VM RAM
    must come from the disaggregated pool and, once the local rack is
    drained, from remote racks.

    *seed* is accepted for runner-interface uniformity; the packing
    sweep is fully deterministic.
    """
    result = PodScaleResult(vm_ram_gib=vm_ram_gib)
    for rack_count in rack_counts:
        system = (PodBuilder(f"sweep{rack_count}")
                  .with_racks(rack_count)
                  .with_compute_bricks(compute_bricks_per_rack,
                                       cores=cores_per_brick,
                                       local_memory=gib(local_memory_gib))
                  .with_memory_bricks(memory_bricks_per_rack, modules=1,
                                      module_size=gib(module_gib))
                  .build())
        vm_capacity = _pack_vms(system, gib(vm_ram_gib), vcpus=1)

        segments = system.sdm.live_segments
        remote = 0
        for segment in segments:
            record = system.sdm.segment_record(segment.segment_id)
            hop_path = record.circuit.hop_path
            if hop_path is not None and hop_path.crosses_racks:
                remote += 1
        intra_ns = _sample_read_ns(system, cross_rack=False) or 0.0
        inter_ns = _sample_read_ns(system, cross_rack=True)
        uplinks = sum(
            1 for slot_rack in system.pod.racks
            for uplink in system.pod.slot(slot_rack.rack_id).uplinks
            if not uplink.is_free)
        result.cells.append(PodScaleCell(
            rack_count=rack_count,
            vm_capacity=vm_capacity,
            segment_count=len(segments),
            remote_segment_count=remote,
            intra_rack_read_ns=intra_ns,
            inter_rack_read_ns=inter_ns,
            uplinks_in_use=uplinks,
            total_power_w=system.total_power_w(),
        ))
    return result
