"""Figure 10: scale-up agility vs conventional scale-out.

"We have measured the competitiveness of the dReDBox software stack in
terms of scale-up agility (delay in delivering dynamically scale-up
memory to requesting VMs), when compared to conventional scale-out
(i.e. spawning of additional VMs to facilitate memory addition to an
application).  As shown in Figure 10, memory expansion agility is
superior in the disaggregated approach, even under the most extreme
scale-up concurrency conditions tested (number of VMs posting scale-up
requests within a given time interval)."

The driver runs, for each requested memory size, three concurrency
levels (32/16/8 VMs posting within the interval — "lower is more
aggressive" refers to the interval) on the timed DES harness, plus the
conventional scale-out baseline derived from the paper's ref [13] cloud
VM startup measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.figures import render_grouped_bars
from repro.analysis.tables import render_table
from repro.core.builder import RackBuilder
from repro.core.flows import TimedScaleUpHarness, scale_out_baseline_delays
from repro.orchestration.requests import VmAllocationRequest
from repro.sim.rng import stable_stream_seed
from repro.units import gib


@dataclass
class Fig10Cell:
    """Mean per-VM delay for one (size, concurrency) combination."""

    size_gib: int
    concurrency: int
    mean_delay_s: float
    max_delay_s: float
    delays_s: list[float] = field(default_factory=list)


@dataclass
class Fig10Result:
    """The full figure: scale-up cells plus the scale-out series."""

    cells: list[Fig10Cell] = field(default_factory=list)
    scale_out_mean_s: dict[int, float] = field(default_factory=dict)
    sizes_gib: list[int] = field(default_factory=list)
    concurrencies: list[int] = field(default_factory=list)

    def cell(self, size_gib: int, concurrency: int) -> Fig10Cell:
        for cell in self.cells:
            if cell.size_gib == size_gib and cell.concurrency == concurrency:
                return cell
        raise KeyError(f"no cell for {size_gib} GiB @ {concurrency}")

    def speedup_vs_scale_out(self, size_gib: int, concurrency: int) -> float:
        """How many times faster scale-up is than scale-out."""
        cell = self.cell(size_gib, concurrency)
        return self.scale_out_mean_s[concurrency] / cell.mean_delay_s

    def rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for cell in self.cells:
            rows.append((f"{cell.size_gib} GiB", cell.concurrency,
                         round(cell.mean_delay_s, 3),
                         round(cell.max_delay_s, 3),
                         round(self.scale_out_mean_s[cell.concurrency], 1)))
        return rows

    def render(self) -> str:
        table = render_table(
            ["request size", "concurrent VMs", "scale-up mean (s)",
             "scale-up max (s)", "scale-out mean (s)"],
            self.rows(),
            title="Fig. 10: per-VM average delay of dynamic memory "
                  "scale-up vs conventional scale-out (lower is better)")
        series: dict[str, list[float]] = {}
        for concurrency in self.concurrencies:
            series[f"scale-up x{concurrency}"] = [
                self.cell(size, concurrency).mean_delay_s
                for size in self.sizes_gib
            ]
        series["scale-out"] = [
            self.scale_out_mean_s[max(self.concurrencies)]
            for _ in self.sizes_gib
        ]
        chart = render_grouped_bars(
            [f"{size} GiB" for size in self.sizes_gib], series,
            title="Per-VM average delay (s)", unit="s")
        return table + "\n" + chart


def _build_system(vm_count: int, size_gib: int):
    """A rack with one VM per compute brick, memory pool sized to fit.

    The membrick count covers both capacity and optical reachability:
    each membrick has 8 CBN ports, so at least ``vm_count / 8`` bricks
    are needed for every VM's circuit.
    """
    memory_needed_gib = vm_count * (size_gib + 2) + 64
    by_capacity = -(-memory_needed_gib // 64)
    by_ports = -(-vm_count // 8)
    memory_bricks = max(2, by_capacity, by_ports)
    system = (RackBuilder(f"fig10-{vm_count}-{size_gib}")
              .with_compute_bricks(vm_count, cores=16, local_memory=gib(2))
              .with_memory_bricks(memory_bricks, modules=4,
                                  module_size=gib(16))
              .build())
    for index in range(vm_count):
        system.boot_vm(VmAllocationRequest(
            f"vm-{index}", vcpus=16, ram_bytes=gib(1)))
    return system


def run_fig10(sizes_gib: Sequence[int] = (1, 2, 4, 8),
              concurrencies: Sequence[int] = (8, 16, 32),
              posting_interval_s: float = 0.5,
              seed: int = 2018) -> Fig10Result:
    """Run the agility comparison.

    All VMs post their scale-up requests uniformly at random within
    *posting_interval_s* and contend for the serialized SDM-C
    reservation step.
    """
    result = Fig10Result(sizes_gib=list(sizes_gib),
                         concurrencies=list(concurrencies))
    for size_gib in sizes_gib:
        for concurrency in concurrencies:
            system = _build_system(concurrency, size_gib)
            harness = TimedScaleUpHarness(system)
            rng = np.random.default_rng(
                stable_stream_seed(seed, f"post-{size_gib}-{concurrency}"))
            for index in range(concurrency):
                harness.post_scale_up(
                    f"vm-{index}", gib(size_gib),
                    at=float(rng.uniform(0.0, posting_interval_s)))
            samples = harness.run()
            delays = [s.delay_s for s in samples]
            result.cells.append(Fig10Cell(
                size_gib=size_gib,
                concurrency=concurrency,
                mean_delay_s=float(np.mean(delays)),
                max_delay_s=float(np.max(delays)),
                delays_s=delays,
            ))
    for concurrency in concurrencies:
        rng = np.random.default_rng(
            stable_stream_seed(seed, f"scale-out-{concurrency}"))
        delays = scale_out_baseline_delays(concurrency, rng)
        result.scale_out_mean_s[concurrency] = float(np.mean(delays))
    return result
