"""Figure 7: BER vs received optical power for the dBRICK links.

The paper's measurement: bi-directional 10 Gb/s links between the
dCOMPUBRICK and dMEMBRICK, patched through the optical switch for
multiple hops — "all but one were traversing eight hops through the
optical switch (with the remaining channel traversing six hops)" — with
all links achieving BER below 1e-12.  The box plot shows channels 1 and
8.

The reproduction measures every MBO channel sequentially on the 48-port
switch (establish the multi-hop circuit, sample the BER repeatedly with
received-power jitter via Q-factor extrapolation, tear down), then
reports box-plot statistics per channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import BoxplotStats, boxplot_stats
from repro.analysis.tables import render_table
from repro.hardware.bricks import ComputeBrick, MemoryBrick
from repro.hardware.mbo import MBO_LAUNCH_POWER_SIGMA_DB
from repro.network.optical.ber import BER_TARGET
from repro.network.optical.topology import OpticalFabric
from repro.sim.rng import RngRegistry


@dataclass
class ChannelMeasurement:
    """Per-channel Fig. 7 data."""

    channel: int
    hops: int
    mean_received_dbm: float
    ber_stats: BoxplotStats
    ber_samples: list[float] = field(default_factory=list)
    received_samples: list[float] = field(default_factory=list)

    @property
    def meets_target(self) -> bool:
        """All sampled BERs at or below the FEC-free 1e-12 target."""
        return max(self.ber_samples) <= BER_TARGET


@dataclass
class Fig7Result:
    """All channel measurements plus the paper's two featured channels."""

    channels: list[ChannelMeasurement] = field(default_factory=list)

    def channel(self, index: int) -> ChannelMeasurement:
        for measurement in self.channels:
            if measurement.channel == index:
                return measurement
        raise KeyError(f"no measurement for channel {index}")

    def rows(self) -> list[tuple]:
        """``(channel, hops, rx dBm, BER median/q1/q3, <=1e-12)`` rows."""
        return [
            (m.channel, m.hops, round(m.mean_received_dbm, 2),
             f"{m.ber_stats.median:.2e}", f"{m.ber_stats.q1:.2e}",
             f"{m.ber_stats.q3:.2e}", m.meets_target)
            for m in self.channels
        ]

    def render(self) -> str:
        table = render_table(
            ["channel", "hops", "rx power (dBm)", "BER median", "BER q1",
             "BER q3", "BER <= 1e-12"],
            self.rows(),
            title="Fig. 7: BER vs received optical power "
                  "(box-plot stats per channel)")
        featured = []
        for index in (1, 8):
            m = self.channel(index)
            featured.append(
                f"ch-{index}: {m.hops} hops, rx {m.mean_received_dbm:.1f} dBm,"
                f" BER median {m.ber_stats.median:.2e}"
                f" [whiskers {m.ber_stats.whisker_low:.2e} .."
                f" {m.ber_stats.whisker_high:.2e}]")
        return table + "\nFeatured channels (paper box plot):\n  " + \
            "\n  ".join(featured)


def run_fig7(measurements_per_channel: int = 40,
             eight_hop_channels: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
             six_hop_channels: tuple[int, ...] = (8,),
             power_jitter_db: float = 0.15,
             seed: int = 2018) -> Fig7Result:
    """Measure every MBO channel at its configured hop count.

    Channel numbering is 1-based to match the paper; channel *n* maps to
    MBO lane ``n - 1``.
    """
    rng_registry = RngRegistry(seed)
    compute = ComputeBrick("fig7.cb")
    memory = MemoryBrick("fig7.mb")
    # Re-draw launch powers with realistic lane-to-lane spread.
    for brick in (compute, memory):
        rng = rng_registry.stream(f"launch.{brick.brick_id}")
        for channel in brick.mbo:
            channel.launch_power_dbm = float(rng.normal(
                brick.mbo.mean_launch_power_dbm, MBO_LAUNCH_POWER_SIGMA_DB))

    fabric = OpticalFabric()
    fabric.attach_brick(compute)
    fabric.attach_brick(memory)

    plan = [(ch, 8) for ch in eight_hop_channels]
    plan += [(ch, 6) for ch in six_hop_channels]
    plan.sort()

    result = Fig7Result()
    for channel_number, hops in plan:
        lane = channel_number - 1
        circuit = fabric.connect_channels(compute, lane, memory, lane,
                                          hops=hops)
        rng = rng_registry.stream(f"measure.ch{channel_number}")
        bers: list[float] = []
        powers: list[float] = []
        for _ in range(measurements_per_channel):
            received, ber = circuit.circuit.link_ab.estimate_ber_q_method(
                rng=rng, power_jitter_db=power_jitter_db)
            bers.append(ber)
            powers.append(received)
        fabric.disconnect(circuit)
        result.channels.append(ChannelMeasurement(
            channel=channel_number,
            hops=hops,
            mean_received_dbm=sum(powers) / len(powers),
            ber_stats=boxplot_stats(bers),
            ber_samples=bers,
            received_samples=powers,
        ))
    return result
