"""Kernel throughput trajectory: events/sec across workload shapes.

Every other experiment in this package measures the *simulated* system
(latencies on the DES clock).  This one measures the simulator itself:
how many events per wall-clock second the kernel retires, per pending-
event backend, across workload shapes drawn from the repo's own
traffic — so a scheduler regression shows up as a number, not as "the
sweeps feel slow".

Shapes
------

``timeout_swarm``
    Brown's hold model (pop one, push one, constant population)
    seasoned with the repo's own cancellation traffic.  The pending
    set holds a large steady state of datamover grant completions
    (delays uniform in a bounded band — grant serialization is message
    size over link bandwidth) plus a backlog of far-future reservation
    guard timers that were armed and then *cancelled* before timing
    starts.  Each timed round then re-arms a grant and races it
    against a triple of short watchdog timers, cancelling the losing
    triple a fixed lag later — the ``AnyOf`` grant-vs-guard pattern
    from the admission pipeline.  Both backends execute the identical
    operation sequence; they differ only in what cancellation *costs*.
    The heap keeps every tombstone until its time comes up (SimPy's
    lazy discipline — the seed baseline), so each operation sifts
    through millions of entries of cold debris; the calendar sheds
    cancelled entries in O(1) at the slot and compacts wholesale once
    tombstones outnumber live entries.  This shape drives the
    :class:`EventQueue` backends *directly* (the structure the rebuild
    replaced), so the measured ratio is the scheduler's own, undiluted
    by callback execution.

``engine_swarm``
    The same swarm end-to-end through :class:`Simulator` — coroutine
    resume, timeout pooling and the run loop included.  Reported
    transparently alongside the raw shape: callback execution costs
    the same on every backend, so Amdahl's law compresses the
    end-to-end ratio well below the scheduler-level one.

``admission_70rps``
    The cluster control plane (2 racks, per-rack shards, batched
    admission, completion offload) under open-loop Poisson allocation
    traffic at 70 req/s — the highest rate in the ``cluster_scale``
    sweep.  Mixed event population: batch windows, SDM latencies,
    holds, worker wakeups.

``federation_3pod``
    The 3-pod federation tier serving a skewed multi-tenant Poisson
    trace with spill and the idle-window rebalancer — the deepest
    stack in the repo (placement scoring, two-phase claims,
    migration) on one clock.

Protocol: per shape, the backends run interleaved for ``reps``
rounds; the reported throughput is each backend's best round (noise
on a shared machine only ever subtracts).  The raw-queue shape warms
up to steady state before its timed span.  GC is paused during timed
sections — collections traverse the multi-million-entry pending set
and would charge either backend an arbitrary toll.  Determinism is
asserted, not assumed: each shape fingerprints its final state and
the run fails if the backends diverge.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.tables import render_table
from repro.cluster.trace import poisson_trace
from repro.errors import ConfigurationError
from repro.experiments.cluster_scale import (
    BATCH_SIZE,
    BATCH_WINDOW_S,
    HOLD_S,
    SEGMENT_SIZES,
    WORKER_COUNT,
    _boot_population,
    _build_system,
)
from repro.experiments.federation import (
    HOT_POD_SHARE,
    MEAN_LIFETIME_S,
    TENANT_RAM_BYTES,
    TENANT_VCPUS,
    _home_of,
)
from repro.federation.controller import build_federation
from repro.federation.rebalancer import FederationRebalancer
from repro.cluster.control_plane import ControlPlane
from repro.sim.engine import NORMAL_PRIORITY, Simulator, default_queue_backend
from repro.sim.queues import QUEUE_BACKENDS
from repro.sim.rng import RngRegistry

#: Backends every shape compares (insertion order = report order).
BACKENDS = tuple(QUEUE_BACKENDS)

#: Hold-model steady-state population (pending grant completions).
SWARM_POPULATION = 1_000_000

#: Grant-serialization band: a 64 KiB..192 KiB message on a 25 Gb/s
#: link takes ~20..60 us; the absolute scale is irrelevant to the
#: scheduler (only the spread matters), the bounded shape is the point.
SWARM_DELAY_BAND_S = (0.0005, 0.0015)

#: Reservation guard timers armed and then cancelled before timing
#: starts.  The lazy heap carries the tombstones for the whole run;
#: the calendar's debris-triggered compaction drops them.
SWARM_GUARD_BACKLOG = 4_000_000

#: Guard deadlines land far beyond the measured horizon (reservation
#: watchdogs are seconds; grant holds are milliseconds).
SWARM_GUARD_BAND_S = (5.0, 15.0)

#: Per-round grant-vs-guard race: arm this many short watchdogs with
#: each grant, cancel the losing set SWARM_CANCEL_LAG rounds later.
SWARM_WATCHDOGS = 3
SWARM_WATCHDOG_DELAY_S = 32e-6
SWARM_CANCEL_LAG = 4_096

#: Timed rounds, after a warmup span that reaches steady state.
SWARM_ROUNDS = 150_000
SWARM_WARMUP_ROUNDS = 40_000

#: End-to-end swarm is smaller: each event also runs a coroutine.
ENGINE_SWARM_POPULATION = 200_000
ENGINE_SWARM_EVENTS = 400_000

#: The admission shape reuses the cluster_scale cell at its highest
#: swept rate.
ADMISSION_RATE_HZ = 70.0
ADMISSION_RACKS = 2
ADMISSION_ALLOCATIONS = 400

#: Federation shape: the 3-pod sweep column at its highest rate.
FEDERATION_PODS = 3
FEDERATION_RATE_HZ = 20.0
FEDERATION_TENANTS = 120


@dataclass
class KernelBenchCell:
    """One (shape, backend) measurement."""

    shape: str
    backend: str
    events: int
    best_s: float
    events_per_s: float
    peak_queue: int
    fingerprint: str

    @property
    def mevents_per_s(self) -> float:
        return self.events_per_s / 1e6


def host_facts() -> dict:
    """Host metadata stamped into benchmark JSON artifacts: wall-clock
    numbers are meaningless without the interpreter and core count
    that produced them."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class KernelBenchResult:
    """All cells of one benchmark run."""

    reps: int
    seed: int
    #: Wall-clock seconds the whole benchmark took (all reps, both
    #: backends, warmups included — the cost of regenerating the
    #: artifact, not a throughput number).
    wall_s: float = 0.0
    cells: list[KernelBenchCell] = field(default_factory=list)

    def cell(self, shape: str, backend: str) -> KernelBenchCell:
        for cell in self.cells:
            if cell.shape == shape and cell.backend == backend:
                return cell
        raise KeyError(f"no cell for ({shape!r}, {backend!r})")

    def shapes(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.shape not in seen:
                seen.append(cell.shape)
        return seen

    def speedup(self, shape: str,
                over: str = "heap", backend: str = "calendar") -> float:
        """Throughput ratio of *backend* over *over* on *shape*."""
        return (self.cell(shape, backend).events_per_s
                / self.cell(shape, over).events_per_s)

    def rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for shape in self.shapes():
            for backend in BACKENDS:
                cell = self.cell(shape, backend)
                rows.append((shape, backend, cell.events,
                             f"{cell.mevents_per_s:.3f}",
                             cell.peak_queue,
                             f"{self.speedup(shape, backend=backend):.2f}x"))
        return rows

    def render(self) -> str:
        lines = [render_table(
            ("shape", "backend", "events", "Mev/s", "peak queue",
             "vs heap"),
            self.rows(),
            title=f"Kernel throughput (best of {self.reps}, "
                  f"seed {self.seed})")]
        lines.append("")
        lines.append(
            "timeout_swarm drives the queue backends directly (hold "
            "model); the other shapes run end-to-end, where callback "
            "execution dilutes the scheduler ratio.")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "benchmark": "kernel",
            "reps": self.reps,
            "seed": self.seed,
            "wall_s": round(self.wall_s, 3),
            "host": host_facts(),
            "shapes": [
                {
                    "shape": shape,
                    "backends": {
                        backend: {
                            "events": self.cell(shape, backend).events,
                            "events_per_s": round(
                                self.cell(shape, backend).events_per_s),
                            "peak_queue": self.cell(
                                shape, backend).peak_queue,
                            "fingerprint": self.cell(
                                shape, backend).fingerprint,
                        }
                        for backend in BACKENDS
                    },
                    "calendar_speedup_vs_heap": round(
                        self.speedup(shape), 3),
                }
                for shape in self.shapes()
            ],
        }
        return json.dumps(payload, indent=2) + "\n"


# ---------------------------------------------------------------------------
# shape drivers
# ---------------------------------------------------------------------------
#
# Each driver takes a backend name and returns
# ``(events, elapsed_s, peak_queue, fingerprint)`` for one round.

class _Token:
    """Inert payload standing in for an Event in raw-queue entries."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False


def _timed(run: Callable[[], object]) -> tuple[float, object]:
    """Run *run* with GC paused, returning (elapsed_s, its result)."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, result


def _run_timeout_swarm(backend: str, seed: int,
                       population: int = SWARM_POPULATION,
                       rounds: int = SWARM_ROUNDS,
                       warmup_rounds: int = SWARM_WARMUP_ROUNDS,
                       guard_backlog: int = SWARM_GUARD_BACKLOG,
                       cancel_lag: int = SWARM_CANCEL_LAG
                       ) -> tuple[int, float, int, str]:
    rng = random.Random(seed)
    low, high = SWARM_DELAY_BAND_S
    mask = (1 << 16) - 1
    hold = [rng.uniform(low, high) for _ in range(mask + 1)]
    guard_low, guard_high = SWARM_GUARD_BAND_S
    guard_at = [rng.uniform(guard_low, guard_high)
                for _ in range(mask + 1)]
    queue = QUEUE_BACKENDS[backend]()
    push, pop, cancel = queue.push, queue.pop, queue.note_cancel
    grant = _Token()
    sequence = 0
    for index in range(population):
        push(hold[index & mask], NORMAL_PRIORITY, sequence, grant)
        sequence += 1
    # Guard backlog: armed, then cancelled wholesale.  Identical ops on
    # both backends; only the cost of carrying the tombstones differs.
    guards = [_Token() for _ in range(guard_backlog)]
    for index, token in enumerate(guards):
        push(guard_at[index & mask], NORMAL_PRIORITY, sequence, token)
        sequence += 1
    for token in guards:
        token._cancelled = True
        cancel(token)
    del guards

    # Watchdog triples live in a reuse ring so the timed span allocates
    # nothing (allocation cost is backend-independent and would only
    # dilute the ratio).  A slot is re-armed ring_size - cancel_lag
    # rounds after its cancellation — far longer in simulated time than
    # the watchdog delay, so the old entries are off the queue by then
    # and clearing ``_cancelled`` cannot resurrect stale debris.
    ring_size = max(1024, 1 << (cancel_lag * 16 - 1).bit_length())
    ring = [(_Token(), _Token(), _Token()) for _ in range(ring_size)]
    ring_mask = ring_size - 1
    watchdog = SWARM_WATCHDOG_DELAY_S
    state = {"now": 0.0, "seq": sequence}

    def span(start: int, stop: int) -> None:
        seq = state["seq"]
        now = state["now"]
        for round_index in range(start, stop):
            entry = pop()
            now = entry[0]
            push(now + hold[round_index & mask], NORMAL_PRIORITY, seq,
                 grant)
            first, second, third = ring[round_index & ring_mask]
            first._cancelled = False
            second._cancelled = False
            third._cancelled = False
            deadline = now + watchdog
            push(deadline, NORMAL_PRIORITY, seq + 1, first)
            push(deadline, NORMAL_PRIORITY, seq + 2, second)
            push(deadline, NORMAL_PRIORITY, seq + 3, third)
            seq += 4
            if round_index >= cancel_lag:
                losers = ring[(round_index - cancel_lag) & ring_mask]
                for token in losers:
                    token._cancelled = True
                    cancel(token)
        state["seq"] = seq
        state["now"] = now

    span(0, warmup_rounds)
    elapsed, _ = _timed(
        lambda: span(warmup_rounds, warmup_rounds + rounds))
    # Ops per timed round: 1 serve + 1 grant re-arm + W watchdog arms
    # + W cancels (the cancels start once cancel_lag rounds have run).
    cancelling = rounds - min(rounds, max(0, cancel_lag - warmup_rounds))
    operations = (rounds * (2 + SWARM_WATCHDOGS)
                  + SWARM_WATCHDOGS * cancelling)
    fingerprint = f"t={state['now']:.9f} pending={len(queue)}"
    return operations, elapsed, queue.peak_size, fingerprint


def _run_engine_swarm(backend: str, seed: int,
                      population: int = ENGINE_SWARM_POPULATION,
                      events: int = ENGINE_SWARM_EVENTS
                      ) -> tuple[int, float, int, str]:
    rng = random.Random(seed)
    low, high = SWARM_DELAY_BAND_S
    mask = (1 << 16) - 1
    delays = [rng.uniform(low, high) for _ in range(mask + 1)]
    resumes_each = max(1, events // population)

    with default_queue_backend(backend):
        sim = Simulator()

    def waiter(offset: int):
        for round_index in range(resumes_each):
            yield sim.timeout(
                delays[(offset + round_index) & mask])

    for offset in range(population):
        sim.process(waiter(offset))

    def run() -> float:
        sim.run()
        return sim.now

    elapsed, now = _timed(run)
    processed = sim.events_processed
    fingerprint = f"t={now:.9f} processed={processed}"
    return processed, elapsed, sim.queue_peak_size, fingerprint


def _run_admission(backend: str, seed: int,
                   allocation_count: int = ADMISSION_ALLOCATIONS
                   ) -> tuple[int, float, int, str]:
    # Mirrors cluster_scale._run_cell at the sweep's top rate, with the
    # backend pinned; same build, same trace, same client shape.
    with default_queue_backend(backend):
        system = _build_system(ADMISSION_RACKS, ADMISSION_RACKS)
        vm_ids = _boot_population(system, vm_count=64 * ADMISSION_RACKS)
        plane = ControlPlane(
            system, max_batch=BATCH_SIZE, batch_window_s=BATCH_WINDOW_S,
            workers=WORKER_COUNT, offload=True)

    rng = RngRegistry(seed).stream(
        f"kernel_bench.admission.a{ADMISSION_RATE_HZ:g}")
    gaps = rng.exponential(1.0 / ADMISSION_RATE_HZ,
                           size=allocation_count)
    sizes = rng.choice(SEGMENT_SIZES, size=allocation_count)
    sim = plane.sim
    clients = []

    def client(index: int):
        vm_id = vm_ids[index % len(vm_ids)]
        up = plane.submit("scale_up", vm_id, size_bytes=int(sizes[index]))
        yield up.done
        if up.record.ok:
            yield sim.timeout(HOLD_S)
            down = plane.submit("scale_down", vm_id,
                                segment_id=up.result.segment.segment_id)
            yield down.done

    def supervisor():
        for index in range(allocation_count):
            yield sim.timeout(float(gaps[index]))
            clients.append(sim.process(client(index)))
        yield sim.all_of(clients)

    def run() -> float:
        sim.run(until=sim.process(supervisor()))
        return sim.now

    elapsed, now = _timed(run)
    stats = plane.stats
    fingerprint = (f"t={now:.9f} processed={sim.events_processed} "
                   f"completed={len(stats.completed('scale_up'))} "
                   f"rejected={len(stats.rejected())}")
    return sim.events_processed, elapsed, sim.queue_peak_size, fingerprint


def _run_federation(backend: str, seed: int,
                    tenant_count: int = FEDERATION_TENANTS
                    ) -> tuple[int, float, int, str]:
    # Mirrors federation._run_cell (least-loaded spill + rebalancer)
    # at the sweep's 3-pod column and top rate.
    with default_queue_backend(backend):
        federation = build_federation(
            FEDERATION_PODS, spill_policy="least-loaded",
            rebalancer=FederationRebalancer(interval_s=0.25,
                                            imbalance_threshold=0.2))
    trace = poisson_trace(
        tenant_count, FEDERATION_RATE_HZ, vcpus=TENANT_VCPUS,
        ram_bytes=TENANT_RAM_BYTES, mean_lifetime_s=MEAN_LIFETIME_S,
        scale_fraction=0.0, seed=seed,
        name=f"kernel-fed-a{FEDERATION_RATE_HZ:g}")
    home_of = _home_of(sorted(federation.pods), HOT_POD_SHARE)

    elapsed, stats = _timed(
        lambda: federation.serve_trace(trace, home_of=home_of))
    sim = federation.sim
    fingerprint = (f"t={sim.now:.9f} processed={sim.events_processed} "
                   f"admitted={stats.boots_admitted} "
                   f"rejected={stats.boots_rejected} "
                   f"spills={stats.spills}")
    return sim.events_processed, elapsed, sim.queue_peak_size, fingerprint


#: shape name -> driver(backend, seed) -> (events, s, peak, fingerprint).
SHAPES: dict[str, Callable[[str, int], tuple[int, float, int, str]]] = {
    "timeout_swarm": _run_timeout_swarm,
    "engine_swarm": _run_engine_swarm,
    "admission_70rps": _run_admission,
    "federation_3pod": _run_federation,
}


def run_kernel_bench(shapes: tuple[str, ...] = tuple(SHAPES),
                     reps: int = 3,
                     seed: int = 2018,
                     profile: bool = False) -> KernelBenchResult:
    """Measure events/sec per (shape, backend); best of *reps* rounds.

    Rounds interleave the backends so drift on a shared machine hits
    both sides alike.  Each backend's fingerprint must be identical
    across its own rounds *and* across backends (same final time and
    final counters) — the determinism contract, enforced here.

    *profile* is accepted for CLI symmetry (``--profile`` wraps the
    whole experiment in cProfile at the runner layer; the flag needs
    no per-shape behavior).
    """
    del profile  # handled by the runner; accepted for signature parity
    for shape in shapes:
        if shape not in SHAPES:
            known = ", ".join(SHAPES)
            raise ConfigurationError(
                f"unknown shape {shape!r}; known: {known}")
    if reps < 1:
        raise ConfigurationError(f"need >= 1 rep, got {reps}")

    wall_start = time.perf_counter()
    result = KernelBenchResult(reps=reps, seed=seed)
    for shape in shapes:
        driver = SHAPES[shape]
        best: dict[str, tuple[int, float, int, str]] = {}
        for _ in range(reps):
            for backend in BACKENDS:
                events, elapsed, peak, fingerprint = driver(backend, seed)
                previous = best.get(backend)
                if previous is not None and previous[3] != fingerprint:
                    raise AssertionError(
                        f"{shape}/{backend} diverged between rounds: "
                        f"{previous[3]} != {fingerprint}")
                if previous is None or elapsed < previous[1]:
                    best[backend] = (events, elapsed, peak, fingerprint)
        prints = {best[backend][3] for backend in BACKENDS}
        if len(prints) != 1:
            raise AssertionError(
                f"{shape}: backends diverged: {sorted(prints)}")
        for backend in BACKENDS:
            events, elapsed, peak, fingerprint = best[backend]
            result.cells.append(KernelBenchCell(
                shape=shape, backend=backend, events=events,
                best_s=elapsed, events_per_s=events / elapsed,
                peak_queue=peak, fingerprint=fingerprint))
    result.wall_s = time.perf_counter() - wall_start
    return result
