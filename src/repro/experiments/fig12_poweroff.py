"""Figure 12: percentage of unutilized resources that can be powered off.

"Our results suggest that the resource fragmentation in a dReDBox-like
datacenter is significantly lower in scenarios where VMs have unbalanced
compute and memory requirements ...  Depending on the different VM
configurations in dReDBox, up to 88% of dMEMBRICKs or dCOMPUBRICKs can
be powered off because they are not utilized, whereas in a conventional
datacenter only 15% of the hosts can be powered off."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.figures import render_grouped_bars
from repro.analysis.tables import render_table
from repro.tco.study import TcoResult, TcoStudy


@dataclass
class Fig12Result:
    """Power-off percentages per workload configuration."""

    results: list[TcoResult] = field(default_factory=list)

    @property
    def max_brick_poweroff(self) -> float:
        """The paper's 'up to 88%' headline quantity."""
        return max(r.best_brick_poweroff for r in self.results)

    @property
    def max_conventional_poweroff(self) -> float:
        """The paper's 'only 15%' counterpart."""
        return max(r.conventional_poweroff for r in self.results)

    def rows(self) -> list[tuple]:
        return [
            (r.config_name,
             f"{r.conventional_poweroff:.1%}",
             f"{r.compute_brick_poweroff:.1%}",
             f"{r.memory_brick_poweroff:.1%}",
             f"{r.disaggregated_poweroff:.1%}")
            for r in self.results
        ]

    def render(self) -> str:
        table = render_table(
            ["workload", "conventional hosts off", "dCOMPUBRICKs off",
             "dMEMBRICKs off", "all bricks off"],
            self.rows(),
            title="Fig. 12: percentage of unutilized resources that can "
                  "be powered off")
        chart = render_grouped_bars(
            [r.config_name for r in self.results],
            {
                "conventional": [100 * r.conventional_poweroff
                                 for r in self.results],
                "dReDBox": [100 * r.disaggregated_poweroff
                            for r in self.results],
                "best brick type": [100 * r.best_brick_poweroff
                                    for r in self.results],
            },
            title="Powered-off units (%)", unit="%")
        headline = (
            f"max powered-off brick type: {self.max_brick_poweroff:.0%} "
            f"(paper: up to 88%); max conventional: "
            f"{self.max_conventional_poweroff:.0%} (paper: only 15%)")
        return table + "\n" + chart + "\n" + headline


def run_fig12(node_count: int = 64, demand_fraction: float = 0.85,
              seed: int = 2018) -> Fig12Result:
    """Run the §VI power-off study across every Table I configuration."""
    study = TcoStudy(node_count=node_count,
                     demand_fraction=demand_fraction, seed=seed)
    return Fig12Result(results=study.run_all())
