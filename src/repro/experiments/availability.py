"""Availability under fault injection: failure rate × self-healing.

The federation sweep measures what spill placement buys against a
capacity wall; this driver measures what **self-healing** buys against
failures.  The same multi-tenant Poisson traffic as the federation
sweep's moderate-rate cell (identical trace, identical skewed home-pod
distribution — so the zero-fault row of this table is bit-identical to
that sweep's cell) runs while a
:class:`~repro.faults.injector.FaultInjector` kills memory bricks,
rack uplinks, inter-rack switches and whole pods on MTBF-driven
schedules, twice per failure rate: once with every self-healing
reaction enabled (brick evacuation, link re-queue, pod re-admission
from the placer's committed-claim ledger) and once with reactions off,
where cut-off tenants simply wait out the component repair.

Reported per cell: injected faults, **tenant-seconds of
unavailability** (the headline), observed MTTR, re-admission
success, admitted/rejected tenants and p99 admission latency.  The
summary derives the self-healing **downtime reduction** per failure
rate, and a scripted-outage pair (a declarative
:class:`~repro.faults.injector.FaultPlan`: lose a pod, then a brick,
then an uplink) gives a deterministic headline free of MTBF sampling
variance.  The expected shape: repairing hardware takes tens of
seconds while re-placing a tenant takes about a boot, so self-healing
cuts tenant-seconds of unavailability by well over the
:data:`HEADLINE_SPEEDUP` target at every swept failure rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.cluster.trace import poisson_trace
from repro.errors import ConfigurationError
from repro.experiments.federation import (
    HOT_POD_SHARE,
    MEAN_LIFETIME_S,
    TENANT_RAM_BYTES,
    TENANT_VCPUS,
    _home_of,
)
from repro.faults import (
    DEFAULT_SPECS,
    FaultClass,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.federation.rebalancer import FederationRebalancer
from repro.topology import TopologySpec, compile_spec, load_spec
from repro.units import to_milliseconds

#: Fixed topology/load of every cell: the federation sweep's
#: moderate-rate configuration, where the pool has headroom — the
#: regime self-healing needs (no reaction can conjure capacity out of
#: a federation already at its wall).
POD_COUNT = 3
ARRIVAL_RATE_HZ = 5.0
TENANT_COUNT = 120
SPILL_POLICY = "least-loaded"

#: The compiled topology of every cell when ``--topology`` is absent:
#: template ``M`` builds exactly the federation this driver used to
#: hand-build (:data:`POD_COUNT` pods, least-loaded spill), preserving
#: the zero-fault row's bit-identity with the federation sweep's
#: ``(3 pods, 5/s, least-loaded)`` cell.
DEFAULT_TOPOLOGY = "M"

#: Swept failure rates: one MTBF applied to every fault class (per-class
#: MTTRs keep their :data:`~repro.faults.injector.DEFAULT_SPECS`
#: defaults).  Smaller MTBF = more faults over the same trace.
DEFAULT_MTBF_AXIS = (40.0, 20.0, 10.0)

#: The downtime-reduction factor the summary calls out.
HEADLINE_SPEEDUP = 5.0

#: The deterministic scripted-outage schedule: every fault class hits
#: exactly once on a fixed clock — a shard controller first (takeover
#: is instant with self-healing), then a whole pod mid-trace, a memory
#: brick on a survivor, a rack uplink on the third pod, and finally an
#: inter-rack switch.
SCRIPTED_OUTAGES = (
    (3.0, "shard", "pod1:shard0", 10.0),
    (6.0, "pod", "pod0", 12.0),
    (10.0, "memory_brick", "pod1:pod1.rack0.mb0", 8.0),
    (14.0, "rack_uplink", "pod2:pod2.rack1", 6.0),
    (17.0, "switch", "pod2", 5.0),
)


@dataclass
class AvailabilityCell:
    """Measurements of one (failure schedule, self-heal) run."""

    label: str
    mtbf_s: Optional[float]
    self_heal: bool
    faults: int
    downtime_ts: float
    mttr_s: float
    readmissions: int
    readmission_failures: int
    admitted: int
    rejected: int
    spills: int
    migrations: int
    p50_boot_ms: float
    p99_boot_ms: float
    duration_s: float

    @property
    def readmission_success_rate(self) -> float:
        total = self.readmissions + self.readmission_failures
        return self.readmissions / total if total else 1.0


@dataclass
class AvailabilityResult:
    """The sweep: per failure schedule, self-heal on vs off."""

    tenant_count: int
    arrival_rate_hz: float
    fault_classes: tuple[str, ...]
    pod_count: int = POD_COUNT
    cells: list[AvailabilityCell] = field(default_factory=list)

    def cell(self, label: str, self_heal: bool) -> AvailabilityCell:
        for candidate in self.cells:
            if (candidate.label == label
                    and candidate.self_heal == self_heal):
                return candidate
        raise KeyError(f"no cell for ({label!r}, self_heal={self_heal})")

    @property
    def labels(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.label not in seen:
                seen.append(cell.label)
        return seen

    def downtime_reduction(self, label: str) -> float:
        """No-self-heal downtime over self-heal downtime for one
        failure schedule (``inf`` when self-healing erased it all)."""
        healed = self.cell(label, True).downtime_ts
        unhealed = self.cell(label, False).downtime_ts
        if healed == 0.0:
            return float("inf") if unhealed > 0.0 else 1.0
        return unhealed / healed

    def rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            rows.append((
                cell.label,
                "on" if cell.self_heal else "off",
                cell.faults,
                f"{cell.downtime_ts:.1f}",
                f"{cell.mttr_s:.1f}",
                f"{cell.readmissions}/{cell.readmissions + cell.readmission_failures}",
                cell.admitted,
                cell.rejected,
                f"{cell.p99_boot_ms:.1f}",
            ))
        return rows

    def render(self) -> str:
        table = render_table(
            ["faults", "heal", "count", "down (t·s)", "mttr (s)",
             "readmit", "ok", "rej", "p99 (ms)"],
            self.rows(),
            title=f"Availability under fault injection: "
                  f"{self.tenant_count} tenants at "
                  f"{self.arrival_rate_hz:g}/s over {self.pod_count} "
                  f"pods, classes: {', '.join(self.fault_classes)}")
        lines = [table]
        for label in self.labels:
            try:
                healed = self.cell(label, True)
                unhealed = self.cell(label, False)
            except KeyError:
                continue  # pinned to one self-heal mode: no ratio
            reduction = self.downtime_reduction(label)
            lines.append(
                f"{label}: {unhealed.downtime_ts:.1f} tenant-seconds "
                f"down without self-healing vs {healed.downtime_ts:.1f} "
                f"with — a {reduction:.1f}x reduction"
                + (f" (>= {HEADLINE_SPEEDUP:g}x target)"
                   if reduction >= HEADLINE_SPEEDUP else ""))
        lines.append(
            "(self-healing re-places what a fault cuts off — brick "
            "evacuation, link re-queue, ledger re-admission — in about "
            "a boot time, while the component repair it replaces takes "
            "tens of seconds)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def _specs_for(mtbf_s: float) -> dict[FaultClass, FaultSpec]:
    """One MTBF across every class; per-class MTTRs keep defaults."""
    return {klass: FaultSpec(klass, mtbf_s=mtbf_s, mttr_s=spec.mttr_s)
            for klass, spec in DEFAULT_SPECS.items()}


def _scripted_plan() -> FaultPlan:
    plan = FaultPlan()
    for at_s, klass, target, duration_s in SCRIPTED_OUTAGES:
        plan.add(at_s, klass, target, duration_s)
    return plan


def _run_cell(spec: TopologySpec, label: str, self_heal: bool,
              seed: int,
              mtbf_s: Optional[float] = None,
              plan: Optional[FaultPlan] = None,
              classes: Optional[tuple[str, ...]] = None
              ) -> AvailabilityCell:
    """One trace under one failure schedule.

    The federation compiles from *spec* (template ``M`` by default —
    the federation sweep's ``(3 pods, 5/s, least-loaded)`` topology
    exactly); the trace and home skew also mirror that sweep's cell,
    so with *mtbf_s* and *plan* both ``None`` the injector schedules
    nothing and the run is bit-identical to the sweep's cell (the
    inertness guarantee).
    """
    rebalancer = FederationRebalancer(interval_s=0.25,
                                      imbalance_threshold=0.2)
    topo = compile_spec(spec, rebalancer=rebalancer)
    federation = topo.federation
    injector = FaultInjector(
        federation,
        specs=_specs_for(mtbf_s) if mtbf_s is not None else None,
        classes=classes if classes is not None
        else (() if mtbf_s is None else None),
        seed=seed,
        self_heal=self_heal,
        plan=plan,
    ).install()
    trace = poisson_trace(
        TENANT_COUNT, ARRIVAL_RATE_HZ, vcpus=TENANT_VCPUS,
        ram_bytes=TENANT_RAM_BYTES, mean_lifetime_s=MEAN_LIFETIME_S,
        scale_fraction=0.0, seed=seed,
        name=f"fed-a{ARRIVAL_RATE_HZ:g}")
    stats = federation.serve_trace(
        trace, home_of=_home_of(sorted(federation.pods), HOT_POD_SHARE))
    metrics = injector.metrics
    downtime = metrics.finalize()
    return AvailabilityCell(
        label=label,
        mtbf_s=mtbf_s,
        self_heal=self_heal,
        faults=metrics.fault_count(),
        downtime_ts=downtime,
        mttr_s=metrics.mttr_s(),
        readmissions=metrics.readmissions,
        readmission_failures=metrics.readmission_failures,
        admitted=stats.boots_admitted,
        rejected=stats.boots_rejected,
        spills=stats.spills,
        migrations=stats.migrations,
        p50_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(50)),
        p99_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(99)),
        duration_s=stats.duration_s,
    )


def _parse_classes(fault_classes: Optional[str]
                   ) -> Optional[tuple[str, ...]]:
    if fault_classes is None:
        return None
    names = tuple(name.strip() for name in fault_classes.split(",")
                  if name.strip())
    known = {klass.value for klass in FaultClass}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown fault classes {', '.join(unknown)}; known: "
            f"{', '.join(sorted(known))}")
    if not names:
        raise ConfigurationError("--fault-classes must name at least "
                                 "one class")
    return names


def run_availability(mtbf_axis: tuple[float, ...] = DEFAULT_MTBF_AXIS,
                     seed: int = 2018,
                     mtbf: Optional[float] = None,
                     fault_classes: Optional[str] = None,
                     self_heal: Optional[str] = None,
                     workers: Optional[int] = None,
                     sync_window: Optional[float] = None,
                     topology: Optional[str] = None
                     ) -> AvailabilityResult:
    """Sweep failure rate × self-healing on/off.

    *mtbf* (the CLI ``--mtbf`` flag) pins the failure-rate axis to one
    MTBF; *fault_classes* (``--fault-classes``, comma-separated) limits
    which classes the injector schedules; *self_heal* (``--self-heal``,
    ``on``/``off``) pins the reaction axis — by default both modes run
    and the summary reports the downtime reduction.  Every sweep also
    runs the deterministic scripted-outage pair and a zero-fault
    baseline row.

    *topology* (``--topology``) compiles every cell's federation from
    a named template or spec file instead of the default
    :data:`DEFAULT_TOPOLOGY`; it needs at least :data:`POD_COUNT` pods
    because the scripted-outage schedule targets pods 0..2 by name.

    The parallel federation backend (*workers* / *sync_window*, the
    CLI ``--workers`` / ``--sync-window`` flags) is rejected here: the
    injector's sub-pod fault classes (memory bricks, rack uplinks,
    switches, shards) reach directly into pod internals, which live in
    other OS processes under that backend — only whole-pod faults
    cross the wire (see :meth:`~repro.federation.parallel.
    ParallelFederationController.schedule_pod_fault`).
    """
    if workers is not None or sync_window is not None:
        raise ConfigurationError(
            "the availability sweep only runs on the serial federation "
            "backend: its sub-pod fault classes (memory_brick, "
            "rack_uplink, switch, shard) manipulate pod internals that "
            "are process-local under --workers; drop --workers/"
            "--sync-window here, or use the federation sweep (or "
            "schedule_pod_fault on the parallel controller) for "
            "pod-class faults")
    if mtbf is not None and mtbf <= 0:
        raise ConfigurationError(f"--mtbf must be positive, got {mtbf}")
    if self_heal is not None and self_heal not in ("on", "off"):
        raise ConfigurationError(
            f"--self-heal must be 'on' or 'off', got {self_heal!r}")
    classes = _parse_classes(fault_classes)
    spec = load_spec(topology if topology is not None
                     else DEFAULT_TOPOLOGY)
    if spec.pods < POD_COUNT:
        raise ConfigurationError(
            f"the availability sweep's scripted outages target pods "
            f"0..{POD_COUNT - 1}; --topology {spec.name!r} has only "
            f"{spec.pods} pod(s)")
    axis = (float(mtbf),) if mtbf is not None else mtbf_axis
    heal_modes = ((self_heal == "on",) if self_heal is not None
                  else (True, False))
    result = AvailabilityResult(
        tenant_count=TENANT_COUNT,
        arrival_rate_hz=ARRIVAL_RATE_HZ,
        fault_classes=(classes if classes is not None
                       else tuple(sorted(k.value for k in FaultClass))),
        pod_count=spec.pods,
    )
    for mtbf_s in axis:
        for heal in heal_modes:
            result.cells.append(_run_cell(
                spec, f"mtbf={mtbf_s:g}s", heal, seed,
                mtbf_s=float(mtbf_s), classes=classes))
    for heal in heal_modes:
        result.cells.append(_run_cell(
            spec, "scripted", heal, seed, plan=_scripted_plan(),
            classes=()))
    result.cells.append(_run_cell(spec, "none", True, seed))
    return result
