"""Experiment drivers: one module per paper table/figure.

Every driver exposes ``run(...) -> <Result>`` where the result carries
``rows()`` (the data the paper's artifact reports) and ``render()``
(a plain-text rendition of the table/figure).  The benchmarks in
``benchmarks/`` call these drivers; :mod:`repro.experiments.runner`
executes the full set.

Mapping (see DESIGN.md §2):

* ``table1_workloads`` — Table I, the VM workload mixes.
* ``fig7_ber`` — BER vs received optical power, channels through 6-8
  switch hops.
* ``fig8_latency`` — round-trip remote-memory latency breakdown on the
  packet-switched path.
* ``fig10_agility`` — scale-up delay vs conventional scale-out under
  8/16/32-way concurrency.
* ``fig12_poweroff`` — percentage of unutilized resources powered off.
* ``fig13_energy`` — power consumption normalized to conventional.

Beyond the paper's artifacts:

* ``pod_scale`` — VM density and remote-memory latency vs. pod size
  (1..8 racks behind the inter-rack switch tier).
* ``datamover`` — remote-memory data-mover cache/scheduler sweep.
* ``cluster_scale`` — control-plane latency under arrival rate × pod
  size × controller shard count (``--shards``).
* ``federation`` — multi-pod global placement under pods × aggregate
  arrival rate × spill policy (``--pods``, ``--spill-policy``).
"""

from repro.experiments.fig7_ber import Fig7Result, run_fig7
from repro.experiments.fig8_latency import Fig8Result, run_fig8
from repro.experiments.fig10_agility import Fig10Result, run_fig10
from repro.experiments.fig12_poweroff import Fig12Result, run_fig12
from repro.experiments.fig13_energy import Fig13Result, run_fig13
from repro.experiments.pod_scale import PodScaleResult, run_pod_scale
from repro.experiments.table1_workloads import Table1Result, run_table1

__all__ = [
    "Fig10Result",
    "Fig12Result",
    "Fig13Result",
    "Fig7Result",
    "Fig8Result",
    "PodScaleResult",
    "Table1Result",
    "run_fig10",
    "run_fig12",
    "run_fig13",
    "run_fig7",
    "run_fig8",
    "run_pod_scale",
    "run_table1",
]
