"""Run every experiment and collect the rendered outputs.

Used by the CLI (``dredbox-repro run-all``) and handy for regenerating
the EXPERIMENTS.md data in one pass.

Every driver accepts a ``seed`` keyword: the runner threads one base
seed through the whole sweep, so a full reproduction is a single
``(code version, seed)`` pair.  Drivers derive their per-component
streams from it via :class:`~repro.sim.rng.RngRegistry`; deterministic
drivers accept and ignore it.

Axis overrides (``shards`` for the ``cluster_scale`` sweep; ``pods``,
``spill_policy``, ``workers``, ``sync_window`` and ``replica_groups``
for the ``federation`` sweep; ``mtbf``, ``fault_classes`` and
``self_heal`` for the ``availability`` sweep; ``drain``, ``hazard``
and ``domains`` for the ``maintenance`` study; ``topology`` for every
federation-tier driver) are forwarded only to drivers whose signature
declares the keyword, so sweep-specific flags never break the other
experiments.
"""

from __future__ import annotations

import cProfile
import inspect
import io
import pstats
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.experiments.availability import run_availability
from repro.experiments.cluster_scale import run_cluster_scale
from repro.experiments.datamover import run_datamover
from repro.experiments.federation import run_federation
from repro.experiments.fig7_ber import run_fig7
from repro.experiments.fig8_latency import run_fig8
from repro.experiments.fig10_agility import run_fig10
from repro.experiments.fig12_poweroff import run_fig12
from repro.experiments.fig13_energy import run_fig13
from repro.experiments.kernel_bench import run_kernel_bench
from repro.experiments.maintenance import run_maintenance
from repro.experiments.parallel_scaling import run_parallel_scaling
from repro.experiments.pod_scale import run_pod_scale
from repro.experiments.table1_workloads import run_table1

#: Registry of experiment name -> driver (every driver takes ``seed=``).
EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table1": run_table1,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig10": run_fig10,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "pod_scale": run_pod_scale,
    "datamover": run_datamover,
    "cluster_scale": run_cluster_scale,
    "federation": run_federation,
    "availability": run_availability,
    "maintenance": run_maintenance,
    "kernel_bench": run_kernel_bench,
    "parallel_scaling": run_parallel_scaling,
}

#: Functions shown when an experiment runs under ``--profile``.
PROFILE_TOP_N = 25


@dataclass
class ExperimentRun:
    """One executed experiment: its result object and rendering."""

    name: str
    result: object
    rendered: str
    profile: Optional[str] = None


@dataclass
class RunAllReport:
    """Results of a full sweep."""

    runs: list[ExperimentRun] = field(default_factory=list)

    def rendered(self) -> str:
        """All experiment outputs concatenated with separators."""
        parts = []
        for run in self.runs:
            parts.append("=" * 72)
            parts.append(f"Experiment: {run.name}")
            parts.append("=" * 72)
            parts.append(run.rendered)
            if run.profile is not None:
                parts.append("-" * 72)
                parts.append(f"Profile: {run.name}")
                parts.append(run.profile)
        return "\n".join(parts)


def _profiled(driver: Callable[..., object],
              kwargs: dict) -> tuple[object, str]:
    """Run *driver* under cProfile; returns (result, stats text)."""
    profiler = cProfile.Profile()
    result = profiler.runcall(driver, **kwargs)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
    return result, buffer.getvalue().rstrip()


def run_all(names: list[str] | None = None,
            seed: Optional[int] = None,
            shards: Optional[int] = None,
            pods: Optional[int] = None,
            spill_policy: Optional[str] = None,
            mtbf: Optional[float] = None,
            fault_classes: Optional[str] = None,
            self_heal: Optional[str] = None,
            workers: Optional[int] = None,
            sync_window: Optional[float] = None,
            replica_groups: Optional[int] = None,
            drain: Optional[str] = None,
            hazard: Optional[str] = None,
            domains: Optional[str] = None,
            topology: Optional[str] = None,
            profile: bool = False) -> RunAllReport:
    """Execute the named experiments (all of them by default).

    When *seed* is given it is passed to every driver, overriding each
    one's default, so the whole sweep reproduces from one number.
    Axis overrides — *shards* (controller shard count, ``cluster_scale``),
    *pods* (pod count), *spill_policy* / *workers* / *sync_window* /
    *replica_groups* (``federation``), *mtbf* / *fault_classes* /
    *self_heal* (``availability``), *drain* / *hazard* / *domains*
    (``maintenance``), and *topology* (a compiled-topology template
    name or spec file for the federation-tier drivers) — are forwarded
    only to drivers whose signature declares the keyword.
    With *profile* each driver runs under :mod:`cProfile` and the
    report carries the top functions by cumulative time — the hot-path
    view the kernel optimizations are steered by.
    """
    if names is None:
        names = list(EXPERIMENTS)
    overrides = {"shards": shards, "pods": pods,
                 "spill_policy": spill_policy, "mtbf": mtbf,
                 "fault_classes": fault_classes, "self_heal": self_heal,
                 "workers": workers, "sync_window": sync_window,
                 "replica_groups": replica_groups, "drain": drain,
                 "hazard": hazard, "domains": domains,
                 "topology": topology}
    report = RunAllReport()
    for name in names:
        if name not in EXPERIMENTS:
            known = ", ".join(EXPERIMENTS)
            raise KeyError(f"unknown experiment {name!r}; known: {known}")
        driver = EXPERIMENTS[name]
        kwargs = {} if seed is None else {"seed": seed}
        parameters = inspect.signature(driver).parameters
        for axis, value in overrides.items():
            if value is not None and axis in parameters:
                kwargs[axis] = value
        if profile:
            result, stats_text = _profiled(driver, kwargs)
        else:
            result, stats_text = driver(**kwargs), None
        report.runs.append(ExperimentRun(
            name=name,
            result=result,
            rendered=result.render(),  # type: ignore[attr-defined]
            profile=stats_text,
        ))
    return report
