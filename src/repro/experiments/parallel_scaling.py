"""Parallel federation scaling: wall-clock and events/sec vs workers.

The federation tier is the repo's deepest stack and its slowest sweep;
``repro.federation.parallel`` re-hosts it as one OS process per pod
under conservative time-window synchronization.  This driver measures
what that buys: the same 4-pod trace served by

* the **direct-call serial controller** (``build_federation`` — the
  default backend everywhere else; context row, different semantics),
* the parallel backend's **in-process reference** (``workers=0``: same
  message protocol, same rounds, zero process machinery), and
* the parallel backend over **1, 2 and 4 worker processes**.

Reported per cell: wall-clock, events retired across every clock
(coordinator plus pods), events/sec, barrier rounds, and the runner's
busy-time decomposition — ``lp_busy_s`` (total pod work),
``hub_overlapped_s`` (hub work that ran concurrently with the pods'
windows under the pipelined grant) and ``critical_path_s`` (the sum
over rounds of each round's slowest clock).

Two speedups, and why both are reported
---------------------------------------

**Measured speedup** is wall-clock of ``workers=0`` over wall-clock of
``workers=N`` — what this machine actually delivered.  On a box with
fewer free cores than workers it can sit at or below 1x no matter how
parallel the model is: four worker processes on one core just take
turns, and pay pickling on top.

**Critical-path speedup** is the structural bound the decomposition
implies: ``wall / (critical_path + other)``, where ``critical_path``
sums each barrier round's slowest clock — ``max(slowest pod, hub
overlap)``, since the pipelined runner advances the hub *while* the
pods run their windows — and ``other`` is the runner overhead outside
any clock (``wall - lp_busy - hub_overlapped``, floored at zero).
That ratio is the wall-clock a machine with one core per pod plus one
for the hub would approach, with the barrier rounds (the serial
fraction, by Amdahl) charged in full.  It is measured from the same
run, not modeled: the fleet times every LP's advance in every round,
and the runner times the overlapped hub slice.

The timed serves run with the cyclic garbage collector frozen and
paused (restored afterwards): generation-2 collections otherwise land
on arbitrary rounds of arbitrary cells and show up as fake per-pod
spikes in the per-round maxima.  The pause is bench hygiene applied
identically to every backend, not a semantic knob — allocation still
happens, refcounting still frees.

The benchmark asserts the *structural* number and records both; the
checked-in ``BENCH_parallel.json`` carries the host's core count so a
reader can tell which regime produced the measured column.

The scaling cells use a **balanced** home-pod distribution (each pod
homes ~1/pods of the tenants) rather than the federation sweep's 75 %
hot-pod skew: with the skew, one LP owns three quarters of the work
and the critical path collapses to that pod — a placement-policy
property, not a synchronization one.  The sweep's skewed cells remain
the domain experiments; this driver benchmarks the runtime.

Determinism is asserted, not assumed: every parallel cell must produce
the same federation fingerprint whatever the worker count, or the run
fails.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.cluster.trace import poisson_trace
from repro.errors import ConfigurationError
from repro.experiments.federation import (
    TENANT_RAM_BYTES,
    TENANT_VCPUS,
    _home_of,
)
from repro.experiments.kernel_bench import host_facts
from repro.federation.parallel import (
    DEFAULT_SYNC_WINDOW_S,
    federation_fingerprint,
)
from repro.federation.rebalancer import FederationRebalancer
from repro.topology import TopologySpec, compile_spec, load_spec
from repro.units import mib, to_milliseconds

#: The compiled topology of every cell when ``--topology`` is absent.
#: Template ``L`` is this driver's shape made declarative: 4 wide pods
#: (8 compute bricks, 4x8x8GiB memory per rack) under spread
#: placement, so every pod's event stream stays dense and the
#: per-round maxima reflect real work rather than one straggler pod;
#: ``max_batch=1`` admits each boot the moment it arrives (batching
#: idles pods between windows); and a 24 ms conservative sync window —
#: wider windows amortize the per-round hub/runner overhead over more
#: pod work, and 24 ms beat 12, 16, 20 and 32 on the structural number
#: for this trace.
DEFAULT_TOPOLOGY = "L"

#: Fixed load of every cell: a high-rate short-lifetime trace with
#: ballooning, so every pod churns steadily through the run; spill +
#: rebalancer on (the full message vocabulary crosses the wire).
ARRIVAL_RATE_HZ = 200.0
TENANT_COUNT = 800
MEAN_LIFETIME_S = 0.8

#: Worker-process axis (0 = the in-process reference fleet).
DEFAULT_WORKER_AXIS = (0, 1, 2, 4)

#: The structural (critical-path) speedup the 4-pod decomposition must
#: reach at any worker count >= the pod count.
CRITICAL_PATH_TARGET = 2.5


@dataclass
class ParallelScalingCell:
    """One backend's run of the fixed trace."""

    #: ``None`` = the direct-call serial controller; otherwise the
    #: parallel backend's worker-process count (0 = in-process fleet).
    workers: Optional[int]
    wall_s: float
    #: Events retired across every clock: the coordinator's plus (for
    #: parallel cells) every pod LP's.
    events: int
    events_per_s: float
    rounds: int
    lp_busy_s: float
    lp_critical_s: float
    #: Hub work overlapped with pod windows by the pipelined grant.
    hub_overlapped_s: float
    #: Sum over rounds of max(slowest pod, overlapped hub slice).
    critical_path_s: float
    admitted: int
    rejected: int
    spills: int
    p99_boot_ms: float
    fingerprint: str

    @property
    def label(self) -> str:
        if self.workers is None:
            return "serial direct"
        if self.workers == 0:
            return "parallel w=0"
        return f"parallel w={self.workers}"


@dataclass
class ParallelScalingResult:
    """All cells of one scaling run."""

    pod_count: int
    tenant_count: int
    arrival_rate_hz: float
    seed: int
    sync_window_s: float
    wall_s: float = 0.0
    cells: list[ParallelScalingCell] = field(default_factory=list)

    def cell(self, workers: Optional[int]) -> ParallelScalingCell:
        for cell in self.cells:
            if cell.workers == workers:
                return cell
        raise KeyError(f"no cell for workers={workers!r}")

    def measured_speedup(self, workers: int) -> float:
        """Wall-clock of the in-process reference over *workers*."""
        return self.cell(0).wall_s / self.cell(workers).wall_s

    def critical_path_speedup(self) -> float:
        """The structural bound, from the reference run's decomposition.

        In the ``workers=0`` fleet every clock — hub and pods — runs
        on one thread, so its wall-clock is hub work plus total pod
        work plus runner overhead.  Replaying the same rounds with one
        core per pod plus one for the hub would take each round's
        slowest clock instead (``critical_path_s``: the pipelined
        runner advances the hub concurrently with the pods' windows),
        plus the same off-clock runner overhead, charged in full.
        """
        reference = self.cell(0)
        other_s = max(0.0, reference.wall_s - reference.lp_busy_s
                      - reference.hub_overlapped_s)
        parallel_s = reference.critical_path_s + other_s
        return reference.wall_s / parallel_s if parallel_s > 0 else 1.0

    def rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for cell in self.cells:
            if cell.workers is None or cell.workers == 0:
                measured = "--"
            else:
                measured = f"{self.measured_speedup(cell.workers):.2f}x"
            rows.append((
                cell.label,
                f"{cell.wall_s:.2f}",
                cell.events,
                f"{cell.events_per_s / 1e3:.1f}",
                cell.rounds if cell.rounds else "--",
                f"{cell.lp_busy_s:.2f}" if cell.workers is not None
                else "--",
                f"{cell.critical_path_s:.2f}" if cell.workers is not None
                else "--",
                measured,
                cell.admitted,
                cell.spills,
            ))
        return rows

    def render(self) -> str:
        facts = host_facts()
        lines = [render_table(
            ("backend", "wall (s)", "events", "kev/s", "rounds",
             "busy (s)", "crit (s)", "speedup", "ok", "spills"),
            self.rows(),
            title=f"Parallel federation scaling: {self.pod_count} pods, "
                  f"{self.tenant_count} tenants at "
                  f"{self.arrival_rate_hz:g}/s, balanced homes, "
                  f"seed {self.seed}")]
        lines.append("")
        lines.append(
            f"critical-path speedup (structural, >= 1 core/pod): "
            f"{self.critical_path_speedup():.2f}x "
            f"(target >= {CRITICAL_PATH_TARGET:g}x)")
        lines.append(
            f"host: python {facts['python']}, "
            f"{facts['cpu_count']} cpu(s) — the measured column is "
            f"core-count-bound; the structural number is not")
        lines.append(
            "(the serial-direct row is context, not baseline: it "
            "models zero coordinator<->pod latency, so its cell "
            "differs physically from the parallel backend's)")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "benchmark": "parallel_federation",
            "pod_count": self.pod_count,
            "tenant_count": self.tenant_count,
            "arrival_rate_hz": self.arrival_rate_hz,
            "seed": self.seed,
            "sync_window_s": self.sync_window_s,
            "wall_s": round(self.wall_s, 3),
            "host": host_facts(),
            "critical_path_speedup": round(
                self.critical_path_speedup(), 3),
            "critical_path_target": CRITICAL_PATH_TARGET,
            "cells": [
                {
                    "backend": cell.label,
                    "workers": cell.workers,
                    "wall_s": round(cell.wall_s, 3),
                    "events": cell.events,
                    "events_per_s": round(cell.events_per_s),
                    "rounds": cell.rounds,
                    "lp_busy_s": round(cell.lp_busy_s, 3),
                    "lp_critical_s": round(cell.lp_critical_s, 3),
                    "hub_overlapped_s": round(cell.hub_overlapped_s, 3),
                    "critical_path_s": round(cell.critical_path_s, 3),
                    "measured_speedup": (
                        round(self.measured_speedup(cell.workers), 3)
                        if cell.workers else None),
                    "fingerprint": cell.fingerprint,
                }
                for cell in self.cells
            ],
        }
        return json.dumps(payload, indent=2) + "\n"


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------

def _trace(tenant_count: int, seed: int):
    return poisson_trace(
        tenant_count, ARRIVAL_RATE_HZ, vcpus=TENANT_VCPUS,
        ram_bytes=TENANT_RAM_BYTES, mean_lifetime_s=MEAN_LIFETIME_S,
        scale_fraction=1.0, scale_bytes=mib(512), seed=seed,
        name=f"pscale-a{ARRIVAL_RATE_HZ:g}")


def _rebalancer() -> FederationRebalancer:
    return FederationRebalancer(interval_s=0.25,
                                imbalance_threshold=0.2)


class _quiet_gc:
    """Freeze and pause the cyclic GC around a timed serve."""

    def __enter__(self):
        gc.collect()
        gc.freeze()
        gc.disable()

    def __exit__(self, *exc_info):
        gc.enable()
        gc.unfreeze()


def _run_direct(spec: TopologySpec, tenant_count: int,
                seed: int) -> ParallelScalingCell:
    federation = compile_spec(spec, rebalancer=_rebalancer()).federation
    trace = _trace(tenant_count, seed)
    home_of = _home_of(sorted(federation.pods), 1.0 / spec.pods)
    with _quiet_gc():
        start = time.perf_counter()
        stats = federation.serve_trace(trace, home_of=home_of)
        wall = time.perf_counter() - start
    events = federation.sim.events_processed
    return ParallelScalingCell(
        workers=None, wall_s=wall, events=events,
        events_per_s=events / wall, rounds=0,
        lp_busy_s=0.0, lp_critical_s=0.0,
        hub_overlapped_s=0.0, critical_path_s=0.0,
        admitted=stats.boots_admitted, rejected=stats.boots_rejected,
        spills=stats.spills,
        p99_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(99)),
        fingerprint=federation_fingerprint(stats))


def _run_parallel(spec: TopologySpec, workers: int, tenant_count: int,
                  seed: int) -> ParallelScalingCell:
    topo = compile_spec(spec, workers=workers,
                        rebalancer=_rebalancer())
    federation = topo.federation
    try:
        trace = _trace(tenant_count, seed)
        home_of = _home_of(sorted(federation.handles), 1.0 / spec.pods)
        with _quiet_gc():
            start = time.perf_counter()
            stats = federation.serve_trace(trace, home_of=home_of)
            wall = time.perf_counter() - start
        report = federation.window_report
        events = (federation.sim.events_processed
                  + sum(report.lp_events.values()))
    finally:
        federation.close()
    return ParallelScalingCell(
        workers=workers, wall_s=wall, events=events,
        events_per_s=events / wall, rounds=report.rounds,
        lp_busy_s=report.lp_busy_s,
        lp_critical_s=report.lp_critical_s,
        hub_overlapped_s=report.hub_overlapped_s,
        critical_path_s=report.critical_path_s,
        admitted=stats.boots_admitted, rejected=stats.boots_rejected,
        spills=stats.spills,
        p99_boot_ms=to_milliseconds(
            stats.admission_latency_percentile(99)),
        fingerprint=federation_fingerprint(stats))


def run_parallel_scaling(
        worker_axis: tuple[int, ...] = DEFAULT_WORKER_AXIS,
        tenant_count: int = TENANT_COUNT,
        seed: int = 2018,
        profile: bool = False,
        topology: Optional[str] = None) -> ParallelScalingResult:
    """Serve the fixed trace on every backend and compare.

    The topology compiles from *topology* (the CLI ``--topology``
    flag; default template ``L``, this driver's canonical 4-pod
    shape) — its ``fabric.sync_window_s`` sets the conservative
    lookahead.  The worker axis must start at 0 (the in-process
    reference is both the determinism anchor and the wall-clock
    denominator).  Raises :class:`AssertionError` if any parallel
    cell's fingerprint differs from the reference's — worker count
    must never change the simulation.
    """
    del profile  # handled by the runner; accepted for signature parity
    if not worker_axis or worker_axis[0] != 0:
        raise ConfigurationError(
            f"the worker axis must start with 0 (the in-process "
            f"reference), got {worker_axis!r}")
    if any(workers < 0 for workers in worker_axis):
        raise ConfigurationError(
            f"worker counts must be >= 0, got {worker_axis!r}")
    if len(set(worker_axis)) != len(worker_axis):
        raise ConfigurationError(
            f"duplicate worker counts in {worker_axis!r}")
    spec = load_spec(topology if topology is not None
                     else DEFAULT_TOPOLOGY)

    wall_start = time.perf_counter()
    result = ParallelScalingResult(
        pod_count=spec.pods, tenant_count=tenant_count,
        arrival_rate_hz=ARRIVAL_RATE_HZ, seed=seed,
        sync_window_s=(spec.fabric.sync_window_s
                       if spec.fabric.sync_window_s is not None
                       else DEFAULT_SYNC_WINDOW_S))
    result.cells.append(_run_direct(spec, tenant_count, seed))
    for workers in worker_axis:
        result.cells.append(
            _run_parallel(spec, workers, tenant_count, seed))
    reference = result.cell(0).fingerprint
    for workers in worker_axis[1:]:
        cell = result.cell(workers)
        if cell.fingerprint != reference:
            raise AssertionError(
                f"parallel backend diverged at workers={workers}: "
                f"{cell.fingerprint} != {reference}")
    result.wall_s = time.perf_counter() - wall_start
    return result
