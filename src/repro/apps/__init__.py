"""The three pilot applications of §V.

Each pilot exercises the public rack API the way the paper motivates:

* :mod:`repro.apps.video_analytics` — event-driven video-surveillance
  investigations whose memory demand "cannot be scheduled or predicted".
* :mod:`repro.apps.nfv` — the NFV edge/key-server split with diurnal
  load, where scale-out must be avoided (sensitive key material) and
  memory elasticity carries the peaks.
* :mod:`repro.apps.network_analytics` — 100 GbE online classification on
  a dACCELBRICK plus offline deep analysis on elastically-sized VMs.
"""

from repro.apps.base import AppReport, MemoryDemandPoint
from repro.apps.network_analytics import (
    NetworkAnalyticsScenario,
    OnlineStageResult,
)
from repro.apps.nfv import DiurnalTrafficModel, KeyServerScenario
from repro.apps.video_analytics import (
    InvestigationEvent,
    VideoAnalyticsScenario,
)

__all__ = [
    "AppReport",
    "DiurnalTrafficModel",
    "InvestigationEvent",
    "KeyServerScenario",
    "MemoryDemandPoint",
    "NetworkAnalyticsScenario",
    "OnlineStageResult",
    "VideoAnalyticsScenario",
]
